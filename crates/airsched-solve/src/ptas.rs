//! Kenyon–Schabanel–Young-style PTAS baseline for frequency selection.
//!
//! KSY's *Polynomial-time approximation scheme for data broadcast*
//! restricts broadcast frequencies to a `(1 + eps)`-geometric grid: the
//! per-group delay terms of the paper's Equation 2 objective scale by at
//! most `(1 + eps)` when a frequency moves one grid step, so the grid
//! always contains a vector within `(1 + eps)` of the continuous optimum
//! while shrinking the search space from `prod_i F_i` to
//! `prod_i log_{1+eps} F_i` candidates.
//!
//! This module implements that rounding idea as a *measured baseline*
//! next to the exact searches in [`airsched_core::opt`]: it seeds from
//! PAMAD's closed-form frequencies (the paper's analytic near-optimum)
//! and sweeps *global* `(1 + eps)`-grid rescalings of that seed — the
//! optimum frequency vector mostly shares the seed's ratios and differs
//! in overall scale, the axis the closed form fixes conservatively —
//! refining each rescaled base with a per-group local grid window. All
//! candidates are scored under the same
//! [`airsched_core::delay::group_objective`] the exact OPT search
//! minimizes. The seed itself is always a candidate, so the result is
//! never worse than PAMAD; benches and CI record the measured ratio
//! against OPT rather than trusting the analytical guarantee.

use std::collections::HashSet;

use airsched_core::delay::{group_objective, Weighting};
use airsched_core::error::ScheduleError;
use airsched_core::group::GroupLadder;
use airsched_core::opt::OptConfig;
use airsched_core::pamad::{self, Placement};

/// Cap on enumerated frequency vectors; the per-group window shrinks
/// until the product fits (at worst collapsing to the seed alone).
const MAX_CANDIDATES: u128 = 200_000;

/// The PTAS result: grid frequencies and their objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct PtasOutcome {
    freqs: Vec<u64>,
    objective: f64,
    epsilon: f64,
    evaluated: u64,
}

impl PtasOutcome {
    /// The chosen frequencies `S_1 .. S_h`, one per ladder group.
    #[must_use]
    pub fn frequencies(&self) -> &[u64] {
        &self.freqs
    }

    /// The Equation 2 objective of the chosen frequencies.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The grid parameter the search ran with.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of frequency vectors evaluated.
    #[must_use]
    pub fn evaluated(&self) -> u64 {
        self.evaluated
    }

    /// Measured approximation ratio against a reference objective
    /// (usually [`airsched_core::opt::search_r_structured`]'s). A zero
    /// reference compares degenerately: 1 if this result is also zero,
    /// infinity otherwise.
    #[must_use]
    pub fn ratio_vs(&self, reference_objective: f64) -> f64 {
        if reference_objective <= 0.0 {
            if self.objective <= 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.objective / reference_objective
        }
    }

    /// Materializes the program for the chosen frequencies (Algorithm 4
    /// placement, shared with PAMAD/OPT).
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NoChannels`] if `n_real == 0`.
    pub fn place(&self, ladder: &GroupLadder, n_real: u32) -> Result<Placement, ScheduleError> {
        pamad::place_frequencies(ladder, &self.freqs, n_real)
    }
}

/// Runs the grid search for `ladder` on `n_real` channels.
///
/// # Panics
///
/// Panics if `n_real == 0` or `epsilon <= 0`.
#[must_use]
pub fn approximate(
    ladder: &GroupLadder,
    n_real: u32,
    epsilon: f64,
    weighting: Weighting,
) -> PtasOutcome {
    assert!(n_real > 0, "n_real must be non-zero");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let seed = pamad::derive_frequencies(ladder, n_real, weighting)
        .frequencies()
        .to_vec();
    let times = ladder.times();
    let pages = ladder.page_counts();
    let cycle = ladder.max_time();
    // Same per-group ceiling the exhaustive search uses, so measured
    // ratios compare like with like.
    let factor = OptConfig::default().max_freq_factor;
    let caps: Vec<u64> = times.iter().map(|&t| (factor * cycle / t).max(1)).collect();
    let bases = scaled_bases(&seed, &caps, epsilon);
    let mut window = 2u32;
    let mut candidates = candidate_sets(&bases, &caps, epsilon, window);
    while window > 0 && total_product(&candidates) > MAX_CANDIDATES {
        window -= 1;
        candidates = candidate_sets(&bases, &caps, epsilon, window);
    }

    let mut best_freqs = seed.clone();
    let mut best = group_objective(times, pages, &seed, n_real, weighting);
    let mut evaluated = 1u64;
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    seen.insert(seed);
    for sets in &candidates {
        let mut cursor = vec![0usize; sets.len()];
        'odometer: loop {
            let freqs: Vec<u64> = cursor.iter().zip(sets).map(|(&i, c)| c[i]).collect();
            if seen.insert(freqs.clone()) {
                let objective = group_objective(times, pages, &freqs, n_real, weighting);
                evaluated += 1;
                if objective < best {
                    best = objective;
                    best_freqs = freqs;
                }
            }
            for pos in 0..cursor.len() {
                cursor[pos] += 1;
                if cursor[pos] < sets[pos].len() {
                    continue 'odometer;
                }
                cursor[pos] = 0;
            }
            break;
        }
    }
    PtasOutcome {
        freqs: best_freqs,
        objective: best,
        epsilon,
        evaluated,
    }
}

/// Global `(1 + eps)`-grid rescalings of the seed, clamped to the
/// per-group caps: downward until the all-ones floor, upward until every
/// group saturates its cap. Consecutive duplicates are collapsed; order
/// is ascending scale so the search is deterministic.
fn scaled_bases(seed: &[u64], caps: &[u64], epsilon: f64) -> Vec<Vec<u64>> {
    let rescale = |j: i32| -> Vec<u64> {
        let s = (1.0 + epsilon).powi(j);
        seed.iter()
            .zip(caps)
            .map(|(&v, &cap)| (((v as f64) * s).round() as u64).clamp(1, cap))
            .collect()
    };
    let mut down: Vec<Vec<u64>> = Vec::new();
    let mut j = -1i32;
    while j > -256 {
        let base = rescale(j);
        let floored = base.iter().all(|&b| b == 1);
        if down.last() != Some(&base) {
            down.push(base.clone());
        }
        if floored {
            break;
        }
        j -= 1;
    }
    down.reverse();
    let mut bases = down;
    let mut j = 0i32;
    while j < 256 {
        let base = rescale(j);
        let saturated = base.iter().zip(caps).all(|(b, c)| b == c);
        if bases.last() != Some(&base) {
            bases.push(base.clone());
        }
        if saturated {
            break;
        }
        j += 1;
    }
    bases
}

/// Per-base, per-group candidate sets: the `(1 + eps)`-grid points within
/// `window` steps of the base frequency, clamped to the per-group caps so
/// the search space stays inside the exact search's, the base itself
/// always included.
fn candidate_sets(
    bases: &[Vec<u64>],
    caps: &[u64],
    epsilon: f64,
    window: u32,
) -> Vec<Vec<Vec<u64>>> {
    bases
        .iter()
        .map(|base| {
            base.iter()
                .zip(caps)
                .map(|(&s, &cap)| {
                    let mut set = vec![s];
                    let scale =
                        (1.0 + epsilon).powi(i32::try_from(window).expect("window fits i32"));
                    let lo = ((s as f64) / scale).floor().max(1.0) as u64;
                    let hi = (((s as f64) * scale).ceil() as u64).min(cap);
                    // Walk the absolute grid {round((1+eps)^k)} across [lo, hi].
                    let mut k = 0i32;
                    loop {
                        let g = (1.0 + epsilon).powi(k);
                        if g > hi as f64 + 0.5 {
                            break;
                        }
                        let rounded = g.round().max(1.0) as u64;
                        if rounded >= lo && rounded <= hi && !set.contains(&rounded) {
                            set.push(rounded);
                        }
                        k += 1;
                    }
                    set.sort_unstable();
                    set
                })
                .collect()
        })
        .collect()
}

fn total_product(candidates: &[Vec<Vec<u64>>]) -> u128 {
    candidates
        .iter()
        .map(|sets| {
            sets.iter()
                .map(|c| c.len() as u128)
                .try_fold(1u128, u128::checked_mul)
                .unwrap_or(u128::MAX)
        })
        .try_fold(0u128, u128::checked_add)
        .unwrap_or(u128::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::bound::minimum_channels;
    use airsched_core::opt;

    fn fig2_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn ptas_between_full_optimum_and_pamad() {
        let ladder = fig2_ladder();
        for n in 1..=3u32 {
            let full = opt::search_full_bnb(&ladder, n, opt::OptConfig::default());
            let pamad = pamad::derive_frequencies(&ladder, n, Weighting::PaperEq2);
            let pamad_obj = group_objective(
                ladder.times(),
                ladder.page_counts(),
                pamad.frequencies(),
                n,
                Weighting::PaperEq2,
            );
            let ptas = approximate(&ladder, n, 0.1, Weighting::PaperEq2);
            // The seed is a candidate, so PAMAD is an upper bound; the
            // exhaustive optimum is a true lower bound. (The r-structured
            // OPT is *not* a lower bound: its ratio structure excludes
            // grid vectors, and the PTAS does beat it on some ladders.)
            assert!(
                ptas.objective() <= pamad_obj + 1e-9,
                "n={n}: ptas {} vs pamad {pamad_obj}",
                ptas.objective()
            );
            assert!(
                ptas.objective() + 1e-9 >= full.objective(),
                "n={n}: ptas {} below exhaustive optimum {}",
                ptas.objective(),
                full.objective()
            );
        }
    }

    #[test]
    fn measured_ratio_vs_exhaustive_opt_is_within_epsilon_below_minimum() {
        let ladder = fig2_ladder();
        let n = minimum_channels(&ladder) - 1;
        let full = opt::search_full_bnb(&ladder, n, opt::OptConfig::default());
        let ptas = approximate(&ladder, n, 0.1, Weighting::PaperEq2);
        // Below the minimum the optimum is a rescaled seed ([7, 4, 2]
        // vs PAMAD's [4, 2, 1] here); the global scale sweep must reach
        // it to within the grid's (1 + eps) rounding loss.
        let ratio = ptas.ratio_vs(full.objective());
        assert!((1.0 - 1e-9..=1.1 + 1e-9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn placement_materializes() {
        let ladder = fig2_ladder();
        let ptas = approximate(&ladder, 2, 0.25, Weighting::PaperEq2);
        let placement = ptas.place(&ladder, 2).unwrap();
        assert!(placement.program().occupied_slots() > 0);
    }

    #[test]
    fn zero_reference_ratio_degenerates_gracefully() {
        let ladder = fig2_ladder();
        let ptas = approximate(&ladder, 2, 0.1, Weighting::PaperEq2);
        assert!(ptas.evaluated() >= 1);
        assert!(ptas.frequencies().iter().all(|&f| f >= 1));
        if ptas.objective() > 0.0 {
            assert_eq!(ptas.ratio_vs(0.0), f64::INFINITY);
        }
    }
}
