//! The difference-constraint graph and its negative-cycle solver.
//!
//! Every constraint `u - v <= c` becomes one edge `v -> u` of weight `c`.
//! The system is satisfiable iff the graph has no negative-weight cycle
//! (assign each variable its shortest-path distance from a virtual
//! source); a negative cycle, read back through the constraints that
//! built its edges, is a self-contained refutation — see
//! [`crate::certificate`].
//!
//! The solver is SPFA (queue-driven Bellman–Ford) with parent-edge
//! tracking. The systems built by [`crate::encode`] are unions of short
//! per-page chains and one long capacity chain, all meeting at the
//! origin, so relaxation settles in a near-linear number of edge visits;
//! the classic `len >= |V|` guard still bounds pathological inputs and is
//! what detects cycles. Iteration order is fixed (FIFO queue seeded in
//! variable order, adjacency in insertion order), so the cycle extracted
//! for a given system is deterministic — certificates are stable enough
//! to pin in byte-for-byte goldens.

use std::collections::VecDeque;

use crate::certificate::{CertEdge, ConstraintKind, VarName};

/// One directed edge of the constraint graph.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Edge {
    /// Source vertex (the subtrahend `v` of `u - v <= c`).
    pub src: u32,
    /// Destination vertex (the minuend `u`).
    pub dst: u32,
    /// The bound `c`.
    pub weight: i64,
    /// The constraint this edge encodes.
    pub kind: ConstraintKind,
}

/// A growable difference-constraint system.
#[derive(Debug, Default)]
pub(crate) struct DiffGraph {
    names: Vec<VarName>,
    edges: Vec<Edge>,
}

/// The origin variable `z`, always vertex 0.
pub(crate) const ORIGIN: u32 = 0;

impl DiffGraph {
    /// A fresh system holding only the origin variable.
    pub fn new() -> Self {
        Self {
            names: vec![VarName::Origin],
            edges: Vec::new(),
        }
    }

    /// Pre-sizes the arenas (`vars` excludes the origin).
    pub fn with_capacity(vars: usize, edges: usize) -> Self {
        let mut names = Vec::with_capacity(vars + 1);
        names.push(VarName::Origin);
        Self {
            names,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Allocates a new variable.
    pub fn var(&mut self, name: VarName) -> u32 {
        let id = u32::try_from(self.names.len()).expect("variable count fits in u32");
        self.names.push(name);
        id
    }

    /// Adds the constraint `minuend - subtrahend <= bound`.
    pub fn constrain(&mut self, minuend: u32, subtrahend: u32, bound: i64, kind: ConstraintKind) {
        self.edges.push(Edge {
            src: subtrahend,
            dst: minuend,
            weight: bound,
            kind,
        });
    }

    /// The display name of a variable.
    pub fn name(&self, var: u32) -> VarName {
        self.names[var as usize]
    }

    /// Finds a negative-weight cycle, if one exists, as certificate edges
    /// in traversal order; `None` means the system is satisfiable.
    pub fn negative_cycle(&self) -> Option<Vec<CertEdge>> {
        let n = self.names.len();
        let (first, next) = self.adjacency();
        // Virtual-source initialization: dist 0 everywhere finds any
        // negative cycle regardless of reachability from the origin.
        let mut dist = vec![0i64; n];
        let mut len = vec![0u32; n];
        let mut parent = vec![usize::MAX; n];
        let mut in_queue = vec![true; n];
        let mut queue: VecDeque<u32> = (0..u32::try_from(n).expect("var count fits u32")).collect();
        let limit = u32::try_from(n).expect("var count fits u32");
        while let Some(u) = queue.pop_front() {
            in_queue[u as usize] = false;
            let mut ei = first[u as usize];
            while ei != usize::MAX {
                let e = &self.edges[ei];
                let cand = dist[u as usize].saturating_add(e.weight);
                if cand < dist[e.dst as usize] {
                    dist[e.dst as usize] = cand;
                    parent[e.dst as usize] = ei;
                    len[e.dst as usize] = len[u as usize] + 1;
                    if len[e.dst as usize] >= limit {
                        return Some(self.extract_cycle(&parent, e.dst));
                    }
                    if !in_queue[e.dst as usize] {
                        in_queue[e.dst as usize] = true;
                        queue.push_back(e.dst);
                    }
                }
                ei = next[ei];
            }
        }
        None
    }

    /// Shortest distances from the origin, or `None` if a negative cycle
    /// makes them unbounded. `dist[x]` is the tightest upper bound the
    /// closed DBM places on `x - origin`; unreachable variables are
    /// unconstrained from above and report `i64::MAX`.
    pub fn shortest_from_origin(&self) -> Option<Vec<i64>> {
        let n = self.names.len();
        let (first, next) = self.adjacency();
        let mut dist = vec![i64::MAX; n];
        let mut len = vec![0u32; n];
        let mut in_queue = vec![false; n];
        dist[ORIGIN as usize] = 0;
        in_queue[ORIGIN as usize] = true;
        let mut queue: VecDeque<u32> = VecDeque::from([ORIGIN]);
        let limit = u32::try_from(n).expect("var count fits u32");
        while let Some(u) = queue.pop_front() {
            in_queue[u as usize] = false;
            let mut ei = first[u as usize];
            while ei != usize::MAX {
                let e = &self.edges[ei];
                let cand = dist[u as usize].saturating_add(e.weight);
                if cand < dist[e.dst as usize] {
                    dist[e.dst as usize] = cand;
                    len[e.dst as usize] = len[u as usize] + 1;
                    if len[e.dst as usize] >= limit {
                        return None;
                    }
                    if !in_queue[e.dst as usize] {
                        in_queue[e.dst as usize] = true;
                        queue.push_back(e.dst);
                    }
                }
                ei = next[ei];
            }
        }
        Some(dist)
    }

    /// Builds per-vertex singly-linked adjacency (insertion order).
    fn adjacency(&self) -> (Vec<usize>, Vec<usize>) {
        let mut first = vec![usize::MAX; self.names.len()];
        let mut next = vec![usize::MAX; self.edges.len()];
        for (i, e) in self.edges.iter().enumerate().rev() {
            next[i] = first[e.src as usize];
            first[e.src as usize] = i;
        }
        (first, next)
    }

    /// Walks the parent-edge chain back from `start` far enough to be
    /// inside the cycle, then collects it in forward traversal order.
    fn extract_cycle(&self, parent: &[usize], start: u32) -> Vec<CertEdge> {
        let mut cur = start;
        for _ in 0..self.names.len() {
            cur = self.edges[parent[cur as usize]].src;
        }
        let anchor = cur;
        let mut cycle = Vec::new();
        loop {
            let ei = parent[cur as usize];
            let e = &self.edges[ei];
            cycle.push(CertEdge {
                minuend: self.name(e.dst),
                subtrahend: self.name(e.src),
                bound: e.weight,
                kind: e.kind,
            });
            cur = e.src;
            if cur == anchor {
                break;
            }
        }
        cycle.reverse();
        cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{Certificate, Subject};

    fn check(cycle: &[CertEdge]) -> i64 {
        let cert = Certificate::new(
            Subject::Program {
                channels: 1,
                cycle: 1,
                pages: 0,
            },
            cycle.to_vec(),
        );
        cert.replay().expect("extracted cycle must replay")
    }

    #[test]
    fn satisfiable_chain_has_no_cycle() {
        let mut g = DiffGraph::new();
        let a = g.var(VarName::Token { rank: 1 });
        let b = g.var(VarName::Token { rank: 2 });
        g.constrain(a, ORIGIN, 5, ConstraintKind::TokenStart);
        g.constrain(b, a, 3, ConstraintKind::TokenStart);
        g.constrain(ORIGIN, b, -2, ConstraintKind::TokenStart);
        assert!(g.negative_cycle().is_none());
        let dist = g.shortest_from_origin().unwrap();
        assert_eq!(dist[a as usize], 5);
        assert_eq!(dist[b as usize], 8);
    }

    #[test]
    fn two_edge_negative_cycle_is_found_and_replays() {
        let mut g = DiffGraph::new();
        let a = g.var(VarName::Token { rank: 1 });
        g.constrain(a, ORIGIN, 3, ConstraintKind::TokenStart);
        g.constrain(ORIGIN, a, -4, ConstraintKind::TokenStart);
        let cycle = g.negative_cycle().expect("cycle expected");
        assert_eq!(cycle.len(), 2);
        assert_eq!(check(&cycle), -1);
        assert!(g.shortest_from_origin().is_none());
    }

    #[test]
    fn negative_self_loop_is_found() {
        let mut g = DiffGraph::new();
        let a = g.var(VarName::Token { rank: 1 });
        g.constrain(a, a, -2, ConstraintKind::TokenStart);
        let cycle = g.negative_cycle().expect("self-loop expected");
        assert_eq!(cycle.len(), 1);
        assert_eq!(check(&cycle), -2);
    }

    #[test]
    fn long_capacity_style_chain_yields_the_chain_cycle() {
        // 10 tokens, 1 per column, but only 4 columns of room.
        let mut g = DiffGraph::new();
        let toks: Vec<u32> = (1..=10)
            .map(|r| g.var(VarName::Token { rank: r }))
            .collect();
        for &t in &toks {
            g.constrain(t, ORIGIN, 3, ConstraintKind::TokenSpan { cycle: 4 });
            g.constrain(ORIGIN, t, 0, ConstraintKind::TokenStart);
        }
        for w in toks.windows(2) {
            g.constrain(w[0], w[1], -1, ConstraintKind::Capacity { channels: 1 });
        }
        let cycle = g.negative_cycle().expect("overfull chain must cycle");
        assert!(check(&cycle) < 0);
    }

    #[test]
    fn zero_weight_cycle_is_not_reported() {
        let mut g = DiffGraph::new();
        let a = g.var(VarName::Token { rank: 1 });
        g.constrain(a, ORIGIN, 2, ConstraintKind::TokenStart);
        g.constrain(ORIGIN, a, -2, ConstraintKind::TokenStart);
        assert!(g.negative_cycle().is_none());
        assert_eq!(g.shortest_from_origin().unwrap()[a as usize], 2);
    }
}
