//! Machine-checkable infeasibility certificates.
//!
//! A difference-constraint system `{u - v <= c}` is unsatisfiable **iff**
//! its constraint graph (one edge `v -> u` of weight `c` per constraint)
//! contains a cycle of negative total weight: summing the constraints
//! around the cycle telescopes every variable away and leaves `0 <= sum`,
//! a contradiction whenever the sum is negative. A [`Certificate`] is that
//! cycle, stored as the exact list of constraint edges the solver found.
//!
//! Verifying a certificate needs **no solver**: [`Certificate::replay`]
//! checks that consecutive edges chain variable-to-variable, that the
//! cycle closes, and that the bounds sum below zero — arithmetic any
//! third party can redo from the JSON rendering in a few lines of any
//! language (CI does exactly that in python).

use airsched_core::types::PageId;

/// One variable of the difference-constraint system.
///
/// Columns are measured relative to [`VarName::Origin`] (the start of the
/// broadcast cycle), so every other variable denotes "the column at which
/// something airs".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarName {
    /// The reference point `z`: column 0 of the cycle.
    Origin,
    /// `x[p,k]`: the column of the `k`-th occurrence of page `p` within
    /// one cycle (`k` is 0-based and ascending).
    Occurrence {
        /// The page whose occurrence this is.
        page: PageId,
        /// 0-based occurrence index within the cycle.
        occ: u64,
    },
    /// `s[j]`: the column of the `j`-th cell-token in the aggregate
    /// capacity chain (`j` is 1-based; tokens are all pages' occurrences
    /// merged and sorted by column).
    Token {
        /// 1-based rank in the sorted token order.
        rank: u64,
    },
}

impl VarName {
    /// Canonical compact spelling, used by both renderers and by the
    /// replay chain check (`origin`, `x[p3,1]`, `s[7]`).
    #[must_use]
    pub fn display(&self) -> String {
        match self {
            Self::Origin => "origin".to_string(),
            Self::Occurrence { page, occ } => format!("x[p{},{occ}]", page.index()),
            Self::Token { rank } => format!("s[{rank}]"),
        }
    }
}

/// Why a constraint edge exists: which rule of the model (or which
/// observation of a concrete program) it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// `x[p,0] - z <= t - 1`: the first airing of a page with expected
    /// time `t` must land strictly before column `t` (validity cond. 1).
    First {
        /// The page's expected time `t`, in slots.
        limit: u64,
    },
    /// `x[p,k+1] - x[p,k] <= t`: consecutive airings at most `t` apart
    /// (validity condition 2).
    Gap {
        /// The page's expected time `t`, in slots.
        limit: u64,
    },
    /// `x[p,0] - x[p,last] <= t - T`: the wraparound gap from the last
    /// airing through the cycle boundary back to the first is also at
    /// most `t` (validity condition 2 across the seam).
    Wrap {
        /// The page's expected time `t`, in slots.
        limit: u64,
        /// The cycle length `T`, in slots.
        cycle: u64,
    },
    /// `x[p,k] - x[p,k+1] <= -1`: occurrences are distinct columns in
    /// ascending order.
    Order,
    /// `z - x <= 0`: occurrences do not precede the cycle start.
    RangeLo,
    /// `x - z <= T - 1`: occurrences fit inside the cycle.
    RangeHi {
        /// The cycle length `T`, in slots.
        cycle: u64,
    },
    /// `s[j] - s[j+N] <= -1`: with `N` channels at most `N` tokens share
    /// a column, so `N` ranks further down the sorted order means at
    /// least one column later.
    Capacity {
        /// The channel budget `N`.
        channels: u32,
    },
    /// `s[j] - z <= T - 1`: every token airs inside the cycle.
    TokenSpan {
        /// The cycle length `T`, in slots.
        cycle: u64,
    },
    /// `z - s[j] <= 0`: tokens air at column 0 or later.
    TokenStart,
    /// `x[p,k] - z <= v`: the program under check airs this occurrence at
    /// column `v` (observation, upper half).
    ObservedUpper {
        /// The observed column.
        column: u64,
    },
    /// `z - x[p,k] <= -v`: the same observation, lower half.
    ObservedLower {
        /// The observed column.
        column: u64,
    },
    /// `z - x[p,0] <= -horizon`: the program never airs the page inside
    /// the horizon (observation for a missing page).
    NeverObserved {
        /// `max(cycle, expected_time)`, the span searched for an airing.
        horizon: u64,
    },
}

impl ConstraintKind {
    /// Short kebab-case label (stable across renderers and goldens).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::First { .. } => "first-appearance",
            Self::Gap { .. } => "gap",
            Self::Wrap { .. } => "wraparound-gap",
            Self::Order => "order",
            Self::RangeLo => "range-lo",
            Self::RangeHi { .. } => "range-hi",
            Self::Capacity { .. } => "capacity",
            Self::TokenSpan { .. } => "token-span",
            Self::TokenStart => "token-start",
            Self::ObservedUpper { .. } => "observed-column-upper",
            Self::ObservedLower { .. } => "observed-column-lower",
            Self::NeverObserved { .. } => "never-observed",
        }
    }

    /// Whether this edge records an *observation* of the checked program
    /// rather than a rule of the model. A violated-program certificate
    /// always mixes both: the model edge that was broken plus the
    /// observations pinning the airing columns that broke it.
    #[must_use]
    pub fn is_observation(&self) -> bool {
        matches!(
            self,
            Self::ObservedUpper { .. } | Self::ObservedLower { .. } | Self::NeverObserved { .. }
        )
    }
}

/// One constraint `minuend - subtrahend <= bound` of the negative cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertEdge {
    /// The `u` of `u - v <= c`.
    pub minuend: VarName,
    /// The `v` of `u - v <= c`.
    pub subtrahend: VarName,
    /// The `c` of `u - v <= c`.
    pub bound: i64,
    /// The model rule or observation this constraint encodes.
    pub kind: ConstraintKind,
}

/// What the refuted system was about, for rendering and for relating the
/// certificate back to its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Subject {
    /// A ladder + channel-budget feasibility question (no program given).
    Ladder {
        /// Expected times `t_1..t_h`, ascending.
        times: Vec<u64>,
        /// Page counts `P_1..P_h`.
        counts: Vec<u64>,
        /// The cycle length `T = t_h` the system was built over.
        cycle: u64,
        /// The channel budget under test.
        channels: u32,
    },
    /// A concrete broadcast program checked against per-page deadlines.
    Program {
        /// The program's channel count.
        channels: u32,
        /// The program's cycle length, in slots.
        cycle: u64,
        /// Number of pages whose deadlines were checked.
        pages: u64,
    },
}

/// Ways a certificate can fail to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The certificate carries no edges.
    Empty,
    /// Edge `at` does not start where edge `at - 1` (cyclically) ended.
    BrokenChain {
        /// Index of the offending edge.
        at: usize,
    },
    /// The chained bounds sum to `sum >= 0`, refuting nothing.
    NonNegativeSum {
        /// The actual sum.
        sum: i64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "certificate has no edges"),
            Self::BrokenChain { at } => {
                write!(f, "edge {at} does not chain from its predecessor")
            }
            Self::NonNegativeSum { sum } => {
                write!(f, "cycle bounds sum to {sum}, which refutes nothing")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// A negative cycle: independently replayable proof of infeasibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    subject: Subject,
    edges: Vec<CertEdge>,
}

impl Certificate {
    /// Packages a negative cycle found by the solver.
    #[must_use]
    pub fn new(subject: Subject, edges: Vec<CertEdge>) -> Self {
        Self { subject, edges }
    }

    /// What the refuted system was about.
    #[must_use]
    pub fn subject(&self) -> &Subject {
        &self.subject
    }

    /// The cycle's edges, in traversal order: edge `i`'s minuend is edge
    /// `i + 1`'s subtrahend, and the last minuend is the first subtrahend.
    #[must_use]
    pub fn edges(&self) -> &[CertEdge] {
        &self.edges
    }

    /// Number of edges in the cycle.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the certificate is (degenerately) empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The telescoped bound: `sum_i bound_i`.
    #[must_use]
    pub fn bound_sum(&self) -> i64 {
        self.edges.iter().map(|e| e.bound).sum()
    }

    /// Re-adds the constraints around the cycle without consulting any
    /// solver state: consecutive edges must chain (`minuend[i] ==
    /// subtrahend[i+1]`, cyclically) and the bounds must sum below zero.
    /// On success returns the (negative) sum.
    ///
    /// # Errors
    ///
    /// Returns the first [`ReplayError`] encountered.
    pub fn replay(&self) -> Result<i64, ReplayError> {
        if self.edges.is_empty() {
            return Err(ReplayError::Empty);
        }
        for i in 0..self.edges.len() {
            let prev = &self.edges[(i + self.edges.len() - 1) % self.edges.len()];
            if self.edges[i].subtrahend != prev.minuend {
                return Err(ReplayError::BrokenChain { at: i });
            }
        }
        let sum = self.bound_sum();
        if sum >= 0 {
            return Err(ReplayError::NonNegativeSum { sum });
        }
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(minuend: VarName, subtrahend: VarName, bound: i64) -> CertEdge {
        CertEdge {
            minuend,
            subtrahend,
            bound,
            kind: ConstraintKind::Order,
        }
    }

    fn subject() -> Subject {
        Subject::Ladder {
            times: vec![2],
            counts: vec![1],
            cycle: 2,
            channels: 1,
        }
    }

    #[test]
    fn replay_accepts_a_real_negative_cycle() {
        let x = VarName::Occurrence {
            page: PageId::new(0),
            occ: 0,
        };
        let cert = Certificate::new(
            subject(),
            vec![edge(x, VarName::Origin, 1), edge(VarName::Origin, x, -2)],
        );
        assert_eq!(cert.replay(), Ok(-1));
    }

    #[test]
    fn replay_rejects_broken_chains_and_nonnegative_sums() {
        let x = VarName::Occurrence {
            page: PageId::new(0),
            occ: 0,
        };
        let y = VarName::Occurrence {
            page: PageId::new(1),
            occ: 0,
        };
        assert_eq!(
            Certificate::new(subject(), vec![]).replay(),
            Err(ReplayError::Empty)
        );
        let broken = Certificate::new(
            subject(),
            vec![edge(x, VarName::Origin, 1), edge(VarName::Origin, y, -2)],
        );
        assert_eq!(broken.replay(), Err(ReplayError::BrokenChain { at: 1 }));
        let weak = Certificate::new(
            subject(),
            vec![edge(x, VarName::Origin, 2), edge(VarName::Origin, x, -2)],
        );
        assert_eq!(weak.replay(), Err(ReplayError::NonNegativeSum { sum: 0 }));
    }

    #[test]
    fn self_loop_certificates_replay() {
        let x = VarName::Occurrence {
            page: PageId::new(3),
            occ: 0,
        };
        let cert = Certificate::new(subject(), vec![edge(x, x, -2)]);
        assert_eq!(cert.replay(), Ok(-2));
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(VarName::Origin.display(), "origin");
        assert_eq!(
            VarName::Occurrence {
                page: PageId::new(3),
                occ: 1
            }
            .display(),
            "x[p3,1]"
        );
        assert_eq!(VarName::Token { rank: 7 }.display(), "s[7]");
        assert!(ConstraintKind::ObservedUpper { column: 4 }.is_observation());
        assert!(!ConstraintKind::Gap { limit: 4 }.is_observation());
    }
}
