//! Constraint encoders: from scheduling inputs to difference systems.
//!
//! Two encodings share one variable vocabulary (see
//! [`crate::certificate::VarName`]):
//!
//! **Ladder mode** (`ladder + channel budget`, no program): over one cycle
//! `T = t_h`, a valid program must air page `p` of a group with expected
//! time `t` exactly `m = T / t` times (condition 2 forces a gap of at
//! most `t` between consecutive airings, and `m` airings are the fewest
//! that close the cycle; extra airings only tighten the system, so the
//! canonical count is the weakest — i.e. complete — choice). Per page:
//! first appearance `x[p,0] - z <= t-1`, gaps
//! `x[p,k+1] - x[p,k] <= t`, the wraparound `x[p,0] - x[p,m-1] <= t - T`,
//! ordering and range edges. Capacity is not a difference of two page
//! variables, so it is expressed over the *sorted token chain*: the
//! multiset of all `M = sum_p T/t_p` cell placements, sorted by column,
//! gives tokens `s[1] <= ... <= s[M]`; with `N` channels at most `N`
//! tokens share a column, hence `s[j] - s[j+N] <= -1`, and every token
//! lies in `[0, T-1]`. A negative cycle through that chain exists exactly
//! when `M > N * T`, which is exactly Theorem 3.1's
//! `N < ceil(sum_i P_i / t_i)` — so the solver refutes under-budgeted
//! ladders with an explicit pigeonhole cycle of about `T + 2` edges.
//!
//! **Observed mode** (`program + per-page deadlines`): the model edges
//! for the *observed* occurrence counts, plus observation edges pinning
//! each occurrence to the column where the program actually airs it
//! (`x = v` as the pair `x - z <= v`, `z - x <= -v`). A violated deadline
//! then shows up as a short negative cycle mixing one broken model edge
//! with the observations that break it; a page that never airs gets the
//! horizon observation `z - x[p,0] <= -max(T, t)`, which contradicts its
//! first-appearance edge. The verdict provably matches
//! [`airsched_core::validity::check`] on any input: each validity
//! violation induces one of the cycles above, and a valid program is
//! itself a satisfying assignment (set `z = 0`, `x = v`), which rules
//! every negative cycle out.

use airsched_core::error::ScheduleError;
use airsched_core::group::GroupLadder;
use airsched_core::program::Occurrences;
use airsched_core::types::PageId;

use crate::certificate::{ConstraintKind, VarName};
use crate::graph::{DiffGraph, ORIGIN};

/// Hard cap on capacity-chain tokens (and with them variables/edges), so
/// absurd cycle lengths fail loudly instead of exhausting memory. The
/// paper-scale workload (1000 pages, `t = 4..512`) needs ~32k tokens.
const MAX_TOKENS: u128 = 1 << 20;

/// Saturating `u64 -> i64` for constraint bounds. Expected times beyond
/// `i64::MAX` slots are not representable; they saturate, which only
/// loosens bounds that could never bind at any physical scale.
fn bound(x: u64) -> i64 {
    i64::try_from(x).unwrap_or(i64::MAX)
}

/// A ladder-mode system plus the handles the synthesizer needs.
#[derive(Debug)]
pub(crate) struct LadderSystem {
    /// The difference-constraint graph.
    pub graph: DiffGraph,
    /// Per page (group-major order), the variable of its first occurrence.
    pub first_var: Vec<u32>,
}

/// Total capacity tokens `M = sum_p T / t_p` for a ladder.
pub(crate) fn token_count(ladder: &GroupLadder) -> u128 {
    let cycle = ladder.max_time();
    ladder
        .times()
        .iter()
        .zip(ladder.page_counts())
        .map(|(&t, &p)| u128::from(cycle / t) * u128::from(p))
        .sum()
}

/// Builds the ladder-mode system for `ladder` under `channels`.
///
/// # Errors
///
/// Returns [`ScheduleError::WorkloadTooLarge`] when the system would
/// exceed [`MAX_TOKENS`] capacity tokens.
pub(crate) fn ladder_system(
    ladder: &GroupLadder,
    channels: u32,
) -> Result<LadderSystem, ScheduleError> {
    let cycle = ladder.max_time();
    let tokens = token_count(ladder);
    if tokens > MAX_TOKENS {
        return Err(ScheduleError::WorkloadTooLarge {
            reason: "difference-constraint system exceeds the solver's token budget",
        });
    }
    let tokens = u64::try_from(tokens).expect("token count under MAX_TOKENS fits u64");
    let vars = usize::try_from(2 * tokens).expect("variable count fits usize");
    // Per occurrence: gap + order + 2 range edges (~4), plus first/wrap
    // per page; per token: span + start + capacity (~3).
    let mut graph = DiffGraph::with_capacity(vars, vars * 4);
    let mut first_var = Vec::with_capacity(ladder.total_pages() as usize);

    for (page, group) in ladder.pages() {
        let t = ladder.time_of(group).slots();
        let m = cycle / t;
        let occs: Vec<u32> = (0..m)
            .map(|k| graph.var(VarName::Occurrence { page, occ: k }))
            .collect();
        first_var.push(occs[0]);
        graph.constrain(
            occs[0],
            ORIGIN,
            bound(t) - 1,
            ConstraintKind::First { limit: t },
        );
        for k in 0..(m as usize) {
            if k + 1 < m as usize {
                graph.constrain(
                    occs[k + 1],
                    occs[k],
                    bound(t),
                    ConstraintKind::Gap { limit: t },
                );
                graph.constrain(occs[k], occs[k + 1], -1, ConstraintKind::Order);
            }
            graph.constrain(ORIGIN, occs[k], 0, ConstraintKind::RangeLo);
            graph.constrain(
                occs[k],
                ORIGIN,
                bound(cycle) - 1,
                ConstraintKind::RangeHi { cycle },
            );
        }
        graph.constrain(
            occs[0],
            occs[m as usize - 1],
            bound(t).saturating_sub(bound(cycle)),
            ConstraintKind::Wrap { limit: t, cycle },
        );
    }

    let tok: Vec<u32> = (1..=tokens)
        .map(|rank| graph.var(VarName::Token { rank }))
        .collect();
    for (j, &s) in tok.iter().enumerate() {
        graph.constrain(
            s,
            ORIGIN,
            bound(cycle) - 1,
            ConstraintKind::TokenSpan { cycle },
        );
        graph.constrain(ORIGIN, s, 0, ConstraintKind::TokenStart);
        let above = j + channels as usize;
        if above < tok.len() || channels == 0 {
            let target = if channels == 0 { s } else { tok[above] };
            graph.constrain(s, target, -1, ConstraintKind::Capacity { channels });
        }
    }

    Ok(LadderSystem { graph, first_var })
}

/// Builds the observed-mode system for `source` against per-page
/// `deadlines` (`(page, expected_time)` pairs, as the station's catalogue
/// keeps them).
pub(crate) fn observed_system<S: Occurrences + ?Sized>(
    source: &S,
    deadlines: &[(PageId, u64)],
) -> DiffGraph {
    let cycle = source.cycle_len();
    let mut graph = DiffGraph::new();
    for &(page, t) in deadlines {
        let cols = source.occurrence_columns(page);
        if cols.is_empty() {
            let x = graph.var(VarName::Occurrence { page, occ: 0 });
            graph.constrain(x, ORIGIN, bound(t) - 1, ConstraintKind::First { limit: t });
            let horizon = cycle.max(t);
            graph.constrain(
                ORIGIN,
                x,
                -bound(horizon),
                ConstraintKind::NeverObserved { horizon },
            );
            continue;
        }
        let occs: Vec<u32> = (0..cols.len() as u64)
            .map(|k| graph.var(VarName::Occurrence { page, occ: k }))
            .collect();
        graph.constrain(
            occs[0],
            ORIGIN,
            bound(t) - 1,
            ConstraintKind::First { limit: t },
        );
        for k in 0..cols.len() {
            if k + 1 < cols.len() {
                graph.constrain(
                    occs[k + 1],
                    occs[k],
                    bound(t),
                    ConstraintKind::Gap { limit: t },
                );
            }
            let v = bound(cols[k]);
            graph.constrain(
                occs[k],
                ORIGIN,
                v,
                ConstraintKind::ObservedUpper { column: cols[k] },
            );
            graph.constrain(
                ORIGIN,
                occs[k],
                -v,
                ConstraintKind::ObservedLower { column: cols[k] },
            );
        }
        graph.constrain(
            occs[0],
            occs[cols.len() - 1],
            bound(t).saturating_sub(bound(cycle)),
            ConstraintKind::Wrap { limit: t, cycle },
        );
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::bound::minimum_channels;
    use airsched_core::program::BroadcastProgram;
    use airsched_core::susc;
    use airsched_core::types::{ChannelId, GridPos, SlotIndex};

    fn ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap()
    }

    #[test]
    fn ladder_system_is_satisfiable_at_the_minimum() {
        let min = minimum_channels(&ladder());
        let sys = ladder_system(&ladder(), min).unwrap();
        assert!(sys.graph.negative_cycle().is_none());
        // The closed DBM bounds each first occurrence by t - 1.
        let dist = sys.graph.shortest_from_origin().unwrap();
        assert_eq!(dist[sys.first_var[0] as usize], 1);
        assert_eq!(dist[sys.first_var[4] as usize], 3);
    }

    #[test]
    fn ladder_system_refutes_below_the_minimum() {
        let min = minimum_channels(&ladder());
        let sys = ladder_system(&ladder(), min - 1).unwrap();
        let cycle = sys.graph.negative_cycle().expect("must refute");
        let sum: i64 = cycle.iter().map(|e| e.bound).sum();
        assert!(sum < 0, "cycle sum {sum}");
    }

    #[test]
    fn zero_channels_refute_via_a_self_loop() {
        let sys = ladder_system(&ladder(), 0).unwrap();
        assert!(sys.graph.negative_cycle().is_some());
    }

    #[test]
    fn token_count_matches_theorem_31_numerator() {
        // M / T == sum P_i / t_i: 2/2 + 3/4 = 1.75 -> M = 7 at T = 4.
        assert_eq!(token_count(&ladder()), 7);
    }

    #[test]
    fn observed_system_accepts_a_valid_susc_program() {
        let l = ladder();
        let program = susc::schedule(&l, minimum_channels(&l)).unwrap();
        let deadlines: Vec<(PageId, u64)> =
            l.pages().map(|(p, g)| (p, l.time_of(g).slots())).collect();
        assert!(observed_system(&program, &deadlines)
            .negative_cycle()
            .is_none());
    }

    #[test]
    fn observed_system_refutes_a_gap_violation() {
        // One page, expected time 2, aired only at column 0 of a 4-cycle:
        // the wraparound gap is 4 > 2.
        let mut p = BroadcastProgram::new(1, 4);
        p.place(
            GridPos::new(ChannelId::new(0), SlotIndex::new(0)),
            PageId::new(0),
        )
        .unwrap();
        let g = observed_system(&p, &[(PageId::new(0), 2)]);
        let cycle = g.negative_cycle().expect("wrap violation must refute");
        let sum: i64 = cycle.iter().map(|e| e.bound).sum();
        assert!(sum < 0);
    }

    #[test]
    fn observed_system_refutes_a_missing_page() {
        let p = BroadcastProgram::new(1, 4);
        let g = observed_system(&p, &[(PageId::new(0), 8)]);
        assert!(g.negative_cycle().is_some());
    }

    #[test]
    fn giant_times_saturate_instead_of_overflowing() {
        let mut p = BroadcastProgram::new(1, 4);
        p.place(
            GridPos::new(ChannelId::new(0), SlotIndex::new(0)),
            PageId::new(0),
        )
        .unwrap();
        let g = observed_system(&p, &[(PageId::new(0), u64::MAX)]);
        assert!(g.negative_cycle().is_none());
    }
}
