//! Semantic feasibility analysis for broadcast schedules, in the style of
//! clock-zone (DBM) timed-automata checking.
//!
//! Where `airsched-lint` pattern-matches programs against eleven
//! syntactic rules, this crate *proves* things. The paper's validity
//! condition — every tune-in instant meets every expected time — is
//! encoded as a system of difference constraints `u - v <= c` over
//! per-page occurrence columns (the `encode` module documents the exact
//! edges, including the sorted-token chain that turns the one-page-per-cell
//! capacity bound into difference form). Bellman–Ford-style negative-cycle
//! detection over the constraint graph then yields, for every question,
//! an artifact a third party can check without trusting the solver:
//!
//! * **`Feasible`** carries a concrete witness schedule, synthesized from
//!   the closed DBM's first-occurrence windows and guaranteed to pass
//!   [`airsched_core::validity::check`] and the strict lint set;
//! * **`Infeasible`** carries a [`Certificate`]: the exact negative cycle,
//!   as a list of constraint edges whose bounds telescope below zero.
//!   [`Certificate::replay`] (or a dozen lines of python over the JSON
//!   rendering) re-adds the cycle and confirms the refutation.
//!
//! On group ladders the oracle is exact: divisibility (`t_i | t_{i+1}`)
//! makes Theorem 3.1's bound tight, and the capacity chain's negative
//! cycle appears exactly when the budget is below that bound. (General
//! pinwheel feasibility is NP-hard; this crate never claims exactness
//! beyond the divisible structure [`GroupLadder`] enforces.) On concrete
//! programs the observed-mode verdict matches `validity::check` exactly
//! for arbitrary per-page deadlines.
//!
//! The crate also hosts the Kenyon–Schabanel–Young-style PTAS baseline
//! ([`mod@crate::ptas`]) so approximation quality can be measured against
//! the exact OPT search.

pub mod certificate;
mod encode;
mod graph;
pub mod ptas;
pub mod render;
mod synth;

use airsched_core::bound::{minimum_channels, minimum_channels_for_times};
use airsched_core::error::ScheduleError;
use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::PageId;

pub use certificate::{CertEdge, Certificate, ConstraintKind, ReplayError, Subject, VarName};

/// The solver's answer: a proof either way.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// A valid schedule exists; here is one.
    Feasible(Box<BroadcastProgram>),
    /// No valid schedule exists; here is the negative cycle proving it.
    Infeasible(Box<Certificate>),
}

impl Verdict {
    /// Whether the verdict is feasible.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        matches!(self, Self::Feasible(_))
    }

    /// The witness schedule, when feasible.
    #[must_use]
    pub fn witness(&self) -> Option<&BroadcastProgram> {
        match self {
            Self::Feasible(program) => Some(program),
            Self::Infeasible(_) => None,
        }
    }

    /// The infeasibility certificate, when infeasible.
    #[must_use]
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Self::Feasible(_) => None,
            Self::Infeasible(cert) => Some(cert),
        }
    }
}

/// Decides whether any valid program for `ladder` fits `channels`
/// channels, returning a synthesized witness or a negative-cycle
/// certificate.
///
/// # Errors
///
/// Returns [`ScheduleError::WorkloadTooLarge`] when the constraint
/// system would exceed the solver's size budget.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::validity;
///
/// // Paper §3.1: P = (2, 3), t = (2, 4) needs ceil(1.75) = 2 channels.
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let yes = airsched_solve::check_ladder(&ladder, 2)?;
/// assert!(validity::check(yes.witness().unwrap(), &ladder).is_valid());
/// let no = airsched_solve::check_ladder(&ladder, 1)?;
/// assert!(no.certificate().unwrap().replay().unwrap() < 0);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
pub fn check_ladder(ladder: &GroupLadder, channels: u32) -> Result<Verdict, ScheduleError> {
    let system = encode::ladder_system(ladder, channels)?;
    if let Some(edges) = system.graph.negative_cycle() {
        return Ok(Verdict::Infeasible(Box::new(Certificate::new(
            ladder_subject(ladder, channels),
            edges,
        ))));
    }
    Ok(Verdict::Feasible(Box::new(synth::extract(
        &system, ladder, channels,
    ))))
}

/// Checks a concrete `program` against the `ladder` it was scheduled
/// from. The verdict agrees exactly with
/// [`airsched_core::validity::check`]: `Feasible` iff the report is
/// valid, with the (cloned) program itself as the witness.
#[must_use]
pub fn check_program(program: &BroadcastProgram, ladder: &GroupLadder) -> Verdict {
    let deadlines: Vec<(PageId, u64)> = ladder
        .pages()
        .map(|(page, group)| (page, ladder.time_of(group).slots()))
        .collect();
    check_observed(program, &deadlines)
}

/// Checks a concrete `program` against raw per-page deadlines, as the
/// station's plan-swap gate sees them (no ladder structure assumed).
#[must_use]
pub fn check_observed(program: &BroadcastProgram, deadlines: &[(PageId, u64)]) -> Verdict {
    let graph = encode::observed_system(program, deadlines);
    if let Some(edges) = graph.negative_cycle() {
        let subject = Subject::Program {
            channels: program.channels(),
            cycle: program.cycle_len(),
            pages: deadlines.len() as u64,
        };
        return Verdict::Infeasible(Box::new(Certificate::new(subject, edges)));
    }
    Verdict::Feasible(Box::new(program.clone()))
}

/// Synthesizes a valid program for `ladder` on `channels` channels.
///
/// This is the convenience form of [`check_ladder`] for callers that
/// only want the schedule; the certificate is folded into an error.
/// Unlike [`airsched_core::susc::schedule`] preceded by
/// [`airsched_core::rearrange`], no geometric rounding happens, so
/// irregular (divisibility-only) ladders keep their true expected times
/// and often fit fewer channels.
///
/// # Errors
///
/// [`ScheduleError::InsufficientChannels`] below the feasible minimum,
/// or [`ScheduleError::WorkloadTooLarge`] when the system exceeds the
/// solver's size budget.
pub fn synthesize(ladder: &GroupLadder, channels: u32) -> Result<BroadcastProgram, ScheduleError> {
    match check_ladder(ladder, channels)? {
        Verdict::Feasible(program) => Ok(*program),
        Verdict::Infeasible(_) => Err(ScheduleError::InsufficientChannels {
            supplied: channels,
            required: minimum_channels(ladder),
        }),
    }
}

/// The smallest channel budget the solver finds feasible, by doubling
/// then binary search over [`check_ladder`]'s verdict (no appeal to
/// Theorem 3.1's formula — this is the independent oracle the bound is
/// cross-checked against).
///
/// # Errors
///
/// Returns [`ScheduleError::WorkloadTooLarge`] when the constraint
/// system exceeds the solver's size budget.
pub fn minimal_feasible_channels(ladder: &GroupLadder) -> Result<u32, ScheduleError> {
    let infeasible = |n: u32| -> Result<bool, ScheduleError> {
        Ok(encode::ladder_system(ladder, n)?
            .graph
            .negative_cycle()
            .is_some())
    };
    let mut hi = 1u32;
    while infeasible(hi)? {
        hi = hi.checked_mul(2).ok_or(ScheduleError::WorkloadTooLarge {
            reason: "no feasible channel budget below u32::MAX",
        })?;
    }
    let mut lo = hi / 2; // 0, or the last budget probed infeasible.
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if infeasible(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(hi)
}

/// One cross-check of the three independent Theorem 3.1 readings:
/// the solver's search, the ladder bound, and the raw-catalogue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossCheck {
    /// [`minimal_feasible_channels`]: the solver's answer.
    pub solver: u32,
    /// [`airsched_core::bound::minimum_channels`]: the ladder formula.
    pub bound: u32,
    /// [`airsched_core::bound::minimum_channels_for_times`] over the
    /// expanded per-page times: the catalogue formula.
    pub catalogue: u32,
}

impl CrossCheck {
    /// Whether all three answers agree.
    #[must_use]
    pub fn agrees(&self) -> bool {
        self.solver == self.bound && self.bound == self.catalogue
    }
}

/// Computes all three Theorem 3.1 readings for `ladder`.
///
/// # Errors
///
/// Propagates solver size limits and catalogue-bound overflow as
/// [`ScheduleError`].
pub fn cross_check_minimum(ladder: &GroupLadder) -> Result<CrossCheck, ScheduleError> {
    let mut times = Vec::with_capacity(ladder.total_pages() as usize);
    for (_, group) in ladder.pages() {
        times.push(ladder.time_of(group).slots());
    }
    Ok(CrossCheck {
        solver: minimal_feasible_channels(ladder)?,
        bound: minimum_channels(ladder),
        catalogue: minimum_channels_for_times(&times)?,
    })
}

fn ladder_subject(ladder: &GroupLadder, channels: u32) -> Subject {
    Subject::Ladder {
        times: ladder.times().to_vec(),
        counts: ladder.page_counts().to_vec(),
        cycle: ladder.max_time(),
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::{pamad, susc, validity};
    use airsched_lint::{lint, LintConfig, LintInput};

    fn paper_ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap()
    }

    #[test]
    fn feasible_witness_is_valid_and_lint_clean() {
        let ladder = paper_ladder();
        let verdict = check_ladder(&ladder, 2).unwrap();
        let witness = verdict.witness().expect("2 channels suffice");
        assert!(validity::check(witness, &ladder).is_valid());
        let report = lint(
            &LintInput::for_program(witness, &ladder),
            &LintConfig::default(),
        );
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn infeasible_certificate_replays() {
        let ladder = paper_ladder();
        let verdict = check_ladder(&ladder, 1).unwrap();
        let cert = verdict.certificate().expect("1 channel is too few");
        let sum = cert.replay().expect("certificate must replay");
        assert!(sum < 0);
        assert!(!verdict.is_feasible());
    }

    #[test]
    fn program_verdicts_match_validity_check() {
        let ladder = paper_ladder();
        let good = susc::schedule(&ladder, 2).unwrap();
        assert!(check_program(&good, &ladder).is_feasible());
        // PAMAD below the minimum misses deadlines; both oracles say so.
        let bad = pamad::schedule(&ladder, 1).unwrap().into_program();
        let report = validity::check(&bad, &ladder);
        let verdict = check_program(&bad, &ladder);
        assert_eq!(report.is_valid(), verdict.is_feasible());
        if let Some(cert) = verdict.certificate() {
            assert!(cert.replay().is_ok());
            assert!(cert.edges().iter().any(|e| e.kind.is_observation()));
        }
    }

    #[test]
    fn synthesize_reports_insufficient_channels() {
        let ladder = paper_ladder();
        assert!(synthesize(&ladder, 2).is_ok());
        assert!(matches!(
            synthesize(&ladder, 1),
            Err(ScheduleError::InsufficientChannels {
                supplied: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn minimal_channels_agree_with_both_bounds() {
        for groups in [
            vec![(2, 2), (4, 3)],
            vec![(2, 1), (4, 2), (12, 6)],
            vec![(3, 7)],
            vec![(2, 5), (6, 1), (12, 4), (24, 8)],
        ] {
            let ladder = GroupLadder::new(groups).unwrap();
            let check = cross_check_minimum(&ladder).unwrap();
            assert!(check.agrees(), "{check:?} on {ladder:?}");
        }
    }

    #[test]
    fn empty_deadline_set_is_trivially_feasible() {
        let program = BroadcastProgram::new(1, 4);
        assert!(check_observed(&program, &[]).is_feasible());
    }
}
