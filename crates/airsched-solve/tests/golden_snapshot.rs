//! Golden snapshots for the certificate renderers.
//!
//! A certificate is only as good as its stability: CI's independent
//! python replayer parses the JSON form, the README quotes the text
//! form, and `airsched solve` prints both verbatim (`main` uses
//! `print!`, so CLI bytes == renderer bytes). These tests pin each
//! renderer byte for byte against the checked-in goldens in
//! `tests/golden/` — the same files CI diffs the CLI output against —
//! so any wording, ordering, or layout drift is a conscious two-file
//! diff here, never an accident.
//!
//! Regenerate after an intentional change:
//!
//! ```console
//! $ cargo run -q -p airsched-cli -- solve check --times 2,4 --counts 2,3 \
//!     --channels 1 > tests/golden/solve_infeasible.txt
//! $ cargo run -q -p airsched-cli -- solve check --times 2,4 --counts 2,3 \
//!     --channels 1 --format json > tests/golden/solve_infeasible.json
//! ```

use airsched_core::group::GroupLadder;
use airsched_core::textio::parse_program;
use airsched_solve::render::{render_json, render_text};
use airsched_solve::{check_ladder, check_program, Certificate};

/// The README workload — `--times 2,4 --counts 2,3` — at a budget one
/// below its Theorem 3.1 minimum of 2.
fn ladder_certificate() -> Certificate {
    let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
    let verdict = check_ladder(&ladder, 1).unwrap();
    verdict
        .certificate()
        .expect("1 channel is infeasible")
        .clone()
}

fn golden(name: &str) -> String {
    let path = format!("{}/../../tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("golden file is checked in")
}

#[test]
fn text_renderer_output_is_pinned() {
    assert_eq!(
        render_text(&ladder_certificate()),
        golden("solve_infeasible.txt")
    );
}

#[test]
fn json_renderer_output_is_pinned() {
    assert_eq!(
        render_json(&ladder_certificate()),
        golden("solve_infeasible.json")
    );
}

/// The program-subject renderer, pinned on the checked-in exemplar: a
/// single channel carrying one airing of each of pages 0–3 (page 4
/// never airs) against the same workload. The minimal cycle the solver
/// extracts is p1's wraparound gap — one self-edge whose bound is
/// already negative.
#[test]
fn program_certificate_text_is_pinned() {
    let path = format!(
        "{}/../../examples/programs/one_channel_overload.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(path).expect("exemplar program is checked in");
    let program = parse_program(&text).expect("exemplar parses");
    let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
    let verdict = check_program(&program, &ladder);
    let cert = verdict.certificate().expect("exemplar misses deadlines");
    let expected = "\
deny[SV01/negative-cycle]: the broadcast program misses at least one deadline
 --> program channels 1, cycle 4, pages checked 5
  = cycle: 1 constraint edge(s), bounds telescope to -2 < 0
  = edge: x[p1,0] - x[p1,0] <= -2 (wraparound-gap: the gap across the 4-slot cycle seam \
stays within 2 slots) [model]
  = help: the observed edges pin columns the program actually airs; the model edge they \
contradict names the broken deadline
";
    assert_eq!(render_text(cert), expected);
}
