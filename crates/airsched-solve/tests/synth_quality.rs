//! Synthesizer quality on irregular ladders (EXPERIMENTS.md §"Direct
//! synthesis vs geometric rearrangement").
//!
//! SUSC only schedules geometric ladders, so an irregular workload must
//! first be *rearranged*: every expected time is rounded down to a
//! geometric grid, which tightens constraints and inflates the
//! Theorem 3.1 minimum. The DBM synthesizer works on the irregular
//! ladder directly, so it can only do better — these tests pin that it
//! never does worse on a ladder sweep, does strictly better on the
//! showcase ladders, and that every program it emits is
//! validity-clean, solver-certified, and draws no program-level lint
//! diagnostics.

use airsched_core::bound::minimum_channels;
use airsched_core::group::GroupLadder;
use airsched_core::rearrange::Rearrangement;
use airsched_core::validity;
use airsched_lint::{lint, LintConfig, LintInput, RuleId};
use airsched_solve::{check_program, minimal_feasible_channels, synthesize};

/// The channel count SUSC needs for an irregular workload: expand the
/// ladder to per-item expected times, rearrange onto the best geometric
/// grid (ratio 2 or 3), and take the rearranged ladder's Theorem 3.1
/// minimum.
fn susc_channels(ladder: &GroupLadder) -> u32 {
    let times: Vec<u64> = ladder
        .times()
        .iter()
        .zip(ladder.page_counts())
        .flat_map(|(&t, &k)| std::iter::repeat_n(t, usize::try_from(k).unwrap()))
        .collect();
    let r = Rearrangement::best_ratio(&times, &[2, 3]).unwrap();
    minimum_channels(r.ladder())
}

/// Synthesizes at `channels` and runs the full quality gauntlet:
/// `validity::check`, the solver's own certification, and the default
/// lint config with zero program-level diagnostics (the ladder-shape
/// warning `AL01` fires on *any* irregular ladder, program or not).
fn assert_synthesized_clean(ladder: &GroupLadder, channels: u32) {
    let program = synthesize(ladder, channels).unwrap();
    let report = validity::check(&program, ladder);
    assert!(report.is_valid(), "{report:?}");
    assert!(check_program(&program, ladder).is_feasible());
    let lint_report = lint(
        &LintInput::for_program(&program, ladder),
        &LintConfig::new(),
    );
    assert!(
        lint_report
            .diagnostics()
            .iter()
            .all(|d| d.rule == RuleId::NonGeometricLadder),
        "{lint_report}"
    );
}

/// Showcase ladders where rounding down to a geometric grid visibly
/// inflates the minimum: direct synthesis must beat rearranged SUSC
/// strictly, and the synthesized program must be clean at the smaller
/// budget.
#[test]
fn direct_synthesis_beats_rearranged_susc_on_showcase_ladders() {
    let showcases = [
        // Ratios 2 then 3: a ratio-2 grid rounds 12 → 8 (0.75 b/w per
        // page becomes 1.875 across 15 pages), a ratio-3 grid rounds
        // 4 → 2; either inflation crosses the next integer.
        vec![(2, 2), (4, 3), (12, 15)],
        // Ratios 3 then 2: 6 and 12 each miss whichever grid is chosen
        // (ratio 2 rounds 6 → 4 and 12 → 8, ratio 3 rounds 12 → 6).
        vec![(2, 1), (6, 2), (12, 10)],
    ];
    for groups in showcases {
        let ladder = GroupLadder::new(groups.clone()).unwrap();
        let direct = minimal_feasible_channels(&ladder).unwrap();
        let rearranged = susc_channels(&ladder);
        assert!(
            direct < rearranged,
            "{groups:?}: direct {direct} not below rearranged {rearranged}"
        );
        assert_synthesized_clean(&ladder, direct);
    }
}

/// On a sweep of irregular ladders, direct synthesis never needs more
/// channels than rearrangement, and every synthesized program is clean.
#[test]
fn direct_synthesis_never_worse_than_rearrangement() {
    let sweep = [
        vec![(2, 1), (4, 2), (12, 6)],
        vec![(2, 2), (6, 3), (18, 2)],
        vec![(3, 1), (6, 2), (12, 3)],
        vec![(4, 1), (12, 3), (24, 5)],
        vec![(2, 3), (4, 1), (20, 7)],
        vec![(5, 2), (10, 3), (30, 6)],
    ];
    for groups in sweep {
        let ladder = GroupLadder::new(groups.clone()).unwrap();
        let direct = minimal_feasible_channels(&ladder).unwrap();
        let rearranged = susc_channels(&ladder);
        assert!(
            direct <= rearranged,
            "{groups:?}: direct {direct} above rearranged {rearranged}"
        );
        assert_synthesized_clean(&ladder, direct);
    }
}

/// On geometric ladders the two pipelines agree exactly — rearrangement
/// is the identity there, so any daylight would mean the synthesizer is
/// wasting channels.
#[test]
fn geometric_ladders_tie_exactly() {
    for counts in [vec![2, 3], vec![1, 4, 2], vec![3, 3, 3, 1]] {
        let ladder = GroupLadder::geometric(2, 2, &counts).unwrap();
        let direct = minimal_feasible_channels(&ladder).unwrap();
        assert_eq!(direct, susc_channels(&ladder), "{counts:?}");
        assert_eq!(direct, minimum_channels(&ladder), "{counts:?}");
        assert_synthesized_clean(&ladder, direct);
    }
}
