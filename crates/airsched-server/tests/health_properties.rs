//! Property tests for health transition sequencing: the typed
//! [`ChannelEvent`] stream must be a lossless encoding of the monitor's
//! state machine — replaying the events reconstructs the final
//! per-channel degraded flags exactly, with no lost or duplicated
//! transitions.

use proptest::prelude::*;

use airsched_core::types::ChannelId;
use airsched_server::health::{ChannelEvent, HealthMonitor, HealthThresholds, SlotObservation};

/// Replays an event stream into per-channel degraded flags, asserting the
/// alternation invariant: a channel never transitions into the state it is
/// already in (that would be a duplicated transition).
fn replay(events: &[ChannelEvent], channels: usize) -> Vec<bool> {
    let mut degraded = vec![false; channels];
    for event in events {
        match *event {
            ChannelEvent::Degraded { channel, .. } => {
                let ch = channel.index() as usize;
                assert!(
                    !degraded[ch],
                    "duplicate Degraded on {channel} in {events:?}"
                );
                degraded[ch] = true;
            }
            ChannelEvent::Healthy { channel, .. } => {
                let ch = channel.index() as usize;
                assert!(degraded[ch], "Healthy without Degraded on {channel}");
                degraded[ch] = false;
            }
            // Hard outages are produced by the station, not the monitor;
            // the monitor's own stream never contains them.
            ChannelEvent::Down { .. } | ChannelEvent::Up { .. } => {
                panic!("monitor emitted an outage event");
            }
        }
    }
    degraded
}

fn arb_observation() -> impl Strategy<Value = SlotObservation> {
    // Clean-biased 3:1:1 mix, expressed as a mapped range (the vendored
    // proptest stub has no weighted prop_oneof).
    (0u8..5).prop_map(|v| match v {
        0..=2 => SlotObservation::Clean,
        3 => SlotObservation::Stalled,
        _ => SlotObservation::Corrupt,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Feeding an arbitrary observation stream (with interleaved resets)
    /// to the monitor yields an event stream whose replay matches the
    /// monitor's final per-channel state bit for bit.
    #[test]
    fn event_stream_reconstructs_final_state(
        channels in 1u32..=4,
        window in 1u32..=6,
        error_permille in 100u32..=900,
        stall_permille in 100u32..=900,
        steps in prop::collection::vec(
            (0u32..4, arb_observation(), 0u8..20),
            0..200,
        ),
    ) {
        let thresholds = HealthThresholds { window, error_permille, stall_permille };
        let mut monitor = HealthMonitor::new(channels, thresholds);
        let mut events = Vec::new();
        for (t, &(ch, observation, reset_draw)) in steps.iter().enumerate() {
            let channel = ChannelId::new(ch % channels);
            // ~5% of steps hit the channel with a hard-recovery reset.
            if reset_draw == 0 {
                // A reset is an out-of-band transition to healthy: mirror
                // it in the replayed state the same way the station does
                // (reset is only called on hard recovery, which the
                // station reports as its own Up event).
                if monitor.is_degraded(channel) {
                    events.push(ChannelEvent::Healthy { channel, at: t as u64 });
                }
                monitor.reset(channel);
            }
            if let Some(event) = monitor.record(channel, observation, t as u64) {
                events.push(event);
            }
        }
        let replayed = replay(&events, channels as usize);
        for ch in 0..channels {
            prop_assert_eq!(
                replayed[ch as usize],
                monitor.is_degraded(ChannelId::new(ch)),
                "replayed state diverged on channel {} (events: {:?})",
                ch,
                events
            );
        }
    }

    /// Per channel, the monitor's event stream strictly alternates
    /// Degraded/Healthy starting with Degraded — the structural form of
    /// "no lost or duplicated transitions".
    #[test]
    fn transitions_alternate_per_channel(
        observations in prop::collection::vec(arb_observation(), 0..300),
    ) {
        let thresholds = HealthThresholds { window: 4, error_permille: 400, stall_permille: 400 };
        let mut monitor = HealthMonitor::new(1, thresholds);
        let mut last_degraded = false;
        for (t, &observation) in observations.iter().enumerate() {
            if let Some(event) = monitor.record(ChannelId::new(0), observation, t as u64) {
                match event {
                    ChannelEvent::Degraded { .. } => {
                        prop_assert!(!last_degraded, "Degraded twice in a row");
                        last_degraded = true;
                    }
                    ChannelEvent::Healthy { .. } => {
                        prop_assert!(last_degraded, "Healthy twice in a row");
                        last_degraded = false;
                    }
                    other => prop_assert!(false, "unexpected event {other:?}"),
                }
            }
        }
        prop_assert_eq!(last_degraded, monitor.is_degraded(ChannelId::new(0)));
    }
}
