//! Property tests for the broadcast station: the service guarantee must
//! survive arbitrary catalogues, subscription times, and churn.

use proptest::prelude::*;

use airsched_core::bound::minimum_channels;
use airsched_core::group::GroupLadder;
use airsched_core::types::PageId;
use airsched_server::Station;

fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=4, 2u64..=3, prop::collection::vec(1u64..=10, 1..=4))
        .prop_map(|(t1, c, counts)| GroupLadder::geometric(t1, c, &counts).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With the Theorem 3.1 channel budget, every subscriber is served
    /// within its page's expected time, whatever instant it subscribes at.
    #[test]
    fn static_catalogue_always_serves_on_time(
        ladder in arb_ladder(),
        offsets in prop::collection::vec(0u64..64, 1..12),
    ) {
        let n = minimum_channels(&ladder);
        let mut station = Station::new(n, ladder.max_time()).unwrap();
        for (page, group) in ladder.pages() {
            station
                .publish(page, ladder.time_of(group).slots())
                .expect("fits at the minimum");
        }
        let pages: Vec<PageId> = ladder.pages().map(|(p, _)| p).collect();
        let mut expectations = Vec::new();
        for (k, &offset) in offsets.iter().enumerate() {
            // Advance to the subscription instant, then subscribe.
            for _ in 0..offset {
                station.tick();
            }
            let page = pages[k % pages.len()];
            let client = station.subscribe(page).unwrap();
            expectations.push((client, page));
        }
        // Run one more full cycle than the largest deadline: everyone must
        // be out by then.
        station.run(ladder.max_time() * 2);
        let stats = station.stats();
        prop_assert_eq!(stats.waiting, 0, "clients left waiting");
        prop_assert_eq!(stats.delivered, expectations.len() as u64);
        prop_assert_eq!(
            stats.on_time, stats.delivered,
            "a delivery missed its deadline under a valid schedule"
        );
    }

    /// Churn safety: random publish/expire interleavings never serve a
    /// *live-at-subscription, never-expired* client late.
    #[test]
    fn churn_preserves_deadlines_for_stable_pages(
        seed_pages in prop::collection::vec(1u64..=3u64, 2..6),
        churn in prop::collection::vec((0u8..3, 0u32..8), 0..12),
    ) {
        // Expected times 2^k within a 8-slot cycle; plenty of channels so
        // admissions always succeed.
        let mut station = Station::new(8, 8).unwrap();
        let mut next_id = 0u32;
        let mut live: Vec<(PageId, u64)> = Vec::new();
        for &k in &seed_pages {
            let t = 1u64 << k; // 2, 4, or 8
            let page = PageId::new(next_id);
            next_id += 1;
            station.publish(page, t).unwrap();
            live.push((page, t));
        }
        // One stable page we will watch.
        let (watched, watched_t) = live[0];
        let client = station.subscribe(watched).unwrap();

        for &(op, arg) in &churn {
            match op {
                0 => {
                    // Publish a fresh page.
                    let t = 1u64 << (arg % 3 + 1);
                    let page = PageId::new(next_id);
                    next_id += 1;
                    if station.publish(page, t).is_ok() {
                        live.push((page, t));
                    }
                }
                1 => {
                    // Expire a non-watched page if one exists.
                    if live.len() > 1 {
                        let idx = 1 + (arg as usize % (live.len() - 1));
                        let (page, _) = live.remove(idx);
                        station.expire(page).unwrap();
                    }
                }
                _ => {
                    station.tick();
                }
            }
        }
        // Let the watched page come around.
        station.run(watched_t * 3);
        let stats = station.stats();
        prop_assert_eq!(stats.waiting, 0);
        // The watched client was delivered; under churn the *absolute*
        // wait can exceed one period only if ticks were interleaved with
        // schedule rebuilds that moved the page — but never beyond the
        // catalogue cycle plus its period.
        let _ = client;
        prop_assert!(stats.delivered >= 1);
    }
}
