//! Partitioned struct-of-arrays storage for the station's waiting sets.
//!
//! The seed layout — `Vec<Vec<(ClientId, u64)>>` indexed by dense page id —
//! collapses past ~100k subscribers: every subscription chases a pointer to
//! a separately-allocated per-page `Vec`, and the loads it must wait on
//! (`expected[idx]`, the `Vec` header, the tail line) are scattered across
//! megabytes, so the subscribe loop serializes on cache-miss latency. This
//! module replaces it with a fixed set of [`SHARD_COUNT`] shards, each
//! holding:
//!
//! * a dense table of 12-byte [`PageMeta`] records (span offset / length /
//!   capacity) — the only per-page metadata the hot paths touch;
//! * one **span arena** of `(client, since)` records, with each page
//!   owning a contiguous offset range, so a tick's drain walks plain
//!   slices and batches the deadline verdict branch-free.
//!
//! A subscription therefore costs one load in a dense deadline table
//! (L1-resident for realistic catalogues), one store at the page's span
//! tail, and one 12-byte meta update — where the seed paid a pointer
//! chase through `expected`, the outer `Vec` header, and a separately
//! allocated per-page `Vec` before reaching the tail.
//!
//! ## Partition function
//!
//! Pages are distributed block-cyclically: [`BLOCK_PAGES`] consecutive
//! dense indices share a shard, then the next block moves to the next
//! shard. [`shard_of`]/[`local_of`] are a pure-arithmetic bijection (all
//! constants are powers of two, so the divisions are shifts), blocks of
//! metas stay cache-line aligned per shard (no false sharing between
//! drain workers), and any real catalogue spreads evenly across shards.
//!
//! ## Determinism
//!
//! Shard state evolves only through `subscribe`, `publish`, `expire`,
//! restore, and drains — all driven from the station's single control
//! thread between ticks or inside a tick's drain phase. Drains only zero
//! span lengths, deliveries are merged back in request order, and
//! per-page FIFO (arrival) order is the only order that reaches any
//! output — so `tick_into` is bit-identical for every `parallelism(k)`
//! setting (DESIGN.md §12).

use airsched_core::types::PageId;

use crate::station::{ClientId, Delivery};

/// Number of shards the waiting set is partitioned into. Fixed: the
/// partition count is a layout constant, never persisted, and
/// `parallelism(k)` maps any `k ≤ SHARD_COUNT` onto contiguous shard
/// ranges — so the checkpoint format cannot leak it.
pub(crate) const SHARD_COUNT: usize = 16;

/// Consecutive dense page indices that share a shard (one block of metas
/// spans a few cache lines, keeping each worker's meta writes off its
/// neighbours' lines).
const BLOCK_PAGES: usize = 32;

/// Smallest span capacity handed to a page on publish; doubles on growth.
const MIN_SPAN_CAP: u32 = 8;

/// Arena must be at least this large before dead-space compaction is
/// considered (small arenas are cheap to leave fragmented).
const COMPACT_MIN_LEN: usize = 1024;

/// Which shard owns dense page index `idx`.
#[inline]
pub(crate) fn shard_of(idx: usize) -> usize {
    (idx / BLOCK_PAGES) % SHARD_COUNT
}

/// The page's slot inside its owning shard's meta table.
#[inline]
pub(crate) fn local_of(idx: usize) -> usize {
    (idx / (BLOCK_PAGES * SHARD_COUNT)) * BLOCK_PAGES + (idx % BLOCK_PAGES)
}

/// Per-page record in a shard's meta table. Liveness is not here —
/// deadline truth (and the publish/expire state) lives in
/// [`WaitingSet::deadlines`]; a meta only describes the page's span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct PageMeta {
    /// Start of the page's span in the shard arena.
    off: u32,
    /// Waiters currently in the span.
    len: u32,
    /// Records reserved for the span (0 = no span allocated yet).
    cap: u32,
}

/// Stat movement produced by draining one or more pages — accumulated
/// shard-locally, merged with plain adds (order-independent), and applied
/// to [`crate::station::StationStats`] once per tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DrainDelta {
    /// Waiters served.
    pub delivered: u64,
    /// Of those, served within their page's expected time.
    pub on_time: u64,
    /// Sum of their waits.
    pub total_wait: u64,
}

impl DrainDelta {
    /// Accumulates another delta (plain `u64` adds: order-independent).
    #[inline]
    pub fn merge(&mut self, other: Self) {
        self.delivered += other.delivered;
        self.on_time += other.on_time;
        self.total_wait = self.total_wait.wrapping_add(other.total_wait);
    }
}

/// One page to drain this tick: built per live, uncorrupted channel in
/// ascending channel order — the order deliveries must come out in.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DrainReq {
    /// The page on the air.
    pub page: PageId,
    /// Its dense index (`page.index()`), pre-computed by the caller.
    pub idx: usize,
}

/// One shard: a meta table and a span arena of `(client, since)`
/// records. Spans are reused across drains (`len` drops to 0, `cap`
/// stays), grow by doubling — extending in place when the span sits at
/// the arena tail, relocating otherwise — and the arena compacts once
/// relocations strand more dead capacity than live.
#[derive(Debug, Clone, Default)]
pub(crate) struct WaitShard {
    metas: Vec<PageMeta>,
    arena: Vec<(u64, u64)>,
    /// Arena records stranded by span relocation, reclaimed by `compact`.
    dead: usize,
    /// Lifetime compaction count; travels with the shard through the
    /// drain pool and is summed by [`WaitingSet::compactions`].
    compactions: u64,
}

impl WaitShard {
    /// Sizes the page's meta slot and a minimum span so steady-state
    /// subscribes never resize. Called at publish and restore.
    fn ensure_page(&mut self, local: usize) {
        if self.metas.len() <= local {
            self.metas.resize(local + 1, PageMeta::default());
        }
        let m = &mut self.metas[local];
        if m.cap == 0 {
            m.off = u32::try_from(self.arena.len()).expect("arena offset fits in u32");
            m.cap = MIN_SPAN_CAP;
            let new_len = self.arena.len() + MIN_SPAN_CAP as usize;
            self.arena.resize(new_len, (0, 0));
        }
    }

    /// Appends one waiter to `local`'s span. Publish pre-sizes metas and
    /// spans, so the resize and growth branches only fire on the restore
    /// path and on spans outgrowing their capacity.
    #[inline]
    fn append_direct(&mut self, local: usize, client: u64, since: u64) {
        if self.metas.len() <= local {
            self.metas.resize(local + 1, PageMeta::default());
        }
        let m = self.metas[local];
        if m.len == m.cap {
            self.grow_and_append(local, client, since);
        } else {
            self.arena[(m.off + m.len) as usize] = (client, since);
            self.metas[local].len = m.len + 1;
        }
    }

    /// Slow path of the scatter: the span is full (or absent). Doubles
    /// the span, extending in place when it already ends at the arena
    /// tail and relocating it there otherwise.
    #[inline(never)]
    fn grow_and_append(&mut self, local: usize, client: u64, since: u64) {
        let m = self.metas[local];
        let tail = self.arena.len();
        if m.cap == 0 {
            let off = u32::try_from(tail).expect("arena offset fits in u32");
            self.metas[local] = PageMeta {
                off,
                len: 1,
                cap: MIN_SPAN_CAP,
            };
            self.arena.resize(tail + MIN_SPAN_CAP as usize, (0, 0));
            self.arena[tail] = (client, since);
            return;
        }
        let new_cap = m.cap * 2;
        if (m.off + m.cap) as usize == tail {
            self.arena.resize(m.off as usize + new_cap as usize, (0, 0));
        } else {
            let off = m.off as usize;
            self.arena.extend_from_within(off..off + m.len as usize);
            self.arena.resize(tail + new_cap as usize, (0, 0));
            self.metas[local].off = u32::try_from(tail).expect("arena offset fits in u32");
            self.dead += m.cap as usize;
        }
        let grown = self.metas[local];
        self.arena[(grown.off + grown.len) as usize] = (client, since);
        self.metas[local].len = grown.len + 1;
        self.metas[local].cap = new_cap;
        if self.dead * 2 > self.arena.len() && self.arena.len() >= COMPACT_MIN_LEN {
            self.compact();
        }
    }

    /// Rebuilds the arena with every span packed in meta order, dropping
    /// all dead capacity. Deterministic: depends only on the current
    /// metas and arena, which evolve identically for any worker count.
    fn compact(&mut self) {
        let live: usize = self.metas.iter().map(|m| m.cap as usize).sum();
        let mut arena = Vec::with_capacity(live);
        for m in &mut self.metas {
            if m.cap == 0 {
                continue;
            }
            let off = m.off as usize;
            let len = m.len as usize;
            m.off = u32::try_from(arena.len()).expect("arena offset fits in u32");
            arena.extend_from_slice(&self.arena[off..off + len]);
            arena.resize(arena.len() + (m.cap - m.len) as usize, (0, 0));
        }
        self.arena = arena;
        self.dead = 0;
        self.compactions += 1;
    }

    /// Drains `local`'s span into `out`: the batched serving kernel.
    /// The deadline verdict and wait
    /// sums are computed branch-free over the span slice; `deadline == 0`
    /// means "not published", which can never be within deadline
    /// (matching the seed's `expected.is_some_and(..)`).
    fn drain_into(
        &mut self,
        local: usize,
        page: PageId,
        deadline: u64,
        now: u64,
        out: &mut Vec<Delivery>,
    ) -> DrainDelta {
        let Some(&m) = self.metas.get(local) else {
            return DrainDelta::default();
        };
        let n = m.len as usize;
        if n == 0 {
            return DrainDelta::default();
        }
        let off = m.off as usize;
        let received = now + 1;
        // A waiter is within deadline iff wait = received - since ≤
        // deadline, i.e. since ≥ received - deadline. The 0 sentinel maps
        // to an unreachable threshold.
        let thr = if deadline == 0 {
            u64::MAX
        } else {
            received.saturating_sub(deadline)
        };
        let span = &self.arena[off..off + n];
        let mut on_time = 0u64;
        let mut sum_since = 0u64;
        out.reserve(n);
        for &(client, since) in span {
            let within = since >= thr;
            on_time += u64::from(within);
            sum_since = sum_since.wrapping_add(since);
            out.push(Delivery {
                client: ClientId::from_raw(client),
                page,
                wait: received - since,
                within_deadline: within,
            });
        }
        self.metas[local].len = 0;
        DrainDelta {
            delivered: n as u64,
            on_time,
            total_wait: (n as u64).wrapping_mul(received).wrapping_sub(sum_since),
        }
    }

    /// Removes and returns `local`'s waiters in FIFO order — the
    /// allocating access path `tick_reference` keeps.
    fn take(&mut self, local: usize) -> Vec<(ClientId, u64)> {
        let Some(&m) = self.metas.get(local) else {
            return Vec::new();
        };
        let off = m.off as usize;
        let n = m.len as usize;
        let out = self.arena[off..off + n]
            .iter()
            .map(|&(c, s)| (ClientId::from_raw(c), s))
            .collect();
        self.metas[local].len = 0;
        out
    }

    /// The page's span content without draining: the snapshot read path,
    /// which must work from `&self`.
    fn peek(&self, local: usize) -> Vec<(u64, u64)> {
        match self.metas.get(local) {
            Some(&m) => self.arena[m.off as usize..(m.off + m.len) as usize].to_vec(),
            None => Vec::new(),
        }
    }
}

/// The station's waiting/expected state in partitioned SoA form.
///
/// Publicly (through `Station`) it behaves exactly like the seed's
/// `waiting: Vec<Vec<(ClientId, u64)>>` + `expected: Vec<Option<u64>>`
/// pair, including snapshot shape: [`WaitingSet::snapshot_waiting`] /
/// [`WaitingSet::snapshot_expected`] reproduce those dense vectors
/// verbatim, so the checkpoint format is unchanged and carries no trace
/// of the partition count.
#[derive(Debug, Clone)]
pub(crate) struct WaitingSet {
    /// `deadlines[idx]` is the page's expected time, 0 when unpublished
    /// (`publish` rejects a 0 expected time, so 0 is a safe sentinel).
    /// Grows at publish, never shrinks — mirroring the seed's
    /// `expected` length semantics. This is the only load on the
    /// subscribe fast path.
    deadlines: Vec<u64>,
    shards: Vec<WaitShard>,
    /// Length the seed's `waiting` vector would have: the largest
    /// subscribed dense index + 1 (or whatever a restore carried).
    /// Reproduced in snapshots so restores round-trip byte-identically.
    dense_len: usize,
}

impl WaitingSet {
    pub fn new() -> Self {
        Self {
            deadlines: Vec::new(),
            shards: vec![WaitShard::default(); SHARD_COUNT],
            dense_len: 0,
        }
    }

    /// The page's expected time, 0 when unpublished.
    #[inline]
    pub fn deadline(&self, idx: usize) -> u64 {
        self.deadlines.get(idx).copied().unwrap_or(0)
    }

    /// Records a publish: sizes the deadline table and the page's meta
    /// (and minimum span) so steady-state subscribes never resize.
    pub fn publish(&mut self, idx: usize, expected: u64) {
        debug_assert!(expected != 0, "publish validates a non-zero expected time");
        if self.deadlines.len() <= idx {
            self.deadlines.resize(idx + 1, 0);
        }
        self.deadlines[idx] = expected;
        self.shards[shard_of(idx)].ensure_page(local_of(idx));
    }

    /// Records an expire: the deadline drops to the 0 sentinel, waiters
    /// stay parked (served only if the page returns).
    pub fn expire(&mut self, idx: usize) {
        if let Some(d) = self.deadlines.get_mut(idx) {
            *d = 0;
        }
    }

    /// Appends one waiter. Returns `false` for an unpublished page.
    ///
    /// `publish` already sized the page's meta and minimum span, so the
    /// steady-state path is one deadline load, one store to the span
    /// tail, and one meta update — no resize branch and no pointer chase
    /// through a per-page allocation.
    #[inline]
    pub fn subscribe(&mut self, idx: usize, client: u64, since: u64) -> bool {
        if self.deadline(idx) == 0 {
            return false;
        }
        self.shards[shard_of(idx)].append_direct(local_of(idx), client, since);
        if idx >= self.dense_len {
            self.dense_len = idx + 1;
        }
        true
    }

    /// Drains one page's waiters into `out` (serial path).
    pub fn drain_page(
        &mut self,
        idx: usize,
        page: PageId,
        now: u64,
        out: &mut Vec<Delivery>,
    ) -> DrainDelta {
        let deadline = self.deadline(idx);
        let shard = &mut self.shards[shard_of(idx)];
        shard.drain_into(local_of(idx), page, deadline, now, out)
    }

    /// Drains every request on `k` shard workers ([`std::thread::scope`]),
    /// merging deliveries back in request order so the output is
    /// bit-identical to running [`WaitingSet::drain_page`] serially over
    /// the same requests. Shards are split into `k` contiguous chunks;
    /// each page's requests land in exactly one chunk (page → shard is a
    /// function), so a page aired on two channels drains at its
    /// lowest-channel request and the later request sees an empty span —
    /// exactly as in the serial walk.
    ///
    /// Retained as the lockstep reference for [`WaitingSet::drain_pooled`]
    /// (the serving path uses the pool; spawn-per-tick only survives here
    /// and in the tests that pin the two bit-identical).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn drain_sharded(
        &mut self,
        reqs: &[DrainReq],
        now: u64,
        k: usize,
        out: &mut Vec<Delivery>,
    ) -> DrainDelta {
        let k = k.clamp(1, SHARD_COUNT);
        if k == 1 || reqs.len() <= 1 {
            let mut delta = DrainDelta::default();
            for r in reqs {
                delta.merge(self.drain_page(r.idx, r.page, now, out));
            }
            return delta;
        }
        let deadlines = &self.deadlines;
        let mut collected: Vec<(usize, Vec<Delivery>, DrainDelta)> = Vec::with_capacity(reqs.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut rest: &mut [WaitShard] = &mut self.shards;
            let mut lo = 0usize;
            let mut main_part = None;
            for j in 0..k {
                let hi = SHARD_COUNT * (j + 1) / k;
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let range = lo..hi;
                lo = hi;
                if j == 0 {
                    main_part = Some((chunk, range));
                } else if reqs.iter().any(|r| range.contains(&shard_of(r.idx))) {
                    handles.push(
                        scope.spawn(move || drain_chunk(chunk, &range, reqs, deadlines, now)),
                    );
                }
            }
            let (chunk, range) = main_part.expect("k >= 1 leaves a main chunk");
            collected.extend(drain_chunk(chunk, &range, reqs, deadlines, now));
            for h in handles {
                collected.extend(h.join().expect("drain worker panicked"));
            }
        });
        collected.sort_by_key(|&(ri, _, _)| ri);
        let mut delta = DrainDelta::default();
        for (_, deliveries, d) in collected {
            out.extend(deliveries);
            delta.merge(d);
        }
        delta
    }

    /// Drains every request on a persistent [`DrainPool`], merging
    /// deliveries back in request order — bit-identical to
    /// [`WaitingSet::drain_sharded`] (and therefore to the serial walk)
    /// over the same requests, but without the per-tick thread spawn:
    /// shard chunks move into the pool's parked workers and move back
    /// when drained (see `pool` module docs for the handoff protocol).
    ///
    /// `reqs` is lent to the job and comes back untouched (the `&mut` is
    /// the loan, not a mutation).
    ///
    /// `times` optionally collects per-chunk drain timings (trace-sampled
    /// slots); `None` keeps the drain clock-free. The ≤1-request serial
    /// short-circuit never splits into chunks, so it records nothing.
    pub fn drain_pooled(
        &mut self,
        reqs: &mut Vec<DrainReq>,
        now: u64,
        pool: &crate::pool::DrainPool,
        out: &mut Vec<Delivery>,
        times: Option<(std::time::Instant, &mut Vec<crate::pool::ChunkDrainTime>)>,
    ) -> DrainDelta {
        if reqs.len() <= 1 {
            let mut delta = DrainDelta::default();
            for r in reqs.iter() {
                delta.merge(self.drain_page(r.idx, r.page, now, out));
            }
            return delta;
        }
        pool.drain(&mut self.shards, &mut self.deadlines, reqs, now, out, times)
    }

    /// Total arena compactions across all shards since construction.
    /// Deterministic: arena evolution is identical for any worker count.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.shards.iter().map(|s| s.compactions).sum()
    }

    /// Bytes currently held by the shard arenas (arena length × record
    /// size; length rather than capacity so the figure is deterministic
    /// across allocator and std versions).
    #[must_use]
    pub fn arena_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| (s.arena.len() * std::mem::size_of::<(u64, u64)>()) as u64)
            .sum()
    }

    /// Waiters currently parked on the requested pages — the tick's drain
    /// workload, used by the `parallelism` auto mode to decide whether a
    /// parallel drain can pay for its handoff. A page aired on two
    /// channels is counted twice; the estimate is an upper bound, which
    /// only ever errs toward parallelism.
    pub fn pending_for(&self, reqs: &[DrainReq]) -> u64 {
        reqs.iter()
            .map(|r| {
                let shard = &self.shards[shard_of(r.idx)];
                shard
                    .metas
                    .get(local_of(r.idx))
                    .map_or(0, |m| u64::from(m.len))
            })
            .sum()
    }

    /// Removes and returns one page's waiters in FIFO order — used by
    /// `tick_reference`, which keeps the seed's allocating shape.
    pub fn take_dense(&mut self, idx: usize) -> Vec<(ClientId, u64)> {
        let shard = &mut self.shards[shard_of(idx)];
        shard.take(local_of(idx))
    }

    /// The seed-shaped `waiting` vector for [`crate::StationSnapshot`].
    pub fn snapshot_waiting(&self) -> Vec<Vec<(u64, u64)>> {
        (0..self.dense_len)
            .map(|idx| self.shards[shard_of(idx)].peek(local_of(idx)))
            .collect()
    }

    /// The seed-shaped `expected` vector for [`crate::StationSnapshot`].
    pub fn snapshot_expected(&self) -> Vec<Option<u64>> {
        self.deadlines
            .iter()
            .map(|&d| if d == 0 { None } else { Some(d) })
            .collect()
    }

    /// Rebuilds the set from snapshot vectors. Arena layout is a
    /// deterministic function of the snapshot alone; per-page FIFO order
    /// (the only order that reaches any output) is preserved exactly.
    pub fn restore(expected: &[Option<u64>], waiting: &[Vec<(u64, u64)>]) -> Self {
        let mut set = Self::new();
        set.deadlines = expected.iter().map(|e| e.unwrap_or(0)).collect();
        for (idx, &d) in set.deadlines.iter().enumerate() {
            if d != 0 {
                set.shards[shard_of(idx)].ensure_page(local_of(idx));
            }
        }
        for (idx, waiters) in waiting.iter().enumerate() {
            let shard = &mut set.shards[shard_of(idx)];
            let local = local_of(idx);
            for &(client, since) in waiters {
                shard.append_direct(local, client, since);
            }
        }
        set.dense_len = waiting.len();
        set
    }
}

/// Drains the requests owned by one contiguous shard chunk, in request
/// order, tagging each result with its request index for the caller's
/// deterministic merge.
pub(crate) fn drain_chunk(
    chunk: &mut [WaitShard],
    range: &std::ops::Range<usize>,
    reqs: &[DrainReq],
    deadlines: &[u64],
    now: u64,
) -> Vec<(usize, Vec<Delivery>, DrainDelta)> {
    let mut results = Vec::new();
    for (ri, r) in reqs.iter().enumerate() {
        let s = shard_of(r.idx);
        if !range.contains(&s) {
            continue;
        }
        let deadline = deadlines.get(r.idx).copied().unwrap_or(0);
        let shard = &mut chunk[s - range.start];
        let mut deliveries = Vec::new();
        let delta = shard.drain_into(local_of(r.idx), r.page, deadline, now, &mut deliveries);
        if delta.delivered > 0 {
            results.push((ri, deliveries, delta));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_local_mapping_is_a_bijection() {
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..10_000 {
            let key = (shard_of(idx), local_of(idx));
            assert!(seen.insert(key), "collision at idx {idx}: {key:?}");
        }
        // Block-cyclic: consecutive indices inside a block share a shard.
        assert_eq!(shard_of(0), shard_of(BLOCK_PAGES - 1));
        assert_ne!(shard_of(0), shard_of(BLOCK_PAGES));
    }

    #[test]
    fn subscribe_requires_publish_and_preserves_fifo() {
        let mut w = WaitingSet::new();
        assert!(!w.subscribe(5, 1, 0), "unpublished page accepted a waiter");
        w.publish(5, 4);
        for c in 0..20u64 {
            assert!(w.subscribe(5, c, c));
        }
        let got = w.take_dense(5);
        let raws: Vec<u64> = got.iter().map(|&(c, _)| c.raw()).collect();
        assert_eq!(raws, (0..20).collect::<Vec<_>>(), "FIFO order lost");
        assert!(w.take_dense(5).is_empty(), "take did not clear the span");
    }

    #[test]
    fn fifo_survives_repeated_span_growth() {
        let mut w = WaitingSet::new();
        w.publish(0, 4);
        let n = 3 * 4096 + 17;
        for c in 0..n {
            assert!(w.subscribe(0, c, 0));
        }
        let raws: Vec<u64> = w.take_dense(0).iter().map(|&(c, _)| c.raw()).collect();
        assert_eq!(raws, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn growth_relocation_keeps_other_spans_intact() {
        let mut w = WaitingSet::new();
        // Two pages in the same shard (same block).
        w.publish(0, 4);
        w.publish(1, 4);
        for c in 0..4u64 {
            assert!(w.subscribe(0, c, 0));
            assert!(w.subscribe(1, 100 + c, 0));
        }
        // Grow page 0 well past its minimum span, forcing relocation
        // around page 1's span.
        for c in 4..300u64 {
            assert!(w.subscribe(0, c, 0));
        }
        let a: Vec<u64> = w.take_dense(0).iter().map(|&(c, _)| c.raw()).collect();
        let b: Vec<u64> = w.take_dense(1).iter().map(|&(c, _)| c.raw()).collect();
        assert_eq!(a, (0..300).collect::<Vec<_>>());
        assert_eq!(b, (100..104).collect::<Vec<_>>());
    }

    #[test]
    fn drained_spans_are_reused_without_growth() {
        let mut w = WaitingSet::new();
        w.publish(0, 4);
        for round in 0..50u64 {
            for c in 0..8u64 {
                assert!(w.subscribe(0, round * 8 + c, round));
            }
            let mut out = Vec::new();
            let delta = w.drain_page(0, PageId::new(0), round, &mut out);
            assert_eq!(delta.delivered, 8);
            assert_eq!(out.len(), 8);
        }
        // 8 waiters fit the minimum span: no relocation ever happened.
        assert_eq!(w.shards[shard_of(0)].dead, 0);
    }

    #[test]
    fn batched_verdict_matches_the_scalar_rule() {
        let mut w = WaitingSet::new();
        let now = 100u64;
        w.publish(0, 7);
        // Waits 1..=12 straddle the deadline of 7.
        for since in (now + 1 - 12)..=now {
            assert!(w.subscribe(0, since, since));
        }
        let mut out = Vec::new();
        let delta = w.drain_page(0, PageId::new(0), now, &mut out);
        assert_eq!(delta.delivered, 12);
        let mut expected_on_time = 0;
        let mut expected_wait = 0;
        for d in &out {
            let scalar_wait = now - d.client.raw() + 1; // since == client id here
            assert_eq!(d.wait, scalar_wait);
            assert_eq!(d.within_deadline, scalar_wait <= 7);
            expected_on_time += u64::from(scalar_wait <= 7);
            expected_wait += scalar_wait;
        }
        assert_eq!(delta.on_time, expected_on_time);
        assert_eq!(delta.total_wait, expected_wait);
        assert_eq!(delta.on_time, 7);
    }

    #[test]
    fn expired_pages_park_their_waiters_until_republish() {
        let mut w = WaitingSet::new();
        w.publish(0, 1000);
        assert!(w.subscribe(0, 7, 0));
        w.expire(0);
        assert!(!w.subscribe(0, 8, 0), "expired page accepted a waiter");
        // The parked waiter survives and is served on republish.
        w.publish(0, 4);
        let mut out = Vec::new();
        let delta = w.drain_page(0, PageId::new(0), 1, &mut out);
        assert_eq!(delta.delivered, 1);
        assert_eq!(out[0].client.raw(), 7);
    }

    #[test]
    fn sharded_drain_is_bit_identical_to_serial_for_every_k() {
        let build = || {
            let mut w = WaitingSet::new();
            for idx in 0..200 {
                w.publish(idx, 8);
            }
            let mut c = 0u64;
            for round in 0..40u64 {
                for idx in 0..200usize {
                    if (idx as u64 + round).is_multiple_of(3) {
                        assert!(w.subscribe(idx, c, round));
                        c += 1;
                    }
                }
            }
            w
        };
        // Eight channels airing pages across many shards, one duplicate.
        let reqs: Vec<DrainReq> = [3usize, 40, 77, 111, 160, 199, 3, 58]
            .iter()
            .map(|&idx| DrainReq {
                page: PageId::new(u32::try_from(idx).unwrap()),
                idx,
            })
            .collect();
        let mut serial = build();
        let mut serial_out = Vec::new();
        let serial_delta = serial.drain_sharded(&reqs, 40, 1, &mut serial_out);
        assert!(!serial_out.is_empty());
        for k in [2usize, 4, 7, 16] {
            let mut sharded = build();
            let mut out = Vec::new();
            let delta = sharded.drain_sharded(&reqs, 40, k, &mut out);
            assert_eq!(out, serial_out, "delivery stream diverged at k={k}");
            assert_eq!(delta, serial_delta, "stat delta diverged at k={k}");
            assert_eq!(
                sharded.snapshot_waiting(),
                serial.snapshot_waiting(),
                "residual waiting state diverged at k={k}"
            );
        }
    }

    #[test]
    fn pooled_drain_is_bit_identical_to_serial_for_every_k() {
        let build = || {
            let mut w = WaitingSet::new();
            for idx in 0..200 {
                w.publish(idx, 8);
            }
            let mut c = 0u64;
            for round in 0..40u64 {
                for idx in 0..200usize {
                    if (idx as u64 + round).is_multiple_of(3) {
                        assert!(w.subscribe(idx, c, round));
                        c += 1;
                    }
                }
            }
            w
        };
        let reqs: Vec<DrainReq> = [3usize, 40, 77, 111, 160, 199, 3, 58]
            .iter()
            .map(|&idx| DrainReq {
                page: PageId::new(u32::try_from(idx).unwrap()),
                idx,
            })
            .collect();
        let mut serial = build();
        let mut serial_out = Vec::new();
        let serial_delta = serial.drain_sharded(&reqs, 40, 1, &mut serial_out);
        assert!(!serial_out.is_empty());
        let expected_pending: u64 = serial_out.len() as u64;
        for k in [2usize, 3, 4, 16] {
            let pool = crate::pool::DrainPool::new(k);
            let mut pooled = build();
            assert_eq!(
                pooled.pending_for(&reqs),
                expected_pending + pooled.pending_for(&reqs[6..7])
            );
            let mut reqs_buf = reqs.clone();
            let mut out = Vec::new();
            let mut chunk_times = Vec::new();
            let delta = pooled.drain_pooled(
                &mut reqs_buf,
                40,
                &pool,
                &mut out,
                Some((std::time::Instant::now(), &mut chunk_times)),
            );
            // Every chunk reports a timing, in chunk order.
            assert_eq!(chunk_times.len(), k);
            assert!(chunk_times.windows(2).all(|w| w[0].chunk < w[1].chunk));
            // The request buffer is lent to the job and comes back as-is.
            assert_eq!(reqs_buf.len(), reqs.len());
            assert_eq!(out, serial_out, "delivery stream diverged at k={k}");
            assert_eq!(delta, serial_delta, "stat delta diverged at k={k}");
            assert_eq!(
                pooled.snapshot_waiting(),
                serial.snapshot_waiting(),
                "residual waiting state diverged at k={k}"
            );
            // The pool is reusable: a second, now-empty drain delivers
            // nothing and leaves the set intact.
            let mut out2 = Vec::new();
            let delta2 = pooled.drain_pooled(&mut reqs_buf, 41, &pool, &mut out2, None);
            assert!(out2.is_empty());
            assert_eq!(delta2, DrainDelta::default());
            assert_eq!(pooled.snapshot_waiting(), serial.snapshot_waiting());
        }
    }

    #[test]
    fn snapshot_round_trips_through_restore_mid_serving() {
        let mut w = WaitingSet::new();
        for idx in [0usize, 3, 33, 515, 1200] {
            w.publish(idx, 16);
        }
        let mut c = 0u64;
        for round in 0..10u64 {
            for idx in [0usize, 3, 33, 515, 1200] {
                assert!(w.subscribe(idx, c, round));
                c += 1;
            }
        }
        // Drain one page mid-stream, then expire a page with parked
        // waiters: the snapshot must capture exactly the residual state.
        let mut sink = Vec::new();
        w.drain_page(515, PageId::new(515), 9, &mut sink);
        assert!(w.subscribe(515, 999, 10));
        w.expire(33);
        let waiting = w.snapshot_waiting();
        let expected = w.snapshot_expected();
        assert_eq!(waiting.len(), 1201);
        assert_eq!(waiting[33].len(), 10, "parked waiters lost from snapshot");
        let restored = WaitingSet::restore(&expected, &waiting);
        assert_eq!(restored.snapshot_waiting(), waiting);
        assert_eq!(restored.snapshot_expected(), expected);
    }
}
