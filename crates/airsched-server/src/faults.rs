//! Deterministic fault injection for the broadcast station.
//!
//! A [`FaultPlan`] describes *what goes wrong*: a scripted list of
//! [`FaultEvent`]s (channel outages and recoveries, one-slot transmitter
//! stalls, corrupted frames) plus optional seed-driven random fault rates.
//! A [`FaultInjector`] executes the plan slot by slot, handing the station
//! one [`SlotFaults`] per tick.
//!
//! Everything here is deterministic: the injector draws a fixed number of
//! random samples per channel per slot (whether or not each sample is
//! used), so two injectors built from the same plan produce byte-identical
//! fault streams — and therefore two identically-driven stations produce
//! identical [`crate::TickOutcome`] streams. That property is what makes
//! chaos tests reproducible.

use airsched_core::types::ChannelId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One scripted fault, pinned to an absolute slot time.
///
/// Events whose channel is out of range for the station are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// The channel's transmitter dies at the start of slot `at`.
    Down {
        /// Slot at which the outage begins.
        at: u64,
        /// The failing channel.
        channel: ChannelId,
    },
    /// The channel's transmitter comes back at the start of slot `at`.
    Up {
        /// Slot at which the recovery happens.
        at: u64,
        /// The recovering channel.
        channel: ChannelId,
    },
    /// The transmitter stalls for exactly slot `at`: nothing is sent, the
    /// carrier goes idle for one slot.
    Stall {
        /// The stalled slot.
        at: u64,
        /// The stalling channel.
        channel: ChannelId,
    },
    /// The frame sent in slot `at` goes out corrupted: receivers see the
    /// transmission but cannot use it.
    Corrupt {
        /// The corrupted slot.
        at: u64,
        /// The corrupting channel.
        channel: ChannelId,
    },
}

impl FaultEvent {
    /// The slot this event fires in.
    #[must_use]
    pub fn at(&self) -> u64 {
        match self {
            Self::Down { at, .. }
            | Self::Up { at, .. }
            | Self::Stall { at, .. }
            | Self::Corrupt { at, .. } => *at,
        }
    }

    /// The channel this event targets.
    #[must_use]
    pub fn channel(&self) -> ChannelId {
        match self {
            Self::Down { channel, .. }
            | Self::Up { channel, .. }
            | Self::Stall { channel, .. }
            | Self::Corrupt { channel, .. } => *channel,
        }
    }
}

/// A reproducible description of the faults to inject into a station.
///
/// Combines a scripted event list (applied at exact slots, always winning
/// over the random phase) with per-slot, per-channel random fault
/// probabilities drawn from a seeded generator.
///
/// # Examples
///
/// ```
/// use airsched_core::types::ChannelId;
/// use airsched_server::faults::{FaultEvent, FaultPlan};
///
/// // Channel 1 dies at slot 10 and recovers at slot 30; on top of that,
/// // 1% of frames are corrupted at random (seed 7).
/// let plan = FaultPlan::seeded(7)
///     .with_corruption(0.01)
///     .with_script(vec![
///         FaultEvent::Down { at: 10, channel: ChannelId::new(1) },
///         FaultEvent::Up { at: 30, channel: ChannelId::new(1) },
///     ]);
/// assert_eq!(plan.script().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    script: Vec<FaultEvent>,
    seed: u64,
    outage: f64,
    recovery: f64,
    stall: f64,
    corruption: f64,
}

fn assert_probability(p: f64, what: &str) {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "{what} must be a probability in [0, 1], got {p}"
    );
}

impl FaultPlan {
    /// A purely scripted plan: no random faults at all.
    #[must_use]
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        Self::seeded(0).with_script(events)
    }

    /// An empty plan drawing random faults from `seed` (rates default to
    /// zero; set them with the `with_*` builders).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            script: Vec::new(),
            seed,
            outage: 0.0,
            recovery: 0.0,
            stall: 0.0,
            corruption: 0.0,
        }
    }

    /// Replaces the scripted event list.
    #[must_use]
    pub fn with_script(mut self, events: Vec<FaultEvent>) -> Self {
        self.script = events;
        self
    }

    /// Per-slot probability that a live channel fails.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_outage(mut self, p: f64) -> Self {
        assert_probability(p, "outage rate");
        self.outage = p;
        self
    }

    /// Per-slot probability that a dead channel recovers.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_recovery(mut self, p: f64) -> Self {
        assert_probability(p, "recovery rate");
        self.recovery = p;
        self
    }

    /// Per-slot probability that a live channel stalls for one slot.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_stalls(mut self, p: f64) -> Self {
        assert_probability(p, "stall rate");
        self.stall = p;
        self
    }

    /// Per-slot probability that a live channel's frame goes out corrupted.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_corruption(mut self, p: f64) -> Self {
        assert_probability(p, "corruption rate");
        self.corruption = p;
        self
    }

    /// The scripted events (in the order they were supplied).
    #[must_use]
    pub fn script(&self) -> &[FaultEvent] {
        &self.script
    }

    /// The random-phase seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Per-slot outage probability.
    #[must_use]
    pub fn outage(&self) -> f64 {
        self.outage
    }

    /// Per-slot recovery probability.
    #[must_use]
    pub fn recovery(&self) -> f64 {
        self.recovery
    }

    /// Per-slot stall probability.
    #[must_use]
    pub fn stall(&self) -> f64 {
        self.stall
    }

    /// Per-slot corruption probability.
    #[must_use]
    pub fn corruption(&self) -> f64 {
        self.corruption
    }
}

/// The faults affecting one slot, as produced by [`FaultInjector::sample`].
///
/// `stalled` and `corrupted` are indexed by physical channel; transition
/// lists record channels whose up/down state changed *this* slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotFaults {
    /// Channels that failed at the start of this slot.
    pub went_down: Vec<ChannelId>,
    /// Channels that recovered at the start of this slot.
    pub came_up: Vec<ChannelId>,
    /// Per-channel: transmitter stalled for this slot (nothing sent).
    pub stalled: Vec<bool>,
    /// Per-channel: this slot's frame goes out corrupted.
    pub corrupted: Vec<bool>,
}

impl SlotFaults {
    /// An empty fault set sized for zero channels — the starting point for
    /// [`FaultInjector::sample_into`], which resizes it in place.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            went_down: Vec::new(),
            came_up: Vec::new(),
            stalled: Vec::new(),
            corrupted: Vec::new(),
        }
    }

    /// Whether this slot is entirely fault-free.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.went_down.is_empty()
            && self.came_up.is_empty()
            && !self.stalled.iter().any(|&s| s)
            && !self.corrupted.iter().any(|&c| c)
    }
}

impl Default for SlotFaults {
    fn default() -> Self {
        Self::empty()
    }
}

/// Executes a [`FaultPlan`] against a fixed channel count, one slot at a
/// time.
///
/// The injector owns the authoritative up/down state of every channel. The
/// random phase draws exactly four samples per channel per slot (outage,
/// recovery, stall, corruption) regardless of whether each applies, so the
/// random stream never depends on channel state and runs stay reproducible
/// even when scripts and random faults interleave.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    script: Vec<FaultEvent>,
    cursor: usize,
    rng: SmallRng,
    up: Vec<bool>,
    outage: f64,
    recovery: f64,
    stall: f64,
    corruption: f64,
    /// Scratch copy of `up` from the start of the current slot, kept on the
    /// injector so [`Self::sample_into`] allocates nothing per call.
    prev: Vec<bool>,
}

impl FaultInjector {
    /// Builds an injector for a station with `channels` transmitters, all
    /// initially up.
    #[must_use]
    pub fn new(plan: &FaultPlan, channels: u32) -> Self {
        let mut script = plan.script.clone();
        // Stable: same-slot events keep their scripted order.
        script.sort_by_key(FaultEvent::at);
        Self {
            script,
            cursor: 0,
            rng: SmallRng::seed_from_u64(plan.seed),
            up: vec![true; channels as usize],
            outage: plan.outage,
            recovery: plan.recovery,
            stall: plan.stall,
            corruption: plan.corruption,
            prev: Vec::with_capacity(channels as usize),
        }
    }

    /// Number of channels being injected into.
    #[must_use]
    pub fn channels(&self) -> u32 {
        u32::try_from(self.up.len()).expect("channel count fits in u32")
    }

    /// Whether `channel` is currently up (out-of-range channels are down).
    #[must_use]
    pub fn is_up(&self, channel: ChannelId) -> bool {
        self.up
            .get(channel.index() as usize)
            .copied()
            .unwrap_or(false)
    }

    /// How many channels are currently up.
    #[must_use]
    pub fn up_count(&self) -> u32 {
        u32::try_from(self.up.iter().filter(|&&u| u).count()).expect("fits in u32")
    }

    /// Forces `channel` down outside the plan (mirrors a station-side
    /// manual failure so plan and station agree on channel state).
    pub fn force_down(&mut self, channel: ChannelId) {
        if let Some(up) = self.up.get_mut(channel.index() as usize) {
            *up = false;
        }
    }

    /// Forces `channel` up outside the plan.
    pub fn force_up(&mut self, channel: ChannelId) {
        if let Some(up) = self.up.get_mut(channel.index() as usize) {
            *up = true;
        }
    }

    /// Captures the injector's evolving state — script cursor, RNG state,
    /// and per-channel up/down flags — for checkpointing. The static parts
    /// (script, rates) are rebuilt from the plan on restore.
    #[must_use]
    pub fn snapshot(&self) -> FaultInjectorSnapshot {
        FaultInjectorSnapshot {
            cursor: u64::try_from(self.cursor).expect("cursor fits in u64"),
            rng_state: self.rng.state(),
            up: self.up.clone(),
        }
    }

    /// Rebuilds an injector from its originating plan plus a snapshot
    /// taken by [`Self::snapshot`]. The restored injector's fault stream
    /// is bit-identical to the continuation of the snapshotted one.
    #[must_use]
    pub fn from_snapshot(plan: &FaultPlan, snapshot: &FaultInjectorSnapshot) -> Self {
        let mut inj = Self::new(plan, u32::try_from(snapshot.up.len()).expect("fits in u32"));
        inj.cursor = usize::try_from(snapshot.cursor).expect("cursor fits in usize");
        inj.rng = SmallRng::seed_from_u64(snapshot.rng_state);
        inj.up.copy_from_slice(&snapshot.up);
        inj
    }

    /// Produces the faults for slot `time`.
    ///
    /// `time` must advance monotonically across calls for scripted events
    /// to fire (each is applied the first time `sample` sees a slot at or
    /// past its `at`).
    pub fn sample(&mut self, time: u64) -> SlotFaults {
        let mut out = SlotFaults::empty();
        self.sample_into(time, &mut out);
        out
    }

    /// Allocation-free sibling of [`Self::sample`]: fills `out` in place,
    /// reusing its buffers across slots. Byte-identical to `sample` for the
    /// same injector state — the station's hot tick path relies on that.
    pub fn sample_into(&mut self, time: u64, out: &mut SlotFaults) {
        let n = self.up.len();
        self.prev.clear();
        self.prev.extend_from_slice(&self.up);
        out.went_down.clear();
        out.came_up.clear();
        out.stalled.clear();
        out.stalled.resize(n, false);
        out.corrupted.clear();
        out.corrupted.resize(n, false);

        // Random phase: a fixed four draws per channel, state-independent.
        for ch in 0..n {
            let outage_draw: f64 = self.rng.gen();
            let recovery_draw: f64 = self.rng.gen();
            let stall_draw: f64 = self.rng.gen();
            let corrupt_draw: f64 = self.rng.gen();
            if self.up[ch] && outage_draw < self.outage {
                self.up[ch] = false;
            } else if !self.up[ch] && recovery_draw < self.recovery {
                self.up[ch] = true;
            }
            out.stalled[ch] = stall_draw < self.stall;
            out.corrupted[ch] = corrupt_draw < self.corruption;
        }

        // Scripted phase: overrides whatever the random phase decided.
        while let Some(event) = self.script.get(self.cursor) {
            if event.at() > time {
                break;
            }
            let ch = event.channel().index() as usize;
            if ch < n {
                match event {
                    FaultEvent::Down { .. } => self.up[ch] = false,
                    FaultEvent::Up { .. } => self.up[ch] = true,
                    FaultEvent::Stall { at, .. } if *at == time => out.stalled[ch] = true,
                    FaultEvent::Corrupt { at, .. } if *at == time => out.corrupted[ch] = true,
                    // A stall/corrupt slot that was skipped over (the
                    // caller jumped past it) has no lasting effect.
                    FaultEvent::Stall { .. } | FaultEvent::Corrupt { .. } => {}
                }
            }
            self.cursor += 1;
        }

        for (ch, &was_up) in self.prev.iter().enumerate() {
            let id = ChannelId::new(u32::try_from(ch).expect("channel fits in u32"));
            match (was_up, self.up[ch]) {
                (true, false) => out.went_down.push(id),
                (false, true) => out.came_up.push(id),
                _ => {}
            }
        }
        // Down channels transmit nothing, so stall/corrupt flags only
        // matter for live ones; mask them for cleanliness.
        for ch in 0..n {
            if !self.up[ch] {
                out.stalled[ch] = false;
                out.corrupted[ch] = false;
            }
        }
    }
}

/// The evolving part of a [`FaultInjector`]'s state, as captured by
/// [`FaultInjector::snapshot`] for the crash-recovery checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjectorSnapshot {
    /// Position in the (sorted) scripted event list.
    pub cursor: u64,
    /// Internal state of the random-phase generator.
    pub rng_state: u64,
    /// Per-channel up/down flags at snapshot time.
    pub up: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId::new(i)
    }

    #[test]
    fn scripted_outage_and_recovery_fire_on_time() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent::Down {
                at: 2,
                channel: ch(0),
            },
            FaultEvent::Up {
                at: 5,
                channel: ch(0),
            },
        ]);
        let mut inj = FaultInjector::new(&plan, 2);
        assert!(inj.sample(0).is_clean());
        assert!(inj.sample(1).is_clean());
        let f = inj.sample(2);
        assert_eq!(f.went_down, vec![ch(0)]);
        assert!(!inj.is_up(ch(0)));
        assert_eq!(inj.up_count(), 1);
        assert!(inj.sample(3).is_clean());
        assert!(inj.sample(4).is_clean());
        let f = inj.sample(5);
        assert_eq!(f.came_up, vec![ch(0)]);
        assert!(inj.is_up(ch(0)));
    }

    #[test]
    fn scripted_stall_and_corrupt_last_one_slot() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent::Stall {
                at: 1,
                channel: ch(0),
            },
            FaultEvent::Corrupt {
                at: 1,
                channel: ch(1),
            },
        ]);
        let mut inj = FaultInjector::new(&plan, 2);
        assert!(inj.sample(0).is_clean());
        let f = inj.sample(1);
        assert_eq!(f.stalled, vec![true, false]);
        assert_eq!(f.corrupted, vec![false, true]);
        assert!(inj.sample(2).is_clean());
    }

    #[test]
    fn same_seed_means_identical_fault_streams() {
        let plan = FaultPlan::seeded(42)
            .with_outage(0.1)
            .with_recovery(0.3)
            .with_stalls(0.05)
            .with_corruption(0.2);
        let mut a = FaultInjector::new(&plan, 4);
        let mut b = FaultInjector::new(&plan, 4);
        for t in 0..500 {
            assert_eq!(a.sample(t), b.sample(t), "diverged at slot {t}");
        }
    }

    #[test]
    fn random_faults_actually_happen_and_recover() {
        let plan = FaultPlan::seeded(7).with_outage(0.2).with_recovery(0.5);
        let mut inj = FaultInjector::new(&plan, 3);
        let mut saw_down = false;
        let mut saw_up = false;
        for t in 0..200 {
            let f = inj.sample(t);
            saw_down |= !f.went_down.is_empty();
            saw_up |= !f.came_up.is_empty();
        }
        assert!(saw_down && saw_up);
    }

    #[test]
    fn out_of_range_scripted_channels_are_ignored() {
        let plan = FaultPlan::scripted(vec![FaultEvent::Down {
            at: 0,
            channel: ch(9),
        }]);
        let mut inj = FaultInjector::new(&plan, 2);
        assert!(inj.sample(0).is_clean());
        assert_eq!(inj.up_count(), 2);
        assert!(!inj.is_up(ch(9)));
    }

    #[test]
    fn force_down_and_up_mirror_station_state() {
        let mut inj = FaultInjector::new(&FaultPlan::seeded(0), 2);
        inj.force_down(ch(1));
        assert_eq!(inj.up_count(), 1);
        inj.force_up(ch(1));
        assert_eq!(inj.up_count(), 2);
        inj.force_down(ch(7)); // out of range: no-op
        assert_eq!(inj.up_count(), 2);
    }

    #[test]
    fn sample_into_reusing_one_buffer_matches_sample() {
        let plan = FaultPlan::seeded(11)
            .with_outage(0.1)
            .with_recovery(0.3)
            .with_stalls(0.05)
            .with_corruption(0.2)
            .with_script(vec![
                FaultEvent::Down {
                    at: 40,
                    channel: ch(2),
                },
                FaultEvent::Up {
                    at: 90,
                    channel: ch(2),
                },
            ]);
        let mut fresh = FaultInjector::new(&plan, 4);
        let mut reused = FaultInjector::new(&plan, 4);
        let mut buf = SlotFaults::default();
        for t in 0..300 {
            reused.sample_into(t, &mut buf);
            assert_eq!(fresh.sample(t), buf, "diverged at slot {t}");
        }
    }

    #[test]
    fn snapshot_restores_the_exact_fault_stream() {
        let plan = FaultPlan::seeded(23)
            .with_outage(0.1)
            .with_recovery(0.3)
            .with_stalls(0.05)
            .with_corruption(0.2)
            .with_script(vec![
                FaultEvent::Down {
                    at: 150,
                    channel: ch(1),
                },
                FaultEvent::Up {
                    at: 220,
                    channel: ch(1),
                },
            ]);
        let mut reference = FaultInjector::new(&plan, 3);
        for t in 0..100 {
            reference.sample(t);
        }
        let snap = reference.snapshot();
        let mut restored = FaultInjector::from_snapshot(&plan, &snap);
        assert_eq!(restored.channels(), 3);
        for t in 100..300 {
            assert_eq!(reference.sample(t), restored.sample(t), "slot {t}");
        }
        assert_eq!(reference.snapshot(), restored.snapshot());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_rates_above_one() {
        let _ = FaultPlan::seeded(0).with_outage(1.5);
    }

    #[test]
    fn down_channels_do_not_stall_or_corrupt() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent::Down {
                at: 0,
                channel: ch(0),
            },
            FaultEvent::Stall {
                at: 1,
                channel: ch(0),
            },
            FaultEvent::Corrupt {
                at: 1,
                channel: ch(0),
            },
        ]);
        let mut inj = FaultInjector::new(&plan, 1);
        inj.sample(0);
        let f = inj.sample(1);
        assert_eq!(f.stalled, vec![false]);
        assert_eq!(f.corrupted, vec![false]);
    }
}
