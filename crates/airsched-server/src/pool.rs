//! A persistent parked-worker pool for the tick drain phase.
//!
//! `WaitingSet::drain_sharded` pays a `std::thread::scope` spawn + join
//! per tick — ~15µs at `parallelism(2)`, which dwarfs the drain itself on
//! all but the largest ticks and made every `--par > 1` benchmark row at
//! small scale a regression. This pool hoists the thread cost to
//! `Station::parallelism(k)` time, the same hoist-to-setup theme as the
//! frame-template cache: `k - 1` workers are spawned once and park on a
//! condvar between ticks.
//!
//! # Handoff protocol
//!
//! The workspace forbids `unsafe`, so workers cannot borrow the waiting
//! set across threads the way a scoped spawn can. Instead, ownership
//! moves: per drain, the shard vector is split into `k` contiguous
//! chunks (the same `SHARD_COUNT * (j + 1) / k` boundaries as
//! `drain_sharded`) which travel *into* a mutex-guarded [`Job`] slot and
//! travel back when drained. Moving a chunk moves only the shard
//! headers — the arenas stay where they are — so the handoff cost is a
//! few hundred bytes of memcpy, not a data copy.
//!
//! Each worker owns one chunk, fixed at pool build (worker `j` drains
//! chunk `j + 1`). The *submitting* thread participates: it drains chunk
//! 0, then greedily claims any chunk whose worker has not yet started
//! it. Every chunk therefore has exactly two potential claimants (its
//! worker and the submitter), claims are resolved under the job mutex,
//! and on a single-CPU host the submitter simply drains everything
//! itself without ever blocking on a context switch — the pool degrades
//! to the serial path plus one condvar broadcast.
//!
//! # Determinism
//!
//! Which thread drains a chunk never reaches the output: results carry
//! their request index and are merged in request order, stat deltas
//! merge with plain adds, and the shard chunks are reassembled in base
//! order — bit-identical to `drain_sharded`, which is itself pinned
//! bit-identical to the serial walk (DESIGN.md §12–§13).

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::station::Delivery;
use crate::waiting::{DrainDelta, DrainReq, WaitShard, SHARD_COUNT};

/// Wall-clock timing of one chunk drain, measured only when the caller
/// passes a clock epoch (i.e. on trace-sampled slots). Offsets are
/// nanoseconds since that epoch so they land on the same timeline as the
/// station's phase spans.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChunkDrainTime {
    /// Chunk number within the split (`0..k`).
    pub chunk: u32,
    /// Drain start, nanoseconds since the caller's epoch.
    pub start_ns: u64,
    /// Drain duration in nanoseconds.
    pub dur_ns: u64,
}

/// Everything a drain needs that is shared read-only by all claimants.
struct JobCtx {
    reqs: Vec<DrainReq>,
    deadlines: Vec<u64>,
    now: u64,
    /// Epoch for per-chunk timing; `None` keeps the drain clock-free.
    clock: Option<Instant>,
}

/// One contiguous run of shards travelling through the pool.
struct Chunk {
    /// Chunk number within the split (fixed at submit).
    index: u32,
    /// Index of the first shard (`range = base..base + shards.len()`).
    base: usize,
    shards: Vec<WaitShard>,
}

/// One drain in flight.
struct Job {
    /// Unclaimed chunks, indexed by chunk number; a claimant takes the
    /// `Option`.
    chunks: Vec<Option<Chunk>>,
    ctx: Arc<JobCtx>,
    /// Chunks not yet drained and returned (claimed or not).
    outstanding: usize,
    /// Drained chunks, carrying the shards back.
    finished: Vec<Chunk>,
    /// Request-indexed results, merged by the submitter in request order.
    results: Vec<(usize, Vec<Delivery>, DrainDelta)>,
    /// Per-chunk timings (only when the job carried a clock epoch).
    timings: Vec<ChunkDrainTime>,
}

struct PoolState {
    job: Option<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes workers: a new job was published (or shutdown).
    start: Condvar,
    /// Wakes the submitter: a chunk came back.
    done: Condvar,
}

/// A persistent pool of parked drain workers. Built once per
/// `Station::parallelism(k)` setting and reused every tick; dropped (and
/// joined) when the station re-keys or is dropped.
pub(crate) struct DrainPool {
    shared: Arc<PoolShared>,
    /// Serializes drains when clones of one station share the pool.
    submit: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    k: usize,
}

impl std::fmt::Debug for DrainPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrainPool")
            .field("k", &self.k)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl DrainPool {
    /// Spawns `k - 1` parked workers; the submitting thread is the `k`th.
    /// `k` is clamped to `2..=SHARD_COUNT` (a pool below 2 is pointless —
    /// callers use the serial path).
    pub fn new(k: usize) -> Self {
        let k = k.clamp(2, SHARD_COUNT);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..k)
            .map(|chunk_index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("airsched-drain-{chunk_index}"))
                    .spawn(move || worker_loop(&shared, chunk_index))
                    .expect("spawning a drain worker succeeds")
            })
            .collect();
        Self {
            shared,
            submit: Mutex::new(()),
            workers,
            k,
        }
    }

    /// Worker count including the submitting thread.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Drains every request across the pool, appending deliveries to
    /// `out` in request order. `shards`, `deadlines` and `reqs` are
    /// lent to the job (emptied, then refilled exactly as they were —
    /// shards in base order, the vectors keeping their allocations).
    ///
    /// When `times` carries `(epoch, sink)`, each chunk's drain is
    /// wall-clocked relative to `epoch` and appended to `sink` in chunk
    /// order; `None` keeps the hot path clock-free.
    pub fn drain(
        &self,
        shards: &mut Vec<WaitShard>,
        deadlines: &mut Vec<u64>,
        reqs: &mut Vec<DrainReq>,
        now: u64,
        out: &mut Vec<Delivery>,
        times: Option<(Instant, &mut Vec<ChunkDrainTime>)>,
    ) -> DrainDelta {
        let _submitting = self
            .submit
            .lock()
            .expect("pool submit lock is never poisoned");
        let k = self.k;
        debug_assert_eq!(shards.len(), SHARD_COUNT);
        let mut chunks: Vec<Option<Chunk>> = Vec::with_capacity(k);
        let mut lo = 0usize;
        for j in 0..k {
            let hi = SHARD_COUNT * (j + 1) / k;
            let mut chunk = Vec::with_capacity(hi - lo);
            chunk.extend(shards.drain(..hi - lo));
            chunks.push(Some(Chunk {
                index: j as u32,
                base: lo,
                shards: chunk,
            }));
            lo = hi;
        }
        let (clock, time_sink) = match times {
            Some((epoch, sink)) => (Some(epoch), Some(sink)),
            None => (None, None),
        };
        let ctx = Arc::new(JobCtx {
            reqs: std::mem::take(reqs),
            deadlines: std::mem::take(deadlines),
            now,
            clock,
        });
        let mut st = self
            .shared
            .state
            .lock()
            .expect("pool lock is never poisoned");
        debug_assert!(st.job.is_none(), "submits are serialized");
        st.job = Some(Job {
            chunks,
            ctx: Arc::clone(&ctx),
            outstanding: k,
            finished: Vec::with_capacity(k),
            results: Vec::new(),
            timings: Vec::new(),
        });
        drop(ctx);
        self.shared.start.notify_all();
        // Participate: drain chunk 0, then steal any chunk whose worker
        // has not started it. On a single-CPU host this thread drains
        // everything and never blocks.
        loop {
            let job = st
                .job
                .as_mut()
                .expect("job lives until the submitter takes it");
            let claimed = job.chunks.iter_mut().find_map(|slot| slot.take());
            if let Some(chunk) = claimed {
                let ctx = Arc::clone(&job.ctx);
                drop(st);
                let (chunk, results, timing) = drain_one(chunk, &ctx);
                st = self
                    .shared
                    .state
                    .lock()
                    .expect("pool lock is never poisoned");
                drop(ctx);
                finish(
                    st.job.as_mut().expect("job outlives its chunks"),
                    chunk,
                    results,
                    timing,
                );
                continue;
            }
            if job.outstanding == 0 {
                break;
            }
            st = self
                .shared
                .done
                .wait(st)
                .expect("pool lock is never poisoned");
        }
        let mut job = st.job.take().expect("submitter owns the finished job");
        drop(st);
        // Every worker dropped its ctx clone (under the lock) before the
        // last chunk was counted back in, so the Arc is ours again.
        let ctx = Arc::try_unwrap(job.ctx)
            .unwrap_or_else(|_| unreachable!("all claimants returned their chunks"));
        *reqs = ctx.reqs;
        *deadlines = ctx.deadlines;
        job.finished.sort_by_key(|c| c.base);
        for chunk in job.finished {
            shards.extend(chunk.shards);
        }
        job.results.sort_by_key(|&(ri, _, _)| ri);
        let mut delta = DrainDelta::default();
        for (_, deliveries, d) in job.results {
            out.extend(deliveries);
            delta.merge(d);
        }
        if let Some(sink) = time_sink {
            job.timings.sort_unstable_by_key(|t| t.chunk);
            sink.extend(job.timings);
        }
        delta
    }
}

impl Drop for DrainPool {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .expect("pool lock is never poisoned");
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("drain worker exits cleanly");
        }
    }
}

/// What one chunk drain hands back: the chunk (ownership returned to
/// the submitter), per-request deliveries with their fold deltas, and
/// the timing row when the job carried a clock epoch.
type ChunkDrainResult = (
    Chunk,
    Vec<(usize, Vec<Delivery>, DrainDelta)>,
    Option<ChunkDrainTime>,
);

/// Drains one chunk against the shared context. Runs without any lock.
/// Clocks the drain only when the job carries an epoch.
fn drain_one(mut chunk: Chunk, ctx: &JobCtx) -> ChunkDrainResult {
    let started = ctx.clock.map(|epoch| (Instant::now(), epoch));
    let range = chunk.base..chunk.base + chunk.shards.len();
    let results = crate::waiting::drain_chunk(
        &mut chunk.shards,
        &range,
        &ctx.reqs,
        &ctx.deadlines,
        ctx.now,
    );
    let timing = started.map(|(t0, epoch)| ChunkDrainTime {
        chunk: chunk.index,
        start_ns: t0.duration_since(epoch).as_nanos() as u64,
        dur_ns: t0.elapsed().as_nanos() as u64,
    });
    (chunk, results, timing)
}

/// Books a drained chunk back into the job; must run under the pool lock
/// *after* the claimant dropped its ctx clone, so that `outstanding == 0`
/// implies the submitter holds the only remaining `Arc<JobCtx>`.
fn finish(
    job: &mut Job,
    chunk: Chunk,
    results: Vec<(usize, Vec<Delivery>, DrainDelta)>,
    timing: Option<ChunkDrainTime>,
) {
    job.finished.push(chunk);
    job.results.extend(results);
    job.timings.extend(timing);
    job.outstanding -= 1;
}

fn worker_loop(shared: &PoolShared, chunk_index: usize) {
    let mut st = shared.state.lock().expect("pool lock is never poisoned");
    loop {
        if st.shutdown {
            return;
        }
        let claimed = st
            .job
            .as_mut()
            .and_then(|job| job.chunks.get_mut(chunk_index).and_then(Option::take));
        if let Some(chunk) = claimed {
            let job = st.job.as_mut().expect("claim implies a live job");
            let ctx = Arc::clone(&job.ctx);
            drop(st);
            let (chunk, results, timing) = drain_one(chunk, &ctx);
            st = shared.state.lock().expect("pool lock is never poisoned");
            drop(ctx);
            let job = st.job.as_mut().expect("job outlives its chunks");
            finish(job, chunk, results, timing);
            if job.outstanding == 0 {
                shared.done.notify_all();
            }
            continue;
        }
        st = shared.start.wait(st).expect("pool lock is never poisoned");
    }
}
