//! The broadcast station: a live server over an always-valid schedule,
//! hardened against channel failure.
//!
//! [`Station`] glues the pieces of the reproduction into the long-running
//! process a deployment would actually operate:
//!
//! * a catalogue managed through [`Station::publish`] / [`Station::expire`]
//!   (backed by [`airsched_core::dynamic::OnlineScheduler`], so the
//!   schedule stays valid through every change, compacting when needed);
//! * client subscriptions ([`Station::subscribe`]) that are delivered the
//!   moment their page airs;
//! * a slot clock driven by [`Station::tick`], each tick transmitting one
//!   column of the program and returning the deliveries it caused — with
//!   an allocation-free sibling [`Station::tick_into`] that reuses one
//!   [`TickBuf`] across slots, and [`Station::run_with`] streaming
//!   deliveries through a callback for long runs;
//! * live statistics ([`Station::stats`]): waits, deadline hits, backlog,
//!   failovers and per-mode delivery tallies.
//!
//! ## The degradation ladder
//!
//! Transmitters fail. The station reacts by walking a ladder of
//! [`Mode`]s, re-planning the *same* catalogue onto the surviving
//! channels and preserving every in-flight subscription:
//!
//! * **[`Mode::Valid`]** — all channels up; the primary always-valid
//!   program airs.
//! * **[`Mode::Repacked`]** — some channels down, but the survivors still
//!   meet Theorem 3.1's minimum
//!   ([`airsched_core::bound::minimum_channels_for_times`]); the
//!   catalogue is re-packed into a *valid* program on the survivors via
//!   SUSC ([`OnlineScheduler::rebuild_on_channels`]).
//! * **[`Mode::BestEffort`]** — survivors fall below the minimum; no
//!   valid program exists, so the station fails over to PAMAD
//!   ([`airsched_core::degrade::replan`]) and spreads the unavoidable
//!   delay evenly.
//! * **[`Mode::Offline`]** — nothing left to transmit with.
//!
//! Recovery climbs back up the same ladder. Faults arrive either from a
//! deterministic [`FaultInjector`] (attached with
//! [`Station::with_faults`]) or from the manual
//! [`Station::fail_channel`] / [`Station::restore_channel`] API; a
//! [`HealthMonitor`] watches windowed error/stall rates on top and
//! surfaces typed [`ChannelEvent`]s through every tick.
//!
//! ## The pre-swap lint gate
//!
//! Before any replan candidate reaches the air it is linted
//! ([`airsched_lint`]) against the live catalogue: re-pack candidates
//! under the full rule set, best-effort candidates under
//! [`LintConfig::structural`]. A deny-level diagnostic refuses the swap —
//! the previous program keeps serving and
//! [`StationStats::plan_rejections`] records the refusal; warn-level
//! diagnostics are tallied in [`StationStats::plan_warnings`]. Operators
//! can dry-run the same check with [`Station::propose_plan`], and chaos
//! tests corrupt candidates upstream of the gate with
//! [`Station::set_plan_corruptor`]. With [`Station::set_deep_verify`] on,
//! re-pack candidates are additionally certified by the
//! difference-constraint solver ([`airsched_solve::check_observed`]) —
//! an independent derivation of the same deadline semantics whose
//! refusals carry machine-checkable certificates and are tallied in
//! [`StationStats::solve_rejections`].
//!
//! ## Observability
//!
//! [`Station::attach_obs`] hooks an [`airsched_obs::Obs`] handle into the
//! serving loop: per-mode delivery counters, a wait histogram, channel
//! health / mode-change / plan-gate flight-recorder events, and an
//! automatic black-box postmortem whenever the ladder drops onto
//! [`Mode::BestEffort`] or [`Mode::Offline`]. The handle is optional — a
//! station built without one behaves exactly as before, and the hot path
//! pays only relaxed atomic adds when one is attached (see DESIGN.md §10
//! for the metric schema).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use airsched_core::bound::minimum_channels_for_times;
use airsched_core::degrade;
use airsched_core::dynamic::{OnlineScheduler, SchedulerSnapshot};
use airsched_core::error::ScheduleError;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};

use airsched_lint::{lint, LintConfig, LintInput, LintReport, Severity};

use airsched_obs::events::{Event as ObsEvent, HealthTransition};
use airsched_obs::metrics::{Counter, Gauge, Histogram};
use airsched_obs::Obs;

use crate::faults::{FaultInjector, FaultInjectorSnapshot, FaultPlan, SlotFaults};
use crate::health::{
    ChannelEvent, HealthMonitor, HealthSnapshot, HealthThresholds, SlotObservation,
};
use airsched_trace::{Phase, SloTracker, SlotTrace, SpanKind, SpanRec, Trace};

use crate::pool::{ChunkDrainTime, DrainPool};
use crate::waiting::{DrainDelta, DrainReq, WaitingSet, SHARD_COUNT};

/// A hook that mutates replan candidates before the lint gate sees them —
/// the chaos-engineering analogue of the [`FaultInjector`]: it simulates a
/// corrupted replan pipeline rather than a failed transmitter. A plain
/// function pointer so the station stays `Clone` and `Debug`.
pub type PlanCorruptor = fn(&BroadcastProgram) -> BroadcastProgram;

/// Identifier of a subscribed client, unique within one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(u64);

impl ClientId {
    /// The raw numeric id. Ids are assigned from a per-station counter
    /// that snapshot/restore preserves, so the recovery journal can
    /// assert that a replayed subscription receives the original id.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value — the waiting-set arenas store
    /// clients as bare `u64` columns.
    pub(crate) const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

impl core::fmt::Display for ClientId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// One delivery produced by a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Who was served.
    pub client: ClientId,
    /// The page they waited for.
    pub page: PageId,
    /// Whole slots from subscription to full reception.
    pub wait: u64,
    /// Whether the wait stayed within the page's expected time.
    pub within_deadline: bool,
}

/// Where the station currently sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// All channels up; the primary always-valid program is on the air.
    Valid,
    /// Channels lost, but the survivors meet the catalogue's minimum: a
    /// SUSC re-pack keeps the program valid.
    Repacked,
    /// Survivors are below the minimum: PAMAD best-effort, deadlines no
    /// longer guaranteed.
    BestEffort,
    /// No channels up (or no plan possible): nothing transmits.
    Offline,
}

impl Mode {
    /// Whether the station still *guarantees* every expected time (the
    /// valid rungs of the ladder: [`Mode::Valid`] and [`Mode::Repacked`]).
    #[must_use]
    pub fn is_valid(self) -> bool {
        matches!(self, Self::Valid | Self::Repacked)
    }

    /// Stable lowercase name, used in metric labels and event fields.
    #[must_use]
    pub fn name(self) -> &'static str {
        MODE_NAMES[self.index()]
    }

    fn index(self) -> usize {
        match self {
            Self::Valid => 0,
            Self::Repacked => 1,
            Self::BestEffort => 2,
            Self::Offline => 3,
        }
    }
}

/// Mode names indexed by [`Mode::index`].
const MODE_NAMES: [&str; 4] = ["valid", "repacked", "best-effort", "offline"];

impl core::fmt::Display for Mode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rungs of the degradation ladder the station may use.
///
/// Both rungs default to enabled. Disabling `repack` makes any channel
/// loss fail straight over to best-effort; disabling `best_effort` makes
/// an under-minimum station go offline instead of airing a non-valid
/// program (with an empty catalogue this also skips the trivial re-pack,
/// so the station reports offline until channels return).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DegradationPolicy {
    /// Allow the SUSC re-pack rung ([`Mode::Repacked`]).
    pub repack: bool,
    /// Allow the PAMAD rung ([`Mode::BestEffort`]).
    pub best_effort: bool,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            repack: true,
            best_effort: true,
        }
    }
}

/// Deliveries attributed to one [`Mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ModeTally {
    /// Deliveries made while the station was in this mode.
    pub delivered: u64,
    /// Of those, deliveries within the page's expected time.
    pub on_time: u64,
}

impl ModeTally {
    /// Fraction of this mode's deliveries that met their deadline (1.0
    /// when the mode delivered nothing).
    #[must_use]
    pub fn on_time_rate(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.on_time as f64 / self.delivered as f64
        }
    }
}

/// What one slot of air time did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickOutcome {
    /// The slot that just finished transmitting.
    pub time: u64,
    /// The degradation-ladder mode the slot was transmitted in.
    pub mode: Mode,
    /// Pages on the air this slot, by physical channel (`None` = idle or
    /// down carrier).
    pub on_air: Vec<Option<PageId>>,
    /// Per physical channel: the frame aired but went out corrupted (its
    /// page shows in `on_air` yet nobody could receive it).
    pub corrupted: Vec<bool>,
    /// Clients served this slot.
    pub deliveries: Vec<Delivery>,
    /// Channel health transitions that surfaced this slot.
    pub events: Vec<ChannelEvent>,
}

/// Reusable scratch for [`Station::tick_into`]: every buffer one slot of
/// air time needs, retained across slots so steady-state ticking performs
/// no heap allocation at all.
///
/// Create one with [`TickBuf::default`], hand it to `tick_into` every
/// slot, and read the slot's results through the accessors — or snapshot
/// them as a [`TickOutcome`] with [`TickBuf::to_outcome`] /
/// [`TickBuf::into_outcome`].
#[derive(Debug, Clone)]
pub struct TickBuf {
    time: u64,
    mode: Mode,
    on_air: Vec<Option<PageId>>,
    corrupted: Vec<bool>,
    deliveries: Vec<Delivery>,
    events: Vec<ChannelEvent>,
    /// Scratch for the fault injector's per-slot output.
    faults: SlotFaults,
    /// Whether `faults` was filled this slot (no injector = no faults, and
    /// the tick path skips the per-channel fault flags entirely).
    have_faults: bool,
}

impl Default for TickBuf {
    fn default() -> Self {
        Self {
            time: 0,
            mode: Mode::Valid,
            on_air: Vec::new(),
            corrupted: Vec::new(),
            deliveries: Vec::new(),
            events: Vec::new(),
            faults: SlotFaults::empty(),
            have_faults: false,
        }
    }
}

impl TickBuf {
    /// An empty scratch buffer (same as [`TickBuf::default`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot the last `tick_into` transmitted.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The degradation-ladder mode that slot aired in.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Pages on the air, by physical channel (`None` = idle or down).
    #[must_use]
    pub fn on_air(&self) -> &[Option<PageId>] {
        &self.on_air
    }

    /// Per physical channel: the frame aired but went out corrupted.
    #[must_use]
    pub fn corrupted(&self) -> &[bool] {
        &self.corrupted
    }

    /// Clients served by the slot.
    #[must_use]
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Channel health transitions that surfaced during the slot.
    #[must_use]
    pub fn events(&self) -> &[ChannelEvent] {
        &self.events
    }

    /// Clones the slot's results into an owned [`TickOutcome`].
    #[must_use]
    pub fn to_outcome(&self) -> TickOutcome {
        TickOutcome {
            time: self.time,
            mode: self.mode,
            on_air: self.on_air.clone(),
            corrupted: self.corrupted.clone(),
            deliveries: self.deliveries.clone(),
            events: self.events.clone(),
        }
    }

    /// Moves the slot's results into an owned [`TickOutcome`].
    #[must_use]
    pub fn into_outcome(self) -> TickOutcome {
        TickOutcome {
            time: self.time,
            mode: self.mode,
            on_air: self.on_air,
            corrupted: self.corrupted,
            deliveries: self.deliveries,
            events: self.events,
        }
    }
}

/// Aggregate station statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StationStats {
    /// Slots ticked so far.
    pub slots_elapsed: u64,
    /// Total deliveries.
    pub delivered: u64,
    /// Deliveries within their page's expected time.
    pub on_time: u64,
    /// Sum of delivery waits (for the mean).
    pub total_wait: u64,
    /// Clients currently waiting.
    pub waiting: u64,
    /// Transitions onto the best-effort (PAMAD) rung.
    pub failovers: u64,
    /// Transitions onto the re-packed (reduced-channel SUSC) rung.
    pub repacks: u64,
    /// Climbs back to [`Mode::Valid`] after a degraded spell.
    pub recoveries: u64,
    /// Slots spent in any mode other than [`Mode::Valid`].
    pub degraded_slots: u64,
    /// Replan candidates the pre-swap lint gate refused to install
    /// (deny-level diagnostics).
    pub plan_rejections: u64,
    /// Warn-level lint diagnostics observed across gated candidates.
    pub plan_warnings: u64,
    /// Re-pack candidates the deep-verify solver gate refused: the
    /// difference-constraint oracle ([`airsched_solve::check_observed`])
    /// produced an infeasibility certificate for the candidate against
    /// the live catalogue. Zero unless [`Station::set_deep_verify`] is
    /// on.
    pub solve_rejections: u64,
    /// Degradation-ladder mode transitions in either direction (the sum
    /// of `failovers + repacks + recoveries + drops to offline`) — the
    /// counter twin of the flight recorder's `ModeChange` event stream,
    /// so the two can be cross-checked.
    pub mode_changes: u64,
    /// Slot of the most recent mode transition, `None` while the station
    /// has never left its initial mode.
    pub last_mode_change_slot: Option<u64>,
    per_mode: [ModeTally; 4],
}

impl StationStats {
    /// Mean wait per delivery, in slots (0 when nothing delivered).
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.delivered as f64
        }
    }

    /// Fraction of deliveries within the expected time (1.0 when none).
    #[must_use]
    pub fn on_time_rate(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.on_time as f64 / self.delivered as f64
        }
    }

    /// Delivery tally attributed to `mode`.
    #[must_use]
    pub fn per_mode(&self, mode: Mode) -> ModeTally {
        self.per_mode[mode.index()]
    }

    /// All four per-mode tallies, in ladder order (valid, repacked,
    /// best-effort, offline) — the checkpoint encoder's read path.
    #[must_use]
    pub fn mode_tallies(&self) -> [ModeTally; 4] {
        self.per_mode
    }

    /// Replaces the per-mode tallies — the checkpoint decoder's write
    /// path, paired with [`StationStats::mode_tallies`].
    pub fn set_mode_tallies(&mut self, tallies: [ModeTally; 4]) {
        self.per_mode = tallies;
    }
}

/// Errors specific to station operation (scheduling errors pass through
/// as [`ScheduleError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StationError {
    /// The page is not in the catalogue.
    UnknownPage {
        /// The missing page.
        page: PageId,
    },
    /// Admission failed even after compaction: the catalogue no longer
    /// fits the channel budget.
    CapacityExhausted {
        /// The page that could not be admitted.
        page: PageId,
    },
    /// An underlying scheduling error.
    Schedule(ScheduleError),
    /// A [`StationSnapshot`] could not be turned back into a station
    /// (internally inconsistent — a corrupt or truncated checkpoint).
    CorruptSnapshot {
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl core::fmt::Display for StationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownPage { page } => write!(f, "{page} is not in the catalogue"),
            Self::CapacityExhausted { page } => write!(
                f,
                "cannot admit {page}: catalogue exceeds the channel budget"
            ),
            Self::Schedule(e) => write!(f, "{e}"),
            Self::CorruptSnapshot { reason } => {
                write!(f, "cannot restore station snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for StationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for StationError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

/// The program actually on the air, as chosen by the degradation ladder.
#[derive(Debug, Clone)]
enum ActivePlan {
    /// The primary scheduler's program across all configured channels.
    Full,
    /// A valid SUSC re-pack onto the surviving channels.
    Reduced(BroadcastProgram),
    /// A PAMAD best-effort plan onto the surviving channels.
    BestEffort(BroadcastProgram),
    /// Nothing transmits.
    Offline,
}

/// Replan stage names indexed by the `STAGE_*` constants below.
const STAGE_NAMES: [&str; 3] = ["repack", "pamad", "solve"];
const STAGE_REPACK: usize = 0;
const STAGE_PAMAD: usize = 1;
const STAGE_SOLVE: usize = 2;

/// Drain path labels for `airsched_station_drain_ticks_total`.
const DRAIN_PATH_NAMES: [&str; 2] = ["pooled", "serial"];

/// Health-transition labels indexed by [`transition_index`].
const TRANSITION_NAMES: [&str; 4] = ["down", "up", "degraded", "healthy"];

fn transition_index(t: HealthTransition) -> usize {
    match t {
        HealthTransition::Down => 0,
        HealthTransition::Up => 1,
        HealthTransition::Degraded => 2,
        HealthTransition::Healthy => 3,
    }
}

/// Pre-registered metric handles for one instrumented station.
///
/// The serving-path series are **single-writer mirrors** of
/// [`StationStats`]: the tick loop does no per-delivery atomic
/// read-modify-write at all. Deliveries bump only their wait bucket
/// (one relaxed load + store on the station's own histogram), and the
/// end of each tick re-stores the scalar series straight from the stats
/// the uninstrumented loop maintains anyway — a handful of plain relaxed
/// stores, no locked instructions. This is what keeps the instrumented
/// station within a few percent of the plain one. Rare-path series
/// (mode changes, plan verdicts, health transitions, replans, fault
/// frames) stay `inc`/`add` at their event sites so they are exact even
/// between ticks.
#[derive(Debug, Clone)]
struct StationObs {
    obs: Obs,
    slots: Counter,
    delivered: [Counter; 4],
    on_time: [Counter; 4],
    deadline_miss: Counter,
    degraded_slots: Counter,
    mode_changes: Counter,
    plan_rejections: Counter,
    plan_warnings: Counter,
    stalled_frames: Counter,
    corrupt_frames: Counter,
    health_transitions: [Counter; 4],
    replan_runs: [Counter; 3],
    replan_evals: [Counter; 3],
    /// Re-pack candidates the difference-constraint solver rejected
    /// under deep verify.
    solve_rejections: Counter,
    /// Ticks through the parallel drain by path taken at the crossover:
    /// `[pooled, serial]`, mirrored from [`Station`]'s crossover tallies.
    drain_ticks: [Counter; 2],
    /// Waiting-set shard compactions, summed across shards.
    compactions: Counter,
    /// Bytes held by the waiting-set deadline arenas.
    arena_bytes: Gauge,
    waiting: Gauge,
    channels_up: Gauge,
    mode: Gauge,
    wait_hist: Histogram,
    /// Largest delivery wait seen, tracked as a plain local so the hot
    /// loop never needs an atomic `fetch_max`; mirrored into the
    /// histogram's totals at end of tick.
    wait_max: u64,
    /// Stats baseline captured at attach time: the wait histogram only
    /// buckets deliveries made *since* attach, so its totals subtract the
    /// pre-attach history to stay consistent with its buckets.
    base_delivered: u64,
    base_wait: u64,
    /// Reused scratch for the tick's `DeadlineMiss` events, drained into
    /// the recorder under a single lock at end of tick.
    miss_scratch: Vec<ObsEvent>,
}

impl StationObs {
    fn new(obs: &Obs) -> Self {
        let reg = obs.registry();
        Self {
            obs: obs.clone(),
            slots: reg.counter("airsched_station_slots_total", &[]),
            delivered: core::array::from_fn(|i| {
                reg.counter(
                    "airsched_station_delivered_total",
                    &[("mode", MODE_NAMES[i])],
                )
            }),
            on_time: core::array::from_fn(|i| {
                reg.counter("airsched_station_on_time_total", &[("mode", MODE_NAMES[i])])
            }),
            deadline_miss: reg.counter("airsched_station_deadline_miss_total", &[]),
            degraded_slots: reg.counter("airsched_station_degraded_slots_total", &[]),
            mode_changes: reg.counter("airsched_station_mode_changes_total", &[]),
            plan_rejections: reg.counter("airsched_station_plan_rejections_total", &[]),
            plan_warnings: reg.counter("airsched_station_plan_warnings_total", &[]),
            stalled_frames: reg.counter("airsched_station_stalled_frames_total", &[]),
            corrupt_frames: reg.counter("airsched_station_corrupt_frames_total", &[]),
            health_transitions: core::array::from_fn(|i| {
                reg.counter(
                    "airsched_health_transitions_total",
                    &[("transition", TRANSITION_NAMES[i])],
                )
            }),
            replan_runs: core::array::from_fn(|i| {
                reg.counter("airsched_replan_runs_total", &[("stage", STAGE_NAMES[i])])
            }),
            replan_evals: core::array::from_fn(|i| {
                reg.counter("airsched_replan_evals_total", &[("stage", STAGE_NAMES[i])])
            }),
            solve_rejections: reg.counter("airsched_station_solve_rejections_total", &[]),
            drain_ticks: core::array::from_fn(|i| {
                reg.counter(
                    "airsched_station_drain_ticks_total",
                    &[("path", DRAIN_PATH_NAMES[i])],
                )
            }),
            compactions: reg.counter("airsched_waiting_compactions_total", &[]),
            arena_bytes: reg.gauge("airsched_waiting_arena_bytes", &[]),
            waiting: reg.gauge("airsched_station_waiting", &[]),
            channels_up: reg.gauge("airsched_station_channels_up", &[]),
            mode: reg.gauge("airsched_station_mode", &[]),
            wait_hist: reg.histogram("airsched_station_wait_slots", &[]),
            wait_max: 0,
            base_delivered: 0,
            base_wait: 0,
            miss_scratch: Vec::new(),
        }
    }

    /// Mirrors every stats-backed scalar series — all plain relaxed
    /// stores. Called at attach so the registry starts exactly on the
    /// station's lifetime stats; the per-tick path uses the narrower
    /// [`StationObs::sync_tick`].
    fn sync_full(&self, stats: &StationStats, channels_up: u64) {
        for (m, tally) in stats.per_mode.iter().enumerate() {
            self.delivered[m].store(tally.delivered);
            self.on_time[m].store(tally.on_time);
        }
        self.mode_changes.store(stats.mode_changes);
        self.plan_rejections.store(stats.plan_rejections);
        self.plan_warnings.store(stats.plan_warnings);
        self.solve_rejections.store(stats.solve_rejections);
        self.sync_tick(stats, 0, channels_up);
    }

    /// End-of-tick mirror: re-stores only the series a tick can move.
    /// Delivery tallies bump only the current mode's series, the rare
    /// counters (`mode_changes`, plan verdicts, health, replans, fault
    /// frames) are `inc`ed at their event sites, and everything else here
    /// is one relaxed store — so the registry equals the stats at every
    /// slot boundary without a single locked instruction in the tick.
    fn sync_tick(&self, stats: &StationStats, mode: usize, channels_up: u64) {
        self.slots.store(stats.slots_elapsed);
        let tally = &stats.per_mode[mode];
        self.delivered[mode].store(tally.delivered);
        self.on_time[mode].store(tally.on_time);
        self.deadline_miss.store(stats.delivered - stats.on_time);
        self.degraded_slots.store(stats.degraded_slots);
        self.waiting.set(stats.waiting);
        self.channels_up.set(channels_up);
        self.wait_hist.store_totals(
            stats.delivered - self.base_delivered,
            stats.total_wait - self.base_wait,
            self.wait_max,
        );
    }

    /// Mirrors the auxiliary single-writer series that live outside
    /// [`StationStats`]: the drain crossover tallies, waiting-set shard
    /// compactions, and arena footprint. Same relaxed-store discipline as
    /// [`StationObs::sync_tick`]; split out so the stats-only callers
    /// keep their signature.
    fn sync_aux(&self, crossover: (u64, u64), compactions: u64, arena_bytes: u64) {
        self.drain_ticks[0].store(crossover.0);
        self.drain_ticks[1].store(crossover.1);
        self.compactions.store(compactions);
        self.arena_bytes.set(arena_bytes);
    }

    /// Mirrors one health [`ChannelEvent`] into the counter and event
    /// streams. Called at the event's creation site, *before* any replan
    /// it triggers, so a postmortem always shows the cause ahead of the
    /// `ModeChange` it led to.
    fn record_channel_event(&self, event: &ChannelEvent) {
        let (channel, at, transition) = match *event {
            ChannelEvent::Down { channel, at } => (channel, at, HealthTransition::Down),
            ChannelEvent::Up { channel, at } => (channel, at, HealthTransition::Up),
            ChannelEvent::Degraded { channel, at, .. } => (channel, at, HealthTransition::Degraded),
            ChannelEvent::Healthy { channel, at } => (channel, at, HealthTransition::Healthy),
        };
        self.health_transitions[transition_index(transition)].inc();
        self.obs.record(ObsEvent::ChannelHealth {
            ch: channel.index(),
            slot: at,
            transition,
        });
    }
}

/// Intra-slot tracing state for one instrumented station.
///
/// Cost discipline mirrors [`StationObs`]: the SLO tracker runs every
/// tick (integer arithmetic plus a handful of relaxed stores), but the
/// clock is read and spans are built **only on sampled slots** — every
/// `sample_every`-th tick per [`airsched_trace::TraceConfig`]. An
/// unsampled tick takes one dormant branch per phase boundary and never
/// calls `Instant::now`.
#[derive(Debug, Clone)]
struct StationTrace {
    trace: Trace,
    /// Deadline-hit SLO over rolling windows; pushed every tick.
    slo: SloTracker,
    /// Boundary timestamps for the current sampled slot. Taken with
    /// `mem::take` at tick start so the borrow of `self` stays free;
    /// empty on unsampled ticks.
    marks: Vec<Instant>,
    /// Per-chunk drain times collected from the pool on sampled ticks.
    chunks: Vec<ChunkDrainTime>,
}

impl StationTrace {
    fn new(trace: &Trace) -> Self {
        Self {
            trace: trace.clone(),
            slo: SloTracker::new(trace.config().slo),
            marks: Vec::with_capacity(8),
            chunks: Vec::new(),
        }
    }
}

/// A live broadcast station.
///
/// # Examples
///
/// ```
/// use airsched_core::types::PageId;
/// use airsched_server::station::Station;
///
/// let mut station = Station::new(2, 8)?;
/// station.publish(PageId::new(0), 2)?;
/// station.publish(PageId::new(1), 4)?;
/// let client = station.subscribe(PageId::new(0))?;
///
/// // The page airs every 2 slots, so the client is served within 2 ticks.
/// let mut served = false;
/// for _ in 0..2 {
///     let tick = station.tick();
///     if tick.deliveries.iter().any(|d| d.client == client) {
///         served = true;
///         break;
///     }
/// }
/// assert!(served);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Station {
    scheduler: OnlineScheduler,
    time: u64,
    /// Waiting clients and the catalogue's dense expected-time mirror, in
    /// partitioned struct-of-arrays form (see the `waiting` module and
    /// DESIGN.md §12). Spans are emptied in place rather than freed, so
    /// steady-state ticking reuses their capacity.
    waits: WaitingSet,
    /// Shard workers `tick_into`'s drain phase fans out to; 1 = serial.
    /// Execution configuration, not serving state: never snapshotted,
    /// and the output stream is bit-identical at every setting.
    parallelism: u32,
    /// Persistent parked workers backing `parallelism >= 2`; `None`
    /// while serial. Clones of a parallel station share the pool (its
    /// submit lock serializes their drains). Execution configuration
    /// like `parallelism`: never snapshotted.
    pool: Option<Arc<DrainPool>>,
    /// When set, each tick estimates its drain work and takes the
    /// serial path below `par_threshold` instead of paying the pool
    /// handoff.
    par_auto: bool,
    /// Minimum [`WaitingSet::pending_for`] estimate that justifies the
    /// pool handoff under `par_auto`.
    par_threshold: u64,
    /// `(pooled, serial)` tick counts under the crossover. Diagnostics
    /// only — deliberately outside [`StationStats`], which the
    /// bit-identity gates compare across parallelism settings.
    crossover: (u64, u64),
    /// Bumped whenever the effective on-air grid may change (publish,
    /// expire, any ladder re-evaluation); frame-template caches key
    /// their validity on it. Not snapshotted: a restored station
    /// restarts at 0 with a fresh [`crate::SlotBroadcaster`].
    plan_epoch: u64,
    /// Reusable request buffer for the parallel drain path.
    drain_reqs: Vec<DrainReq>,
    next_client: u64,
    stats: StationStats,
    /// Physical channel up/down state; length is the configured count.
    channel_up: Vec<bool>,
    injector: Option<FaultInjector>,
    health: HealthMonitor,
    policy: DegradationPolicy,
    mode: Mode,
    active: ActivePlan,
    /// Events produced outside `tick` (manual fail/restore), surfaced on
    /// the next tick.
    pending_events: Vec<ChannelEvent>,
    /// Chaos hook: mutates replan candidates before the lint gate.
    corruptor: Option<PlanCorruptor>,
    /// When on, every re-pack candidate is additionally certified by the
    /// difference-constraint solver (see the pre-swap gate docs above).
    /// Execution configuration like `parallelism`: never snapshotted.
    deep_verify: bool,
    /// Optional observability wiring; `None` keeps the exact
    /// uninstrumented behavior.
    obs: Option<StationObs>,
    /// Optional intra-slot tracing wiring; `None` skips even the dormant
    /// phase-boundary branches. Execution configuration like
    /// `parallelism`: never snapshotted.
    trace: Option<StationTrace>,
}

impl Station {
    /// Creates a station with `channels` transmitters and a `cycle`-slot
    /// schedule (the largest expected time it will accept).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] for a zero channel count or cycle.
    pub fn new(channels: u32, cycle: u64) -> Result<Self, StationError> {
        Ok(Self {
            scheduler: OnlineScheduler::new(channels, cycle)?,
            time: 0,
            waits: WaitingSet::new(),
            parallelism: 1,
            pool: None,
            par_auto: false,
            par_threshold: Self::AUTO_DRAIN_THRESHOLD,
            crossover: (0, 0),
            plan_epoch: 0,
            drain_reqs: Vec::new(),
            next_client: 0,
            stats: StationStats::default(),
            channel_up: vec![true; channels as usize],
            injector: None,
            health: HealthMonitor::new(channels, HealthThresholds::default()),
            policy: DegradationPolicy::default(),
            mode: Mode::Valid,
            active: ActivePlan::Full,
            pending_events: Vec::new(),
            corruptor: None,
            deep_verify: false,
            obs: None,
            trace: None,
        })
    }

    /// Attaches an observability handle: the station registers its metric
    /// series on `obs`'s registry and starts feeding the flight recorder.
    /// The serving-path series are single-writer mirrors of
    /// [`StationStats`], synced at attach and at every slot boundary, so
    /// they reflect the station's lifetime stats; the wait histogram
    /// buckets deliveries made from attach onward. Entering
    /// [`Mode::BestEffort`] or [`Mode::Offline`] from now on captures a
    /// black-box postmortem on the handle.
    ///
    /// The station must be the series' only writer: attach each station
    /// (and each clone of an instrumented station — clones share the
    /// handle) to its own `Obs`, or their absolute stores will clobber
    /// one another. The retained seed path [`Station::tick_reference`]
    /// stays uninstrumented by design.
    pub fn attach_obs(&mut self, obs: &Obs) {
        let mut wired = StationObs::new(obs);
        wired.base_delivered = self.stats.delivered;
        wired.base_wait = self.stats.total_wait;
        wired.mode.set(self.mode.index() as u64);
        wired.sync_full(&self.stats, u64::from(self.channels_up()));
        wired.sync_aux(
            self.crossover,
            self.waits.compactions(),
            self.waits.arena_bytes(),
        );
        self.obs = Some(wired);
    }

    /// The attached observability handle, if any.
    #[must_use]
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref().map(|o| &o.obs)
    }

    /// Attaches an intra-slot tracing handle: the station starts pushing
    /// its deadline-hit ratio into the SLO tracker every tick and, on
    /// sampled slots (every `sample_every`-th per the trace's config),
    /// captures a full span tree of the tick pipeline into the handle's
    /// ring. Unsampled ticks never read the clock; see the crate docs of
    /// [`airsched_trace`] for the full cost model.
    ///
    /// When both a trace and an [`Obs`] handle are attached, a fired SLO
    /// burn-rate alert additionally records an
    /// [`ObsEvent::SloBurn`](airsched_obs::events::Event::SloBurn) and
    /// captures a postmortem on the obs handle.
    ///
    /// Like [`Station::attach_obs`], the station must be the handle's
    /// only writer, and [`Station::tick_reference`] stays uninstrumented.
    pub fn attach_trace(&mut self, trace: &Trace) {
        self.trace = Some(StationTrace::new(trace));
    }

    /// The attached tracing handle, if any.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref().map(|t| &t.trace)
    }

    /// Creates a station with a [`FaultPlan`] attached: every tick first
    /// asks the plan's injector what broke this slot.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] for a zero channel count or cycle.
    pub fn with_faults(channels: u32, cycle: u64, plan: &FaultPlan) -> Result<Self, StationError> {
        let mut station = Self::new(channels, cycle)?;
        station.set_fault_plan(plan);
        Ok(station)
    }

    /// Attaches (or replaces) the fault plan mid-run. The injector starts
    /// from the station's *current* channel state.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        let channels = u32::try_from(self.channel_up.len()).expect("channel count fits in u32");
        let mut injector = FaultInjector::new(plan, channels);
        for (ch, &up) in self.channel_up.iter().enumerate() {
            if !up {
                injector.force_down(ChannelId::new(u32::try_from(ch).expect("fits in u32")));
            }
        }
        self.injector = Some(injector);
    }

    /// Replaces the health thresholds, resetting all health windows.
    pub fn set_health_thresholds(&mut self, thresholds: HealthThresholds) {
        let channels = u32::try_from(self.channel_up.len()).expect("channel count fits in u32");
        self.health = HealthMonitor::new(channels, thresholds);
    }

    /// Replaces the degradation policy and immediately re-evaluates the
    /// ladder under it.
    pub fn set_degradation_policy(&mut self, policy: DegradationPolicy) {
        self.policy = policy;
        self.refresh_plan("policy");
    }

    /// The active degradation policy.
    #[must_use]
    pub fn degradation_policy(&self) -> DegradationPolicy {
        self.policy
    }

    /// The current slot clock.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Live statistics.
    #[must_use]
    pub fn stats(&self) -> StationStats {
        self.stats
    }

    /// The current degradation-ladder mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The per-channel health monitor.
    #[must_use]
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// How many channels are currently up.
    #[must_use]
    pub fn channels_up(&self) -> u32 {
        u32::try_from(self.channel_up.iter().filter(|&&u| u).count()).expect("fits in u32")
    }

    /// Whether `channel` is currently up (out-of-range channels are not).
    #[must_use]
    pub fn is_channel_up(&self, channel: ChannelId) -> bool {
        self.channel_up
            .get(channel.index() as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The current catalogue: page → expected time.
    #[must_use]
    pub fn catalogue(&self) -> &BTreeMap<PageId, u64> {
        self.scheduler.pages()
    }

    /// Manually fails a channel (e.g. an operator pulling a transmitter),
    /// re-evaluating the degradation ladder. Returns the resulting mode.
    /// A no-op for channels already down or out of range.
    pub fn fail_channel(&mut self, channel: ChannelId) -> Mode {
        let ch = channel.index() as usize;
        if ch < self.channel_up.len() && self.channel_up[ch] {
            self.channel_up[ch] = false;
            if let Some(injector) = &mut self.injector {
                injector.force_down(channel);
            }
            let event = ChannelEvent::Down {
                channel,
                at: self.time,
            };
            if let Some(o) = &self.obs {
                o.record_channel_event(&event);
            }
            self.pending_events.push(event);
            self.refresh_plan("channel_down");
        }
        self.mode
    }

    /// Manually restores a channel, climbing back up the ladder. Returns
    /// the resulting mode. A no-op for channels already up or out of
    /// range.
    pub fn restore_channel(&mut self, channel: ChannelId) -> Mode {
        let ch = channel.index() as usize;
        if ch < self.channel_up.len() && !self.channel_up[ch] {
            self.channel_up[ch] = true;
            if let Some(injector) = &mut self.injector {
                injector.force_up(channel);
            }
            self.health.reset(channel);
            let event = ChannelEvent::Up {
                channel,
                at: self.time,
            };
            if let Some(o) = &self.obs {
                o.record_channel_event(&event);
            }
            self.pending_events.push(event);
            self.refresh_plan("channel_up");
        }
        self.mode
    }

    /// Publishes a page with an expected time, compacting the schedule if
    /// fragmentation blocks direct admission.
    ///
    /// Admission is always judged against the *configured* channel count:
    /// a degraded station keeps accepting everything it could accept
    /// healthy, and the degraded plan is re-derived to include the new
    /// page.
    ///
    /// # Errors
    ///
    /// * [`StationError::CapacityExhausted`] if it does not fit even after
    ///   compaction.
    /// * [`StationError::Schedule`] for malformed inputs (zero or
    ///   non-dividing expected time, duplicate page id).
    pub fn publish(&mut self, page: PageId, expected: u64) -> Result<(), StationError> {
        let result = match self.scheduler.add_page(page, expected) {
            Ok(()) => Ok(()),
            Err(ScheduleError::PlacementFailed { .. }) => self
                .scheduler
                .rebuild_with(&[(page, expected)])
                .map_err(|_| StationError::CapacityExhausted { page }),
            Err(e) => Err(e.into()),
        };
        if result.is_ok() {
            // Pre-sizes the page's waiting span too, so steady-state
            // subscribes hit no resize branch at all.
            self.waits.publish(page.index() as usize, expected);
            // The full program changed even when no ladder move follows.
            self.plan_epoch += 1;
            if !matches!(self.active, ActivePlan::Full) {
                self.refresh_plan("catalogue");
            }
        }
        result
    }

    /// Removes a page from the catalogue. Clients still waiting for it
    /// keep waiting and will only be served if it is re-published.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownPage`] if the page is not live.
    pub fn expire(&mut self, page: PageId) -> Result<(), StationError> {
        self.scheduler
            .remove_page(page)
            .map_err(|_| StationError::UnknownPage { page })?;
        self.waits.expire(page.index() as usize);
        self.plan_epoch += 1;
        if !matches!(self.active, ActivePlan::Full) {
            self.refresh_plan("catalogue");
        }
        Ok(())
    }

    /// Registers a client waiting for `page` from the current instant.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownPage`] for a page not in the
    /// catalogue (a real frontend would route such clients to the
    /// on-demand channel).
    #[inline]
    pub fn subscribe(&mut self, page: PageId) -> Result<ClientId, StationError> {
        let idx = page.index() as usize;
        if !self.waits.subscribe(idx, self.next_client, self.time) {
            return Err(StationError::UnknownPage { page });
        }
        let id = ClientId(self.next_client);
        self.next_client += 1;
        self.stats.waiting += 1;
        Ok(id)
    }

    /// Default [`Station::parallelism_auto`] crossover: ticks whose
    /// estimated drain work (the waiting-entry count on the pages
    /// actually draining) is below this many entries drain serially
    /// instead of paying the pool handoff.
    pub const AUTO_DRAIN_THRESHOLD: u64 = 4096;

    /// Sets how many threads the drain phase of [`Station::tick_into`]
    /// fans out to. `k = 1` (the default) drains serially on the calling
    /// thread and tears down any worker pool; `2 ≤ k ≤ 16` builds a
    /// persistent pool of `k - 1` condvar-parked workers (the calling
    /// thread is the `k`th), reused every tick — the thread cost is paid
    /// here, once, not per slot. Values are clamped to that range, and
    /// re-setting the same `k` keeps the existing pool.
    ///
    /// The produced [`TickOutcome`] stream, every statistic, and every
    /// subsequent [`Station::snapshot`] are **bit-identical** for every
    /// setting — `k` trades latency for cores, never behavior — and the
    /// setting itself is execution configuration: it is not captured in
    /// snapshots, and a restored station starts back at 1.
    pub fn parallelism(&mut self, k: u32) -> &mut Self {
        let k = k.clamp(1, SHARD_COUNT as u32);
        self.parallelism = k;
        self.par_auto = false;
        if k >= 2 {
            let rebuild = match &self.pool {
                Some(pool) => pool.k() != k as usize,
                None => true,
            };
            if rebuild {
                self.pool = Some(Arc::new(DrainPool::new(k as usize)));
            }
        } else {
            self.pool = None;
        }
        self
    }

    /// Like [`Station::parallelism`], but with a per-tick crossover:
    /// each tick estimates its drain work (the waiting-entry count on
    /// the pages draining) and only routes through the pool when the
    /// estimate reaches `threshold` waiting entries — below it the
    /// tick drains serially on the calling thread, so small-backlog
    /// stations never pay the handoff that made every fixed `--par > 1`
    /// setting a regression at small scale. The output stream is
    /// bit-identical either way; [`Station::drain_crossover`] reports
    /// which side each tick took. `k = 1` disables both the pool and the
    /// crossover.
    pub fn parallelism_auto(&mut self, k: u32, threshold: u64) -> &mut Self {
        self.parallelism(k);
        if self.parallelism >= 2 {
            self.par_auto = true;
            self.par_threshold = threshold;
        }
        self
    }

    /// `(pooled, serial)` tick counts since the last parallelism change:
    /// how many ticks routed the drain through the pool vs. stayed
    /// serial (under [`Station::parallelism_auto`]'s crossover, or
    /// `k = 1`). Diagnostics only — deliberately outside
    /// [`StationStats`] so stats stay comparable across parallelism
    /// settings.
    #[must_use]
    pub fn drain_crossover(&self) -> (u64, u64) {
        self.crossover
    }

    /// A counter that moves whenever the effective on-air grid may have
    /// changed: publish, expire, manual fail/restore, a policy change,
    /// or any in-tick ladder re-evaluation. [`crate::SlotBroadcaster`]
    /// compares it against the epoch its frame-template cache was built
    /// at and rebuilds on mismatch. Not snapshotted — a restored station
    /// restarts at 0, so bind a fresh broadcaster to each station
    /// instance.
    #[must_use]
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch
    }

    /// Materializes the effective on-air grid: for every physical
    /// channel and every slot-in-cycle column, the page a tick at that
    /// column would put on the air (before per-slot stalls, which idle a
    /// carrier without changing the plan). Down channels are all-`None`
    /// rows, and the reduced rungs' logical rows fill the live channels
    /// in ascending physical order — exactly the mapping
    /// [`Station::tick_into`] applies. This is the input a frame-template
    /// cache is built from; it is stale as soon as
    /// [`Station::plan_epoch`] moves.
    #[must_use]
    pub fn plan_cells(&self) -> PlanCells {
        let configured = self.channel_up.len();
        let channels = u32::try_from(configured).expect("channel count fits in u32");
        match &self.active {
            ActivePlan::Full => {
                let program = self.scheduler.program();
                let cycle_len = program.cycle_len();
                let cols = usize::try_from(cycle_len).expect("cycle fits in usize");
                let mut cells = Vec::with_capacity(configured * cols);
                for (ch, &up) in self.channel_up.iter().enumerate() {
                    let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
                    for col in 0..cycle_len {
                        cells.push(if up {
                            program.page_at(GridPos::new(channel, SlotIndex::new(col)))
                        } else {
                            None
                        });
                    }
                }
                PlanCells {
                    channels,
                    cycle_len,
                    cells,
                }
            }
            ActivePlan::Reduced(program) | ActivePlan::BestEffort(program) => {
                let cycle_len = program.cycle_len();
                let cols = usize::try_from(cycle_len).expect("cycle fits in usize");
                let mut cells = Vec::with_capacity(configured * cols);
                let mut row = 0u32;
                for &up in &self.channel_up {
                    if up && row < program.channels() {
                        for col in 0..cycle_len {
                            cells.push(
                                program.page_at(GridPos::new(
                                    ChannelId::new(row),
                                    SlotIndex::new(col),
                                )),
                            );
                        }
                        row += 1;
                    } else {
                        cells.extend(std::iter::repeat_n(None, cols));
                    }
                }
                PlanCells {
                    channels,
                    cycle_len,
                    cells,
                }
            }
            ActivePlan::Offline => PlanCells {
                channels,
                cycle_len: 1,
                cells: vec![None; configured],
            },
        }
    }

    /// Installs (or removes) the plan-corruptor chaos hook: every replan
    /// candidate passes through it *before* the pre-swap lint gate, so
    /// tests can prove the gate catches a corrupted replan pipeline.
    pub fn set_plan_corruptor(&mut self, corruptor: Option<PlanCorruptor>) {
        self.corruptor = corruptor;
    }

    /// Switches the deep-verify mode of the pre-swap gate: when on, every
    /// re-pack candidate is also handed to the difference-constraint
    /// oracle ([`airsched_solve::check_observed`]), which re-derives the
    /// deadline semantics from first principles and, on refusal, carries
    /// a machine-checkable infeasibility certificate. The solver runs
    /// *alongside* the lint gate (not only after it passes), so
    /// [`StationStats::solve_rejections`] versus
    /// [`StationStats::plan_rejections`] exposes any divergence between
    /// the two verdicts — by construction there should be none. A refusal
    /// by either blocks the swap. Off by default: the lint gate alone is
    /// the production configuration; deep-verify is the
    /// belt-and-suspenders mode for certification runs.
    pub fn set_deep_verify(&mut self, on: bool) {
        self.deep_verify = on;
    }

    /// Whether the deep-verify solver gate is on.
    #[must_use]
    pub fn deep_verify(&self) -> bool {
        self.deep_verify
    }

    /// The deep-verify half of the pre-swap gate: asks the solver for a
    /// feasibility verdict on `candidate` against the live catalogue.
    fn certify_candidate(&mut self, candidate: &BroadcastProgram) -> bool {
        let deadlines: Vec<(PageId, u64)> = self
            .scheduler
            .pages()
            .iter()
            .map(|(&p, &t)| (p, t))
            .collect();
        // The solver's wall time rides the same `ReplanTiming` channel as
        // the repack/pamad stages (clocked only when instrumented).
        let started = self.obs.as_ref().map(|_| Instant::now());
        let verdict = airsched_solve::check_observed(candidate, &deadlines);
        self.record_replan(STAGE_SOLVE, deadlines.len() as u64, started);
        match verdict {
            airsched_solve::Verdict::Feasible(_) => true,
            airsched_solve::Verdict::Infeasible(_) => {
                self.stats.solve_rejections += 1;
                if let Some(o) = &self.obs {
                    o.solve_rejections.inc();
                    // The refusal event names the solver's rule code so a
                    // postmortem distinguishes it from lint refusals.
                    o.obs.record(ObsEvent::PlanRejected {
                        slot: self.time,
                        rule_ids: vec![airsched_solve::render::RULE.to_string()],
                    });
                }
                false
            }
        }
    }

    /// Lints `candidate` against the live catalogue exactly as the
    /// pre-swap gate does, without installing anything — the
    /// operator-facing dry run. The gate itself uses
    /// [`LintConfig::default`] for re-pack candidates (which claim full
    /// validity) and [`LintConfig::structural`] for best-effort
    /// candidates (whose deadline misses are the accepted cost of the
    /// rung).
    #[must_use]
    pub fn propose_plan(&self, candidate: &BroadcastProgram, config: &LintConfig) -> LintReport {
        let catalogue: Vec<(PageId, u64)> = self
            .scheduler
            .pages()
            .iter()
            .map(|(&p, &t)| (p, t))
            .collect();
        lint(&LintInput::for_catalogue(candidate, &catalogue), config)
    }

    /// The pre-swap gate: accepts or refuses one replan candidate,
    /// recording the verdict in [`StationStats`].
    fn gate_candidate(&mut self, candidate: &BroadcastProgram, config: &LintConfig) -> bool {
        let report = self.propose_plan(candidate, config);
        let warnings = report.count_at(Severity::Warn) as u64;
        self.stats.plan_warnings += warnings;
        if let Some(o) = &self.obs {
            o.plan_warnings.add(warnings);
        }
        if report.has_deny() {
            self.stats.plan_rejections += 1;
            if let Some(o) = &self.obs {
                o.plan_rejections.inc();
                // The refusal event carries the deny-level rule codes so a
                // postmortem shows *why* the swap was blocked.
                let mut rule_ids: Vec<String> = Vec::new();
                for d in report.diagnostics() {
                    if d.severity == Severity::Deny {
                        let code = d.rule.code().to_string();
                        if !rule_ids.contains(&code) {
                            rule_ids.push(code);
                        }
                    }
                }
                o.obs.record(ObsEvent::PlanRejected {
                    slot: self.time,
                    rule_ids,
                });
            }
            return false;
        }
        true
    }

    /// Records one replan stage's cost: counters in the registry, a
    /// `ReplanTiming` event (the only event with a wall-clock field, and
    /// the only place wall-clock appears at all) in the recorder. A no-op
    /// when uninstrumented.
    fn record_replan(&self, stage: usize, evals: u64, started: Option<Instant>) {
        if let Some(o) = &self.obs {
            o.replan_runs[stage].inc();
            o.replan_evals[stage].add(evals);
            let duration_us = started.map_or(0, |t| {
                u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
            });
            o.obs.record(ObsEvent::ReplanTiming {
                stage: STAGE_NAMES[stage].to_string(),
                slot: self.time,
                evals,
                pruned: 0,
                duration_us,
            });
        }
    }

    /// Applies the chaos corruptor (if any) to a replan candidate.
    fn maybe_corrupt(&self, candidate: BroadcastProgram) -> BroadcastProgram {
        match self.corruptor {
            Some(corrupt) => corrupt(&candidate),
            None => candidate,
        }
    }

    /// Re-derives the on-air plan and ladder mode from the current
    /// channel state, catalogue and policy. When the lint gate refuses
    /// every replan candidate, the previous plan (and mode) stay in
    /// force — a vetted stale program beats a fresh corrupt one.
    ///
    /// `cause` names what triggered the re-evaluation (`"channel_down"`,
    /// `"channel_up"`, `"fault"`, `"catalogue"`, `"policy"`); it is
    /// carried on the `ModeChange` flight-recorder event.
    fn refresh_plan(&mut self, cause: &'static str) {
        // Even a refused swap can follow a channel_up change, which moves
        // the logical-row → physical-channel mapping: any re-evaluation
        // invalidates cached frame templates. Spurious bumps cost one
        // rebuild, never correctness.
        self.plan_epoch += 1;
        let configured = u32::try_from(self.channel_up.len()).expect("channel count fits in u32");
        let n_up = self.channels_up();
        let decision = if n_up == 0 {
            Some((ActivePlan::Offline, Mode::Offline))
        } else if n_up == configured {
            Some((ActivePlan::Full, Mode::Valid))
        } else {
            self.reduced_plan(n_up)
        };
        let Some((active, mode)) = decision else {
            return;
        };
        self.active = active;
        if mode != self.mode {
            match mode {
                Mode::BestEffort => self.stats.failovers += 1,
                Mode::Repacked => self.stats.repacks += 1,
                Mode::Valid => self.stats.recoveries += 1,
                Mode::Offline => {}
            }
            self.stats.mode_changes += 1;
            self.stats.last_mode_change_slot = Some(self.time);
            let from = self.mode;
            self.mode = mode;
            if let Some(o) = &self.obs {
                o.mode_changes.inc();
                o.mode.set(mode.index() as u64);
                o.obs.record(ObsEvent::ModeChange {
                    from: from.name().to_string(),
                    to: mode.name().to_string(),
                    slot: self.time,
                    cause: cause.to_string(),
                });
                // Dropping onto a non-valid rung is the black-box moment:
                // capture the recent history (the causal ChannelHealth /
                // PlanRejected events precede the ModeChange just
                // recorded).
                if matches!(mode, Mode::BestEffort | Mode::Offline) {
                    let _ = o.obs.capture_postmortem(self.time, mode.name());
                }
            }
        }
    }

    /// The ladder decision for `0 < n_up < configured` survivors: a SUSC
    /// re-pack while the survivors meet the catalogue's Theorem 3.1
    /// minimum, PAMAD best-effort below it. Every candidate passes the
    /// pre-swap lint gate; `None` means a candidate existed but was
    /// refused, so the caller must keep the previous plan on the air.
    fn reduced_plan(&mut self, n_up: u32) -> Option<(ActivePlan, Mode)> {
        let times: Vec<u64> = self.scheduler.pages().values().copied().collect();
        // An overflowing demand fraction cannot possibly be met by any
        // physical channel count; treat it as insufficient.
        let minimum = minimum_channels_for_times(&times).unwrap_or(u32::MAX);
        let mut refused = false;
        if self.policy.repack && n_up >= minimum {
            // The Instant exists only when instrumented: wall-clock stays
            // out of the uninstrumented path (and out of the registry, so
            // metric exposition remains deterministic either way).
            let started = self.obs.as_ref().map(|_| Instant::now());
            let mut probe = self.scheduler.clone();
            if probe.rebuild_on_channels(n_up).is_ok() {
                let candidate = self.maybe_corrupt(probe.program().clone());
                // SUSC places each page once: the sweep size is the
                // catalogue.
                self.record_replan(STAGE_REPACK, times.len() as u64, started);
                // A re-pack claims full validity, so it must survive the
                // complete deadline rule set — and, under deep-verify,
                // the solver's independent certification as well. Both
                // checks always run so their verdicts can be compared.
                let lint_ok = self.gate_candidate(&candidate, &LintConfig::default());
                let solve_ok = !self.deep_verify || self.certify_candidate(&candidate);
                if lint_ok && solve_ok {
                    return Some((ActivePlan::Reduced(candidate), Mode::Repacked));
                }
                refused = true;
            }
            // Sufficient in principle but the packer could not place this
            // particular catalogue (non-harmonic times); fall through.
        }
        if self.policy.best_effort {
            let started = self.obs.as_ref().map(|_| Instant::now());
            let catalogue: Vec<(PageId, u64)> = self
                .scheduler
                .pages()
                .iter()
                .map(|(&p, &t)| (p, t))
                .collect();
            if let Ok(plan) = degrade::replan(&catalogue, n_up) {
                let evals = plan.stage_evaluations();
                let candidate = self.maybe_corrupt(plan.into_program());
                self.record_replan(STAGE_PAMAD, evals, started);
                // Best-effort misses deadlines by design; hold it to the
                // structural rules only.
                if self.gate_candidate(&candidate, &LintConfig::structural()) {
                    return Some((ActivePlan::BestEffort(candidate), Mode::BestEffort));
                }
                refused = true;
            }
        }
        if refused {
            None
        } else {
            Some((ActivePlan::Offline, Mode::Offline))
        }
    }

    /// Transmits one slot: the fault injector (if any) is consulted,
    /// every live channel sends its scheduled page, waiting clients whose
    /// page aired intact are served, and the clock advances.
    ///
    /// A thin wrapper over [`Station::tick_into`]; loops that tick many
    /// slots should hold one [`TickBuf`] and call `tick_into` directly to
    /// skip the per-slot allocations.
    pub fn tick(&mut self) -> TickOutcome {
        let mut buf = TickBuf::default();
        self.tick_into(&mut buf);
        buf.into_outcome()
    }

    /// Allocation-free sibling of [`Station::tick`]: transmits one slot
    /// into `buf`, reusing every buffer it holds. In steady state (no
    /// ladder transition, no health event, no subscription burst growing a
    /// buffer past its high-water mark) this path performs no heap
    /// allocation at all.
    pub fn tick_into(&mut self, buf: &mut TickBuf) {
        buf.events.clear();
        buf.events.append(&mut self.pending_events);
        buf.deliveries.clear();
        let configured = self.channel_up.len();

        // Intra-slot tracing: `trace_epoch` is `Some` only on sampled
        // slots, and only then do the boundary marks below read the
        // clock — an unsampled tick pays one dormant branch per
        // boundary. The scratch vectors are taken out of the tracer so
        // the rest of the tick can borrow `self` freely; they are handed
        // back (capacity intact) when the tree is committed.
        let mut trace_marks = Vec::new();
        let mut trace_chunks = Vec::new();
        let trace_epoch = match &mut self.trace {
            Some(t) if t.trace.sample_due(self.time) => {
                trace_marks = std::mem::take(&mut t.marks);
                trace_chunks = std::mem::take(&mut t.chunks);
                trace_marks.clear();
                trace_chunks.clear();
                trace_marks.push(Instant::now());
                Some(t.trace.epoch())
            }
            _ => None,
        };

        buf.have_faults = false;
        if let Some(injector) = self.injector.as_mut() {
            injector.sample_into(self.time, &mut buf.faults);
            buf.have_faults = true;
            let mut changed = false;
            for &channel in &buf.faults.went_down {
                let ch = channel.index() as usize;
                if ch < configured && self.channel_up[ch] {
                    self.channel_up[ch] = false;
                    let event = ChannelEvent::Down {
                        channel,
                        at: self.time,
                    };
                    if let Some(o) = &self.obs {
                        o.record_channel_event(&event);
                    }
                    buf.events.push(event);
                    changed = true;
                }
            }
            for &channel in &buf.faults.came_up {
                let ch = channel.index() as usize;
                if ch < configured && !self.channel_up[ch] {
                    self.channel_up[ch] = true;
                    self.health.reset(channel);
                    let event = ChannelEvent::Up {
                        channel,
                        at: self.time,
                    };
                    if let Some(o) = &self.obs {
                        o.record_channel_event(&event);
                    }
                    buf.events.push(event);
                    changed = true;
                }
            }
            if changed {
                self.refresh_plan("fault");
            }
        }
        if trace_epoch.is_some() {
            trace_marks.push(Instant::now()); // faults end
        }

        // One column of the active plan, mapped onto physical channels
        // (the reduced plans' logical rows fill the live channels in
        // ascending physical order).
        buf.on_air.clear();
        buf.on_air.resize(configured, None);
        match &self.active {
            ActivePlan::Full => {
                let program = self.scheduler.program();
                let column = self.time % program.cycle_len();
                for (ch, slot) in buf.on_air.iter_mut().enumerate() {
                    if self.channel_up[ch] {
                        let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
                        *slot = program.page_at(GridPos::new(channel, SlotIndex::new(column)));
                    }
                }
            }
            ActivePlan::Reduced(program) | ActivePlan::BestEffort(program) => {
                let column = self.time % program.cycle_len();
                let mut row = 0u32;
                for (ch, slot) in buf.on_air.iter_mut().enumerate() {
                    if self.channel_up[ch] && row < program.channels() {
                        *slot = program
                            .page_at(GridPos::new(ChannelId::new(row), SlotIndex::new(column)));
                        row += 1;
                    }
                }
            }
            ActivePlan::Offline => {}
        }

        // Apply stalls and corruption, feeding the health monitor one
        // observation per attempted transmission. Without an injector no
        // channel can stall or corrupt, so the flags are never consulted.
        buf.corrupted.clear();
        buf.corrupted.resize(configured, false);
        for ch in 0..configured {
            if !self.channel_up[ch] {
                continue;
            }
            let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
            if buf.have_faults && buf.faults.stalled[ch] {
                if buf.on_air[ch].take().is_some() {
                    if let Some(o) = &self.obs {
                        o.stalled_frames.inc();
                    }
                    if let Some(e) =
                        self.health
                            .record(channel, SlotObservation::Stalled, self.time)
                    {
                        if let Some(o) = &self.obs {
                            o.record_channel_event(&e);
                        }
                        buf.events.push(e);
                    }
                }
            } else if buf.on_air[ch].is_some() {
                let observation = if buf.have_faults && buf.faults.corrupted[ch] {
                    buf.corrupted[ch] = true;
                    if let Some(o) = &self.obs {
                        o.corrupt_frames.inc();
                    }
                    SlotObservation::Corrupt
                } else {
                    SlotObservation::Clean
                };
                if let Some(e) = self.health.record(channel, observation, self.time) {
                    if let Some(o) = &self.obs {
                        o.record_channel_event(&e);
                    }
                    buf.events.push(e);
                }
            }
        }
        if trace_epoch.is_some() {
            trace_marks.push(Instant::now()); // air end
        }

        // Serve waiters from intact frames only; a corrupted frame shows
        // in `on_air` but delivers nothing. The drain kernel batches the
        // deadline verdict and wait sums over each page's contiguous
        // (client, since) columns and reports one `DrainDelta` per page
        // instead of six stat read-modify-writes per waiter; spans are
        // emptied in place so their capacity is reused.
        let delta = if self.parallelism >= 2 {
            // Pooled drain: requests in ascending channel order, results
            // merged back in that same order — bit-identical to serial.
            // The request buffer is owned by the station so steady-state
            // ticks reuse its capacity.
            self.drain_reqs.clear();
            for ch in 0..configured {
                if buf.corrupted[ch] {
                    continue;
                }
                if let Some(page) = buf.on_air[ch] {
                    self.drain_reqs.push(DrainReq {
                        page,
                        idx: page.index() as usize,
                    });
                }
            }
            let pooled =
                !self.par_auto || self.waits.pending_for(&self.drain_reqs) >= self.par_threshold;
            if pooled {
                self.crossover.0 += 1;
                let pool = self.pool.clone().expect("parallelism >= 2 keeps a pool");
                let times = trace_epoch.map(|epoch| (epoch, &mut trace_chunks));
                self.waits.drain_pooled(
                    &mut self.drain_reqs,
                    self.time,
                    &pool,
                    &mut buf.deliveries,
                    times,
                )
            } else {
                // Below the crossover the handoff would cost more than it
                // buys: drain the same requests serially, in the same
                // order — the two sides are bit-identical by the pooled
                // lockstep tests.
                self.crossover.1 += 1;
                let mut delta = DrainDelta::default();
                for req in &self.drain_reqs {
                    delta.merge(self.waits.drain_page(
                        req.idx,
                        req.page,
                        self.time,
                        &mut buf.deliveries,
                    ));
                }
                delta
            }
        } else {
            let mut delta = DrainDelta::default();
            for ch in 0..configured {
                if buf.corrupted[ch] {
                    continue;
                }
                let Some(page) = buf.on_air[ch] else { continue };
                delta.merge(self.waits.drain_page(
                    page.index() as usize,
                    page,
                    self.time,
                    &mut buf.deliveries,
                ));
            }
            delta
        };
        if trace_epoch.is_some() {
            trace_marks.push(Instant::now()); // drain end
        }
        self.stats.delivered += delta.delivered;
        self.stats.on_time += delta.on_time;
        self.stats.total_wait = self.stats.total_wait.wrapping_add(delta.total_wait);
        self.stats.waiting -= delta.delivered;
        let tally = &mut self.stats.per_mode[self.mode.index()];
        tally.delivered += delta.delivered;
        tally.on_time += delta.on_time;
        // The SLO tracker runs every tick — integer window arithmetic
        // plus a handful of relaxed mirror stores, no clock reads. A
        // fired burn-rate alert is edge-triggered; with an obs handle
        // attached it lands in the flight recorder and snapshots a
        // postmortem so the minutes before the burn are preserved.
        if let Some(t) = self.trace.as_mut() {
            let alert = t.slo.push(delta.delivered, delta.on_time);
            // The dashboard reads at human cadence, so the mirror only
            // refreshes every 8th slot (and instantly on an alert);
            // readers between refreshes see values at most 7 slots old.
            if alert.is_some() || t.slo.slots().is_multiple_of(8) {
                t.trace.mirror_slo(&t.slo);
            }
            if let Some(a) = alert {
                if let Some(o) = self.obs.as_mut() {
                    o.obs.record(ObsEvent::SloBurn {
                        slot: self.time,
                        fast_burn_milli: a.fast_burn_milli,
                        slow_burn_milli: a.slow_burn_milli,
                        hit_milli: a.hit_milli,
                        threshold_milli: a.threshold_milli,
                    });
                    let _ = o.obs.capture_postmortem(self.time, "slo_burn");
                }
            }
        }
        // With observability attached, walk the slot's deliveries in the
        // exact order they were produced: each adds one histogram-bucket
        // bump (a relaxed load + store, no locked instruction), a plain
        // compare for the running max, and — on a miss of a live page —
        // a DeadlineMiss event staged for the end-of-tick batch.
        if let Some(o) = self.obs.as_mut() {
            for d in &buf.deliveries {
                o.wait_hist.observe_bucket(d.wait);
                if d.wait > o.wait_max {
                    o.wait_max = d.wait;
                }
                if !d.within_deadline {
                    let expected = self.waits.deadline(d.page.index() as usize);
                    if expected != 0 {
                        o.miss_scratch.push(ObsEvent::DeadlineMiss {
                            page: d.page.index(),
                            slot: self.time,
                            wait: d.wait,
                            expected,
                        });
                    }
                }
            }
        }
        if trace_epoch.is_some() {
            trace_marks.push(Instant::now()); // deadline end
        }

        if self.mode != Mode::Valid {
            self.stats.degraded_slots += 1;
        }

        buf.time = self.time;
        buf.mode = self.mode;
        self.time += 1;
        self.stats.slots_elapsed += 1;
        // Per-delivery bucket bumps happened inline above; the tail only
        // flushes the slot's deadline-miss events (one recorder lock for
        // the whole batch, none when it is empty) and mirrors the
        // stats-backed series — plain relaxed stores only.
        if let Some(o) = self.obs.as_mut() {
            o.obs.record_batch(&mut o.miss_scratch);
            o.sync_tick(
                &self.stats,
                self.mode.index(),
                self.channel_up.iter().filter(|&&u| u).count() as u64,
            );
            o.sync_aux(
                self.crossover,
                self.waits.compactions(),
                self.waits.arena_bytes(),
            );
        }

        // Sampled slot: close the pipeline, assemble the preorder span
        // tree (chunk spans nest under the drain phase), and fold it
        // into the tracer — one lock for the whole slot.
        if let Some(epoch) = trace_epoch {
            trace_marks.push(Instant::now()); // sync end
            let ns = |i: Instant| i.duration_since(epoch).as_nanos() as u64;
            let slot = buf.time;
            let mut spans = Vec::with_capacity(6 + trace_chunks.len());
            spans.push(SpanRec {
                kind: SpanKind::Slot(slot),
                depth: 0,
                start_ns: ns(trace_marks[0]),
                dur_ns: ns(trace_marks[5]) - ns(trace_marks[0]),
            });
            const PIPELINE: [Phase; 5] = [
                Phase::Faults,
                Phase::Air,
                Phase::Drain,
                Phase::Deadline,
                Phase::Sync,
            ];
            for (i, phase) in PIPELINE.into_iter().enumerate() {
                spans.push(SpanRec {
                    kind: SpanKind::Phase(phase),
                    depth: 1,
                    start_ns: ns(trace_marks[i]),
                    dur_ns: ns(trace_marks[i + 1]) - ns(trace_marks[i]),
                });
                if phase == Phase::Drain {
                    spans.extend(trace_chunks.iter().map(|c| SpanRec {
                        kind: SpanKind::Chunk(c.chunk),
                        depth: 2,
                        start_ns: c.start_ns,
                        dur_ns: c.dur_ns,
                    }));
                }
            }
            let t = self.trace.as_mut().expect("sampled tick keeps its tracer");
            t.trace.commit_slot(SlotTrace { slot, spans });
            t.marks = trace_marks;
            t.chunks = trace_chunks;
        }
    }

    /// The seed implementation of [`Station::tick`], retained verbatim as
    /// a correctness reference: it allocates every buffer fresh and reads
    /// expected times straight from the scheduler's catalogue instead of
    /// the station's dense cache. The `station_perf` bench drives two
    /// identically-configured stations — one through
    /// [`Station::tick_into`], one through this — and exits non-zero on
    /// any divergence.
    ///
    /// This path is **not** instrumented: with an [`Obs`] handle attached
    /// it still updates [`StationStats`] (including `mode_changes`) and
    /// the replan/gate instrumentation shared through `refresh_plan`, but
    /// records no per-delivery metrics. Use [`Station::tick_into`] for
    /// observed serving.
    pub fn tick_reference(&mut self) -> TickOutcome {
        let mut events = std::mem::take(&mut self.pending_events);
        let configured = self.channel_up.len();
        let mut stalled = vec![false; configured];
        let mut corrupt_wanted = vec![false; configured];

        if let Some(injector) = self.injector.as_mut() {
            let faults = injector.sample(self.time);
            let mut changed = false;
            for channel in faults.went_down {
                let ch = channel.index() as usize;
                if ch < configured && self.channel_up[ch] {
                    self.channel_up[ch] = false;
                    events.push(ChannelEvent::Down {
                        channel,
                        at: self.time,
                    });
                    changed = true;
                }
            }
            for channel in faults.came_up {
                let ch = channel.index() as usize;
                if ch < configured && !self.channel_up[ch] {
                    self.channel_up[ch] = true;
                    self.health.reset(channel);
                    events.push(ChannelEvent::Up {
                        channel,
                        at: self.time,
                    });
                    changed = true;
                }
            }
            stalled = faults.stalled;
            corrupt_wanted = faults.corrupted;
            if changed {
                self.refresh_plan("fault");
            }
        }

        let mut on_air: Vec<Option<PageId>> = vec![None; configured];
        match &self.active {
            ActivePlan::Full => {
                let program = self.scheduler.program();
                let column = self.time % program.cycle_len();
                for (ch, slot) in on_air.iter_mut().enumerate() {
                    if self.channel_up[ch] {
                        let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
                        *slot = program.page_at(GridPos::new(channel, SlotIndex::new(column)));
                    }
                }
            }
            ActivePlan::Reduced(program) | ActivePlan::BestEffort(program) => {
                let column = self.time % program.cycle_len();
                let mut row = 0u32;
                for (ch, slot) in on_air.iter_mut().enumerate() {
                    if self.channel_up[ch] && row < program.channels() {
                        *slot = program
                            .page_at(GridPos::new(ChannelId::new(row), SlotIndex::new(column)));
                        row += 1;
                    }
                }
            }
            ActivePlan::Offline => {}
        }

        let mut corrupted = vec![false; configured];
        for ch in 0..configured {
            if !self.channel_up[ch] {
                continue;
            }
            let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
            if stalled[ch] {
                if on_air[ch].take().is_some() {
                    if let Some(e) =
                        self.health
                            .record(channel, SlotObservation::Stalled, self.time)
                    {
                        events.push(e);
                    }
                }
            } else if on_air[ch].is_some() {
                let observation = if corrupt_wanted[ch] {
                    corrupted[ch] = true;
                    SlotObservation::Corrupt
                } else {
                    SlotObservation::Clean
                };
                if let Some(e) = self.health.record(channel, observation, self.time) {
                    events.push(e);
                }
            }
        }

        let mut deliveries = Vec::new();
        for ch in 0..configured {
            if corrupted[ch] {
                continue;
            }
            let Some(page) = on_air[ch] else { continue };
            let idx = page.index() as usize;
            let waiters = self.waits.take_dense(idx);
            let expected = self.scheduler.pages().get(&page).copied();
            for (client, since) in waiters {
                let wait = self.time - since + 1;
                let within = expected.is_some_and(|t| wait <= t);
                deliveries.push(Delivery {
                    client,
                    page,
                    wait,
                    within_deadline: within,
                });
                self.stats.delivered += 1;
                self.stats.total_wait += wait;
                self.stats.waiting -= 1;
                let tally = &mut self.stats.per_mode[self.mode.index()];
                tally.delivered += 1;
                if within {
                    self.stats.on_time += 1;
                    tally.on_time += 1;
                }
            }
        }

        if self.mode != Mode::Valid {
            self.stats.degraded_slots += 1;
        }

        let outcome = TickOutcome {
            time: self.time,
            mode: self.mode,
            on_air,
            corrupted,
            deliveries,
            events,
        };
        self.time += 1;
        self.stats.slots_elapsed += 1;
        outcome
    }

    /// Ticks `slots` times, streaming every delivery through `sink` — the
    /// allocation-free way to drive a long run: one internal [`TickBuf`]
    /// serves the whole loop and no delivery list is ever materialized.
    pub fn run_with<F: FnMut(&Delivery)>(&mut self, slots: u64, mut sink: F) {
        let mut buf = TickBuf::default();
        for _ in 0..slots {
            self.tick_into(&mut buf);
            for delivery in &buf.deliveries {
                sink(delivery);
            }
        }
    }

    /// Ticks `slots` times, returning all deliveries in order.
    pub fn run(&mut self, slots: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.run_with(slots, |d| out.push(*d));
        out
    }

    /// Captures the station's complete serving state as plain data — the
    /// payload of a crash-recovery checkpoint.
    ///
    /// Two things are deliberately *not* captured, because they are not
    /// data: the plan-corruptor chaos hook (a function pointer) and the
    /// observability wiring. A restored station comes up with neither;
    /// callers re-attach them (`set_plan_corruptor`, `attach_obs`) after
    /// [`Station::from_snapshot`]. Neither influences the `TickOutcome`
    /// stream, so the bit-identical replay contract is unaffected.
    #[must_use]
    pub fn snapshot(&self) -> StationSnapshot {
        StationSnapshot {
            scheduler: self.scheduler.snapshot(),
            time: self.time,
            waiting: self.waits.snapshot_waiting(),
            expected: self.waits.snapshot_expected(),
            next_client: self.next_client,
            stats: self.stats,
            channel_up: self.channel_up.clone(),
            injector: self.injector.as_ref().map(FaultInjector::snapshot),
            health: self.health.snapshot(),
            policy: self.policy,
            mode: self.mode,
            active: match &self.active {
                ActivePlan::Full => ActivePlanSnapshot::Full,
                ActivePlan::Reduced(p) => ActivePlanSnapshot::Reduced(ProgramSnapshot::capture(p)),
                ActivePlan::BestEffort(p) => {
                    ActivePlanSnapshot::BestEffort(ProgramSnapshot::capture(p))
                }
                ActivePlan::Offline => ActivePlanSnapshot::Offline,
            },
            pending_events: self.pending_events.clone(),
        }
    }

    /// Rebuilds a station from a snapshot taken by [`Station::snapshot`].
    ///
    /// `fault_plan` must be the plan the snapshotted station was running
    /// under (the snapshot carries only the injector's evolving state;
    /// the script and rates are rebuilt from the plan). Pass `None` for a
    /// station that had no injector.
    ///
    /// The restored station's subsequent [`TickOutcome`] stream — and
    /// every stat — is bit-identical to the snapshotted station's
    /// continuation, provided both see the same post-snapshot inputs.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::CorruptSnapshot`] (or a schedule error) if
    /// the snapshot is internally inconsistent or the fault plan is
    /// missing while the snapshot carries injector state.
    pub fn from_snapshot(
        snapshot: &StationSnapshot,
        fault_plan: Option<&FaultPlan>,
    ) -> Result<Self, StationError> {
        let injector = match (&snapshot.injector, fault_plan) {
            (Some(inj), Some(plan)) => {
                if inj.up.len() != snapshot.channel_up.len() {
                    return Err(StationError::CorruptSnapshot {
                        reason: "injector channel count disagrees with the station's",
                    });
                }
                Some(FaultInjector::from_snapshot(plan, inj))
            }
            (Some(_), None) => {
                return Err(StationError::CorruptSnapshot {
                    reason: "snapshot carries fault-injector state but no fault plan was supplied",
                })
            }
            (None, _) => None,
        };
        let active = match &snapshot.active {
            ActivePlanSnapshot::Full => ActivePlan::Full,
            ActivePlanSnapshot::Reduced(p) => ActivePlan::Reduced(p.rebuild()?),
            ActivePlanSnapshot::BestEffort(p) => ActivePlan::BestEffort(p.rebuild()?),
            ActivePlanSnapshot::Offline => ActivePlan::Offline,
        };
        Ok(Self {
            scheduler: OnlineScheduler::from_snapshot(&snapshot.scheduler)?,
            time: snapshot.time,
            waits: WaitingSet::restore(&snapshot.expected, &snapshot.waiting),
            parallelism: 1,
            pool: None,
            par_auto: false,
            par_threshold: Self::AUTO_DRAIN_THRESHOLD,
            crossover: (0, 0),
            plan_epoch: 0,
            drain_reqs: Vec::new(),
            next_client: snapshot.next_client,
            stats: snapshot.stats,
            channel_up: snapshot.channel_up.clone(),
            injector,
            health: HealthMonitor::from_snapshot(&snapshot.health),
            policy: snapshot.policy,
            mode: snapshot.mode,
            active,
            pending_events: snapshot.pending_events.clone(),
            corruptor: None,
            deep_verify: false,
            obs: None,
            trace: None,
        })
    }
}

/// The effective on-air grid of a station at one instant, as physical
/// cells: `cells[ch * cycle_len + col]` is the page a tick at column
/// `col` (`= time % cycle_len`) would transmit on physical channel `ch`,
/// `None` meaning an idle or down carrier. Produced by
/// [`Station::plan_cells`] and consumed by frame-template caches; valid
/// until [`Station::plan_epoch`] moves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCells {
    /// Configured physical channel count (grid rows).
    pub channels: u32,
    /// Grid columns; tick `t` airs column `t % cycle_len`.
    pub cycle_len: u64,
    /// Channel-major cells (`ch * cycle_len + col`).
    pub cells: Vec<Option<PageId>>,
}

/// Cell-exact capture of one [`BroadcastProgram`].
///
/// The degraded rungs' programs are persisted verbatim rather than
/// re-derived on restore: the pre-swap lint gate may refuse a freshly
/// derived candidate (keeping the previous plan on the air), so
/// re-planning is not guaranteed to reproduce the program that was
/// actually transmitting when the checkpoint was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSnapshot {
    /// Channel count of the grid.
    pub channels: u32,
    /// Cycle length of the grid.
    pub cycle: u64,
    /// Every grid cell in channel-major order (`ch * cycle + slot`).
    pub grid: Vec<Option<PageId>>,
}

impl ProgramSnapshot {
    /// Serializes `program` cell by cell.
    #[must_use]
    pub fn capture(program: &BroadcastProgram) -> Self {
        let channels = program.channels();
        let cycle = program.cycle_len();
        let mut grid = Vec::with_capacity((channels as usize) * (cycle as usize));
        for ch in 0..channels {
            for slot in 0..cycle {
                grid.push(program.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(slot))));
            }
        }
        Self {
            channels,
            cycle,
            grid,
        }
    }

    /// Reconstructs the exact program.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::CorruptSnapshot`] on malformed dimensions.
    pub fn rebuild(&self) -> Result<BroadcastProgram, StationError> {
        if self.channels == 0 || self.cycle == 0 {
            return Err(StationError::CorruptSnapshot {
                reason: "program snapshot has zero channels or cycle",
            });
        }
        if self.grid.len() != (self.channels as usize) * (self.cycle as usize) {
            return Err(StationError::CorruptSnapshot {
                reason: "program snapshot grid length does not match its dimensions",
            });
        }
        let mut program = BroadcastProgram::new(self.channels, self.cycle);
        let mut cells = self.grid.iter();
        for ch in 0..self.channels {
            for slot in 0..self.cycle {
                if let Some(page) = cells.next().copied().flatten() {
                    program
                        .place(GridPos::new(ChannelId::new(ch), SlotIndex::new(slot)), page)
                        .expect("fresh grid cells are free");
                }
            }
        }
        Ok(program)
    }
}

/// Which rung's program was on the air, with the program itself persisted
/// cell-exactly for the degraded rungs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActivePlanSnapshot {
    /// The primary scheduler's program (already captured in
    /// [`StationSnapshot::scheduler`]).
    Full,
    /// A valid SUSC re-pack onto the surviving channels.
    Reduced(ProgramSnapshot),
    /// A PAMAD best-effort plan onto the surviving channels.
    BestEffort(ProgramSnapshot),
    /// Nothing transmits.
    Offline,
}

/// Plain-data capture of a [`Station`]'s complete serving state, produced
/// by [`Station::snapshot`] and consumed by [`Station::from_snapshot`].
/// The crash-recovery checkpoint format (`airsched-recover`) is a binary
/// encoding of exactly this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct StationSnapshot {
    /// The primary scheduler: grid and live catalogue.
    pub scheduler: SchedulerSnapshot,
    /// The slot clock.
    pub time: u64,
    /// Waiting clients per dense page index, as `(client id, since)`.
    pub waiting: Vec<Vec<(u64, u64)>>,
    /// Dense expected-time mirror of the catalogue.
    pub expected: Vec<Option<u64>>,
    /// The next client id to assign.
    pub next_client: u64,
    /// Aggregate statistics.
    pub stats: StationStats,
    /// Physical channel up/down state.
    pub channel_up: Vec<bool>,
    /// The fault injector's evolving state, if one was attached.
    pub injector: Option<FaultInjectorSnapshot>,
    /// Per-channel health windows.
    pub health: HealthSnapshot,
    /// The degradation policy.
    pub policy: DegradationPolicy,
    /// The ladder mode.
    pub mode: Mode,
    /// The plan on the air.
    pub active: ActivePlanSnapshot,
    /// Events produced outside `tick`, not yet surfaced.
    pub pending_events: Vec<ChannelEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultEvent;

    fn station_with_catalogue() -> Station {
        let mut s = Station::new(2, 8).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 4).unwrap();
        s.publish(PageId::new(2), 8).unwrap();
        s
    }

    #[test]
    fn subscribers_are_served_within_deadline() {
        let mut s = station_with_catalogue();
        // Subscribe to everything at various instants; every delivery must
        // be on time because the schedule is valid.
        let mut pending = Vec::new();
        for round in 0..16u64 {
            let page = PageId::new(u32::try_from(round % 3).unwrap());
            pending.push((s.subscribe(page).unwrap(), page));
            let tick = s.tick();
            for d in &tick.deliveries {
                assert!(d.within_deadline, "{d:?}");
            }
        }
        // Drain the rest.
        s.run(16);
        assert_eq!(s.stats().waiting, 0);
        assert_eq!(s.stats().on_time, s.stats().delivered);
        assert!(s.stats().mean_wait() >= 1.0);
        assert_eq!(s.stats().on_time_rate(), 1.0);
    }

    #[test]
    fn unknown_page_subscription_is_rejected() {
        let mut s = station_with_catalogue();
        let err = s.subscribe(PageId::new(9)).unwrap_err();
        assert!(matches!(err, StationError::UnknownPage { .. }));
        assert!(err.to_string().contains("not in the catalogue"));
    }

    #[test]
    fn publish_duplicate_and_bad_times_error() {
        let mut s = station_with_catalogue();
        assert!(matches!(
            s.publish(PageId::new(0), 4),
            Err(StationError::Schedule(_))
        ));
        assert!(s.publish(PageId::new(9), 3).is_err()); // 3 does not divide 8
        assert!(s.publish(PageId::new(9), 0).is_err());
    }

    #[test]
    fn expire_stops_transmission() {
        let mut s = station_with_catalogue();
        s.expire(PageId::new(0)).unwrap();
        assert!(s.expire(PageId::new(0)).is_err());
        for _ in 0..16 {
            let tick = s.tick();
            assert!(
                !tick.on_air.contains(&Some(PageId::new(0))),
                "expired page still on air"
            );
        }
    }

    #[test]
    fn capacity_exhaustion_reports() {
        let mut s = Station::new(1, 2).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 2).unwrap();
        let err = s.publish(PageId::new(2), 2).unwrap_err();
        assert!(matches!(err, StationError::CapacityExhausted { .. }));
        assert!(err.to_string().contains("channel budget"));
    }

    #[test]
    fn publish_compacts_through_fragmentation() {
        // Same scenario as the OnlineScheduler fragmentation test, but via
        // the station's publish, which must self-heal.
        let mut s = Station::new(1, 4).unwrap();
        for i in 0..4 {
            s.publish(PageId::new(i), 4).unwrap();
        }
        s.expire(PageId::new(0)).unwrap();
        s.expire(PageId::new(3)).unwrap();
        s.publish(PageId::new(9), 2).unwrap(); // needs compaction
        assert_eq!(s.catalogue().len(), 3);
    }

    #[test]
    fn clock_and_stats_advance() {
        let mut s = station_with_catalogue();
        assert_eq!(s.now(), 0);
        s.run(10);
        assert_eq!(s.now(), 10);
        assert_eq!(s.stats().slots_elapsed, 10);
    }

    #[test]
    fn delivery_wait_is_exact() {
        let mut s = Station::new(1, 4).unwrap();
        s.publish(PageId::new(0), 4).unwrap(); // airs at slot 0 of each cycle
                                               // Let one full cycle pass, subscribe at t=4 (the page's slot).
        s.run(4);
        let client = s.subscribe(PageId::new(0)).unwrap();
        let tick = s.tick();
        assert_eq!(tick.deliveries.len(), 1);
        let d = tick.deliveries[0];
        assert_eq!(d.client, client);
        assert_eq!(d.wait, 1);
        assert!(d.within_deadline);
    }

    #[test]
    fn multiple_waiters_served_together() {
        let mut s = Station::new(1, 4).unwrap();
        s.publish(PageId::new(0), 4).unwrap();
        s.run(1); // move past the page's slot
        let a = s.subscribe(PageId::new(0)).unwrap();
        let b = s.subscribe(PageId::new(0)).unwrap();
        assert_ne!(a, b);
        let deliveries = s.run(4);
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.page == PageId::new(0)));
    }

    #[test]
    fn client_id_display() {
        let mut s = station_with_catalogue();
        let c = s.subscribe(PageId::new(0)).unwrap();
        assert_eq!(c.to_string(), "client0");
    }

    // --- fault tolerance ---

    /// A 3-channel catalogue whose Theorem 3.1 minimum is 2: demand is
    /// 1/2 + 1/2 + 1/4 + 1/8 = 1.375.
    fn resilient_station() -> Station {
        let mut s = Station::new(3, 8).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 2).unwrap();
        s.publish(PageId::new(2), 4).unwrap();
        s.publish(PageId::new(3), 8).unwrap();
        s
    }

    #[test]
    fn ladder_walks_down_and_back_up() {
        let mut s = resilient_station();
        assert_eq!(s.mode(), Mode::Valid);
        // 2 survivors >= minimum 2: a valid re-pack.
        assert_eq!(s.fail_channel(ChannelId::new(2)), Mode::Repacked);
        assert!(s.mode().is_valid());
        // 1 survivor < 2: PAMAD best-effort.
        assert_eq!(s.fail_channel(ChannelId::new(1)), Mode::BestEffort);
        assert!(!s.mode().is_valid());
        // 0 survivors: off the air.
        assert_eq!(s.fail_channel(ChannelId::new(0)), Mode::Offline);
        assert!(s.tick().on_air.iter().all(Option::is_none));
        // Climb back up the same rungs.
        assert_eq!(s.restore_channel(ChannelId::new(0)), Mode::BestEffort);
        assert_eq!(s.restore_channel(ChannelId::new(1)), Mode::Repacked);
        assert_eq!(s.restore_channel(ChannelId::new(2)), Mode::Valid);
        let stats = s.stats();
        assert_eq!(stats.failovers, 2); // entered best-effort going down AND up
        assert_eq!(stats.repacks, 2); // down-walk and up-walk
        assert_eq!(stats.recoveries, 1);
        assert!(stats.degraded_slots >= 1);
    }

    #[test]
    fn repacked_mode_keeps_deadlines_and_subscriptions() {
        let mut s = resilient_station();
        let client = s.subscribe(PageId::new(2)).unwrap();
        assert_eq!(s.fail_channel(ChannelId::new(2)), Mode::Repacked);
        // Down channel airs nothing; survivors meet every deadline.
        let mut served = false;
        for _ in 0..8 {
            let tick = s.tick();
            assert_eq!(tick.mode, Mode::Repacked);
            assert_eq!(tick.on_air[2], None);
            for d in &tick.deliveries {
                assert!(d.within_deadline, "{d:?}");
                served |= d.client == client;
            }
        }
        assert!(served, "subscription lost across the re-pack");
        assert_eq!(s.stats().per_mode(Mode::Repacked).on_time_rate(), 1.0);
    }

    #[test]
    fn best_effort_mode_keeps_every_page_on_air() {
        let mut s = resilient_station();
        s.fail_channel(ChannelId::new(2));
        s.fail_channel(ChannelId::new(1));
        assert_eq!(s.mode(), Mode::BestEffort);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let tick = s.tick();
            assert_eq!(tick.mode, Mode::BestEffort);
            // Only channel 0 survives.
            assert_eq!(tick.on_air[1], None);
            assert_eq!(tick.on_air[2], None);
            seen.extend(tick.on_air[0]);
        }
        // PAMAD keeps the whole catalogue broadcasting on the survivor.
        assert_eq!(seen.len(), 4, "pages vanished in best-effort: {seen:?}");
    }

    #[test]
    fn corrupt_frames_do_not_deliver() {
        let plan = FaultPlan::scripted(vec![FaultEvent::Corrupt {
            at: 0,
            channel: ChannelId::new(0),
        }]);
        let mut s = Station::with_faults(1, 4, &plan).unwrap();
        s.publish(PageId::new(0), 4).unwrap(); // airs at slots 0, 4, 8...
        let client = s.subscribe(PageId::new(0)).unwrap();
        let tick = s.tick();
        assert_eq!(tick.on_air[0], Some(PageId::new(0)));
        assert_eq!(tick.corrupted, vec![true]);
        assert!(tick.deliveries.is_empty(), "corrupt frame delivered");
        // The client is served by the next intact occurrence — late.
        let deliveries = s.run(4);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].client, client);
        assert_eq!(deliveries[0].wait, 5);
        assert!(!deliveries[0].within_deadline);
    }

    #[test]
    fn stalled_slot_airs_nothing() {
        let plan = FaultPlan::scripted(vec![FaultEvent::Stall {
            at: 0,
            channel: ChannelId::new(0),
        }]);
        let mut s = Station::with_faults(1, 4, &plan).unwrap();
        s.publish(PageId::new(0), 4).unwrap();
        let tick = s.tick();
        assert_eq!(tick.on_air, vec![None]);
        assert_eq!(tick.corrupted, vec![false]);
        // Next cycle transmits normally.
        s.run(3);
        let tick = s.tick();
        assert_eq!(tick.on_air, vec![Some(PageId::new(0))]);
    }

    #[test]
    fn injector_outages_surface_as_events_and_modes() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent::Down {
                at: 2,
                channel: ChannelId::new(2),
            },
            FaultEvent::Up {
                at: 6,
                channel: ChannelId::new(2),
            },
        ]);
        let mut s = Station::with_faults(3, 8, &plan).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 2).unwrap();
        s.publish(PageId::new(2), 4).unwrap();
        s.publish(PageId::new(3), 8).unwrap();
        assert_eq!(s.tick().mode, Mode::Valid);
        assert_eq!(s.tick().mode, Mode::Valid);
        let tick = s.tick(); // slot 2: outage applies before transmission
        assert_eq!(tick.mode, Mode::Repacked);
        assert_eq!(
            tick.events,
            vec![ChannelEvent::Down {
                channel: ChannelId::new(2),
                at: 2
            }]
        );
        s.tick();
        s.tick();
        s.tick();
        let tick = s.tick(); // slot 6: recovery
        assert_eq!(tick.mode, Mode::Valid);
        assert_eq!(
            tick.events,
            vec![ChannelEvent::Up {
                channel: ChannelId::new(2),
                at: 6
            }]
        );
        assert_eq!(s.stats().recoveries, 1);
    }

    #[test]
    fn health_monitor_flags_a_noisy_channel() {
        let plan = FaultPlan::seeded(3).with_corruption(1.0);
        let mut s = Station::with_faults(1, 4, &plan).unwrap();
        s.set_health_thresholds(HealthThresholds {
            window: 4,
            error_permille: 500,
            stall_permille: 500,
        });
        s.publish(PageId::new(0), 1).unwrap(); // airs every slot
        let mut degraded_events = 0;
        for _ in 0..8 {
            let tick = s.tick();
            degraded_events += tick
                .events
                .iter()
                .filter(|e| matches!(e, ChannelEvent::Degraded { .. }))
                .count();
        }
        assert_eq!(degraded_events, 1, "exactly one degraded transition");
        assert!(s.health().is_degraded(ChannelId::new(0)));
    }

    #[test]
    fn per_mode_tallies_attribute_deliveries() {
        let mut s = resilient_station();
        s.subscribe(PageId::new(0)).unwrap();
        s.run(2); // served in valid mode
        s.fail_channel(ChannelId::new(2));
        s.fail_channel(ChannelId::new(1));
        s.subscribe(PageId::new(0)).unwrap();
        s.run(16); // served in best-effort mode
        let stats = s.stats();
        assert_eq!(stats.per_mode(Mode::Valid).delivered, 1);
        assert!(stats.per_mode(Mode::BestEffort).delivered >= 1);
        assert_eq!(
            stats.delivered,
            stats.per_mode(Mode::Valid).delivered
                + stats.per_mode(Mode::Repacked).delivered
                + stats.per_mode(Mode::BestEffort).delivered
        );
        assert_eq!(stats.per_mode(Mode::Offline).delivered, 0);
    }

    #[test]
    fn equal_seeds_give_identical_tick_streams() {
        let plan = FaultPlan::seeded(99)
            .with_outage(0.05)
            .with_recovery(0.25)
            .with_stalls(0.02)
            .with_corruption(0.1);
        let build = || {
            let mut s = Station::with_faults(3, 8, &plan).unwrap();
            s.publish(PageId::new(0), 2).unwrap();
            s.publish(PageId::new(1), 4).unwrap();
            s.publish(PageId::new(2), 8).unwrap();
            s.subscribe(PageId::new(0)).unwrap();
            s.subscribe(PageId::new(2)).unwrap();
            s
        };
        let mut a = build();
        let mut b = build();
        for t in 0..400 {
            assert_eq!(a.tick(), b.tick(), "streams diverged at slot {t}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn tick_into_matches_the_reference_tick_across_chaos() {
        let plan = FaultPlan::seeded(77)
            .with_outage(0.05)
            .with_recovery(0.25)
            .with_stalls(0.03)
            .with_corruption(0.08)
            .with_script(vec![
                FaultEvent::Down {
                    at: 50,
                    channel: ChannelId::new(0),
                },
                FaultEvent::Up {
                    at: 120,
                    channel: ChannelId::new(0),
                },
            ]);
        let build = || {
            let mut s = Station::with_faults(3, 8, &plan).unwrap();
            s.publish(PageId::new(0), 2).unwrap();
            s.publish(PageId::new(1), 4).unwrap();
            s.publish(PageId::new(2), 8).unwrap();
            s
        };
        let mut fast = build();
        let mut reference = build();
        let mut buf = TickBuf::new();
        for t in 0..400u64 {
            // Interleave subscriptions so the waiting buffers keep churning.
            if t % 3 == 0 {
                let page = PageId::new(u32::try_from(t % 3).unwrap());
                assert_eq!(
                    fast.subscribe(page).unwrap(),
                    reference.subscribe(page).unwrap()
                );
            }
            fast.tick_into(&mut buf);
            let expected = reference.tick_reference();
            assert_eq!(buf.to_outcome(), expected, "diverged at slot {t}");
        }
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.mode(), reference.mode());
    }

    #[test]
    fn run_with_streams_the_same_deliveries_as_run() {
        let build = || {
            let mut s = station_with_catalogue();
            s.subscribe(PageId::new(0)).unwrap();
            s.subscribe(PageId::new(1)).unwrap();
            s.subscribe(PageId::new(2)).unwrap();
            s
        };
        let mut collected = Vec::new();
        build().run_with(16, |d| collected.push(*d));
        assert_eq!(collected, build().run(16));
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn expire_clears_the_dense_catalogue_cache() {
        let mut s = station_with_catalogue();
        s.subscribe(PageId::new(2)).unwrap();
        s.expire(PageId::new(2)).unwrap();
        // New subscriptions are rejected while the page is unpublished...
        assert!(matches!(
            s.subscribe(PageId::new(2)),
            Err(StationError::UnknownPage { .. })
        ));
        s.run(16);
        assert_eq!(s.stats().waiting, 1, "waiter lost with the expiry");
        // ...and the in-flight waiter is served once it is re-published.
        s.publish(PageId::new(2), 8).unwrap();
        let deliveries = s.run(8);
        assert!(deliveries.iter().any(|d| d.page == PageId::new(2)));
        assert_eq!(s.stats().waiting, 0);
    }

    #[test]
    fn policy_can_disable_rungs() {
        let mut s = resilient_station();
        s.set_degradation_policy(DegradationPolicy {
            repack: false,
            best_effort: true,
        });
        // Without the re-pack rung, any loss goes straight to best-effort.
        assert_eq!(s.fail_channel(ChannelId::new(2)), Mode::BestEffort);
        s.set_degradation_policy(DegradationPolicy {
            repack: true,
            best_effort: false,
        });
        assert_eq!(s.mode(), Mode::Repacked);
        // Without best-effort, dropping below the minimum goes offline.
        assert_eq!(s.fail_channel(ChannelId::new(1)), Mode::Offline);
        assert!(s.degradation_policy().repack);
    }

    // --- the pre-swap lint gate ---

    /// A corruptor that drops every occurrence of page 3 from the
    /// candidate: the gate must catch the now-missing page (AP03).
    fn drop_page3(program: &BroadcastProgram) -> BroadcastProgram {
        let mut out = BroadcastProgram::new(program.channels(), program.cycle_len());
        for ch in 0..program.channels() {
            for slot in 0..program.cycle_len() {
                let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(slot));
                if let Some(page) = program.page_at(pos) {
                    if page != PageId::new(3) {
                        out.place(pos, page).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn lint_gate_refuses_corrupted_replans_and_keeps_serving() {
        let mut s = resilient_station();
        s.set_plan_corruptor(Some(drop_page3));
        // Both the re-pack and the best-effort candidates come out of the
        // corrupted pipeline missing page 3; the gate refuses both, so the
        // previous (full) plan stays on the air and the mode is unchanged.
        assert_eq!(s.fail_channel(ChannelId::new(2)), Mode::Valid);
        assert_eq!(s.stats().plan_rejections, 2);
        assert_eq!(s.stats().failovers, 0);
        assert_eq!(s.stats().repacks, 0);
        // The survivors keep transmitting the vetted plan; the down
        // channel airs nothing.
        let mut aired = 0usize;
        for _ in 0..8 {
            let tick = s.tick();
            assert_eq!(tick.on_air[2], None);
            aired += tick.on_air[..2].iter().flatten().count();
        }
        assert!(aired > 0, "previous program stopped serving");
        // Removing the corruptor and re-failing the ladder installs a
        // clean re-pack again.
        s.set_plan_corruptor(None);
        s.restore_channel(ChannelId::new(2));
        assert_eq!(s.fail_channel(ChannelId::new(2)), Mode::Repacked);
        assert_eq!(s.stats().plan_rejections, 2, "clean candidate rejected");
    }

    #[test]
    fn deep_verify_certifies_clean_repacks_and_refuses_corrupted_ones() {
        let mut s = resilient_station();
        s.set_deep_verify(true);
        assert!(s.deep_verify());
        // A clean re-pack passes both the lint gate and the solver: the
        // swap happens and no solve rejection is recorded.
        assert_eq!(s.fail_channel(ChannelId::new(2)), Mode::Repacked);
        assert_eq!(s.stats().solve_rejections, 0);
        assert_eq!(s.stats().plan_rejections, 0);
        s.restore_channel(ChannelId::new(2));
        // A corrupted candidate is refused by the lint gate *and* by the
        // solver — the two verdicts must agree, and both tallies move.
        s.set_plan_corruptor(Some(drop_page3));
        assert_ne!(s.fail_channel(ChannelId::new(2)), Mode::Repacked);
        assert_eq!(s.stats().solve_rejections, 1, "solver must refuse too");
        assert!(s.stats().plan_rejections >= 1);
    }

    #[test]
    fn propose_plan_is_the_gates_dry_run() {
        use airsched_lint::rules::RuleId;
        let s = resilient_station();
        let own = s.scheduler.program().clone();
        assert!(s.propose_plan(&own, &LintConfig::default()).is_clean());
        let corrupted = drop_page3(&own);
        let report = s.propose_plan(&corrupted, &LintConfig::default());
        assert!(report.has_deny(), "{report}");
        assert!(report.fired(RuleId::NeverBroadcast), "{report}");
    }

    #[test]
    fn publish_and_expire_refresh_a_degraded_plan() {
        let mut s = Station::new(2, 8).unwrap();
        s.publish(PageId::new(0), 4).unwrap();
        s.publish(PageId::new(1), 8).unwrap();
        // One survivor still meets the minimum (1/4 + 1/8 < 1).
        assert_eq!(s.fail_channel(ChannelId::new(1)), Mode::Repacked);
        // Raising demand past one channel must drop to best-effort.
        s.publish(PageId::new(2), 2).unwrap();
        s.publish(PageId::new(3), 2).unwrap();
        s.publish(PageId::new(4), 4).unwrap();
        assert_eq!(s.mode(), Mode::BestEffort);
        // Shedding the load climbs back to a valid re-pack.
        s.expire(PageId::new(2)).unwrap();
        s.expire(PageId::new(3)).unwrap();
        assert_eq!(s.mode(), Mode::Repacked);
        // The new page is on the degraded plan's air.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..8 {
            seen.extend(s.tick().on_air[0]);
        }
        assert!(seen.contains(&PageId::new(4)));
    }

    // --- observability ---

    #[test]
    fn attached_obs_changes_nothing_and_mirrors_stats() {
        let plan = FaultPlan::seeded(41)
            .with_outage(0.05)
            .with_recovery(0.2)
            .with_stalls(0.02)
            .with_corruption(0.1);
        let build = || {
            let mut s = Station::with_faults(3, 8, &plan).unwrap();
            s.publish(PageId::new(0), 2).unwrap();
            s.publish(PageId::new(1), 2).unwrap();
            s.publish(PageId::new(2), 4).unwrap();
            s.publish(PageId::new(3), 8).unwrap();
            s
        };
        let mut plain = build();
        let mut observed = build();
        let obs = Obs::with_recorder_capacity(4096);
        observed.attach_obs(&obs);
        let mut a = TickBuf::new();
        let mut b = TickBuf::new();
        for t in 0..400u64 {
            if t % 4 == 0 {
                let page = PageId::new(u32::try_from(t % 4).unwrap());
                assert_eq!(
                    plain.subscribe(page).unwrap(),
                    observed.subscribe(page).unwrap()
                );
            }
            plain.tick_into(&mut a);
            observed.tick_into(&mut b);
            assert_eq!(a.to_outcome(), b.to_outcome(), "obs changed slot {t}");
        }
        // Bit-identical serving, identical stats.
        assert_eq!(plain.stats(), observed.stats());
        // Every counter family mirrors its stats twin exactly.
        let stats = observed.stats();
        let snap = obs.snapshot();
        assert_eq!(
            snap.scalar_total("airsched_station_delivered_total"),
            stats.delivered
        );
        assert_eq!(
            snap.scalar_total("airsched_station_on_time_total"),
            stats.on_time
        );
        assert_eq!(
            snap.scalar_total("airsched_station_deadline_miss_total"),
            stats.delivered - stats.on_time
        );
        assert_eq!(
            snap.scalar_total("airsched_station_slots_total"),
            stats.slots_elapsed
        );
        assert_eq!(
            snap.scalar_total("airsched_station_degraded_slots_total"),
            stats.degraded_slots
        );
        assert_eq!(
            snap.scalar_total("airsched_station_mode_changes_total"),
            stats.mode_changes
        );
        assert_eq!(
            snap.scalar_total("airsched_station_plan_rejections_total"),
            stats.plan_rejections
        );
        assert_eq!(
            snap.scalar_total("airsched_station_plan_warnings_total"),
            stats.plan_warnings
        );
        // The wait histogram saw every delivery, and its sum is the total
        // wait (both exact regardless of bucketing).
        assert_eq!(
            snap.scalar_total("airsched_station_wait_slots"),
            stats.delivered
        );
        // The event stream agrees with the counters: one ModeChange event
        // per stats.mode_changes, each consecutive pair chained
        // (from == previous to), and the last one matching the live mode.
        let changes: Vec<(String, String, u64)> = obs
            .recent_events(4096)
            .into_iter()
            .filter_map(|e| match e {
                ObsEvent::ModeChange { from, to, slot, .. } => Some((from, to, slot)),
                _ => None,
            })
            .collect();
        assert_eq!(changes.len() as u64, stats.mode_changes);
        for pair in changes.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "mode-change chain broken");
        }
        if let Some(last) = changes.last() {
            assert_eq!(last.1, observed.mode().name());
            assert_eq!(Some(last.2), stats.last_mode_change_slot);
        }
    }

    #[test]
    fn mode_change_stats_track_transitions_without_obs() {
        let mut s = resilient_station();
        assert_eq!(s.stats().mode_changes, 0);
        assert_eq!(s.stats().last_mode_change_slot, None);
        s.fail_channel(ChannelId::new(2));
        s.run(5);
        s.fail_channel(ChannelId::new(1));
        let stats = s.stats();
        assert_eq!(stats.mode_changes, 2);
        assert_eq!(stats.last_mode_change_slot, Some(5));
        assert_eq!(
            stats.mode_changes,
            stats.failovers + stats.repacks + stats.recoveries
        );
    }

    #[test]
    fn entering_best_effort_captures_a_causal_postmortem() {
        let mut s = resilient_station();
        let obs = Obs::new();
        s.attach_obs(&obs);
        s.fail_channel(ChannelId::new(2));
        s.fail_channel(ChannelId::new(1)); // drops onto best-effort
        let dumps = obs.take_postmortems();
        assert_eq!(dumps.len(), 1);
        let pm = &dumps[0];
        assert_eq!(pm.trigger, "best-effort");
        assert!(!pm.events.is_empty());
        // The triggering ModeChange is last; the causal Down transitions
        // precede it.
        let last = pm.events.last().unwrap();
        assert!(
            matches!(last, ObsEvent::ModeChange { to, .. } if to == "best-effort"),
            "{last:?}"
        );
        let downs = pm
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ObsEvent::ChannelHealth {
                        transition: HealthTransition::Down,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(downs, 2, "causal channel losses missing from the dump");
    }

    #[test]
    fn gate_refusals_record_rule_ids() {
        let mut s = resilient_station();
        let obs = Obs::new();
        s.attach_obs(&obs);
        s.set_plan_corruptor(Some(drop_page3));
        // Both the re-pack and the best-effort candidates are refused
        // (page 3 vanished: AP03 denies under both configs).
        s.fail_channel(ChannelId::new(2));
        let refusals: Vec<Vec<String>> = obs
            .recent_events(64)
            .into_iter()
            .filter_map(|e| match e {
                ObsEvent::PlanRejected { rule_ids, .. } => Some(rule_ids),
                _ => None,
            })
            .collect();
        assert_eq!(refusals.len(), 2);
        for ids in &refusals {
            assert!(ids.contains(&"AP03".to_string()), "{ids:?}");
        }
        // Replan timings were recorded for both attempted stages.
        let stages: Vec<String> = obs
            .recent_events(64)
            .into_iter()
            .filter_map(|e| match e {
                ObsEvent::ReplanTiming { stage, evals, .. } => {
                    assert!(evals > 0, "zero-cost replan recorded");
                    Some(stage)
                }
                _ => None,
            })
            .collect();
        assert_eq!(stages, vec!["repack".to_string(), "pamad".to_string()]);
    }

    #[test]
    fn snapshot_restores_a_bit_identical_twin_mid_chaos() {
        let plan = FaultPlan::seeded(99)
            .with_outage(0.05)
            .with_recovery(0.25)
            .with_stalls(0.02)
            .with_corruption(0.1)
            .with_script(vec![FaultEvent::Down {
                at: 30,
                channel: ChannelId::new(1),
            }]);
        let mut original = Station::with_faults(3, 8, &plan).unwrap();
        original.publish(PageId::new(0), 2).unwrap();
        original.publish(PageId::new(1), 4).unwrap();
        original.publish(PageId::new(2), 8).unwrap();
        // The original drains on 4 scoped workers; the snapshot it takes
        // must not remember that (parallelism is execution configuration,
        // never state).
        original.parallelism(4);
        // Drive it into the interesting regime: mid-chaos, clients
        // waiting, health windows partially filled.
        for t in 0..150u64 {
            if t % 4 == 0 {
                original
                    .subscribe(PageId::new(u32::try_from(t % 3).unwrap()))
                    .unwrap();
            }
            original.tick();
        }
        let snap = original.snapshot();
        // The twin restores at the default serial setting and later
        // re-shards differently — the continuation must stay bit-identical
        // through all of it, including fresh subscriptions on both sides.
        let mut restored = Station::from_snapshot(&snap, Some(&plan)).unwrap();
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.mode(), original.mode());
        assert_eq!(restored.now(), original.now());
        for t in 150..400u64 {
            if t == 260 {
                restored.parallelism(7);
            }
            if t % 4 == 0 {
                let page = PageId::new(u32::try_from(t % 3).unwrap());
                assert_eq!(
                    original.subscribe(page).unwrap(),
                    restored.subscribe(page).unwrap()
                );
            }
            assert_eq!(original.tick(), restored.tick(), "diverged at slot {t}");
        }
        assert_eq!(original.stats(), restored.stats());
    }

    #[test]
    fn snapshot_restore_rejects_inconsistencies() {
        let plan = FaultPlan::seeded(7).with_outage(0.1).with_recovery(0.2);
        let mut s = Station::with_faults(2, 8, &plan).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.run(20);
        let snap = s.snapshot();
        // Injector state without the plan that explains it.
        let err = Station::from_snapshot(&snap, None).unwrap_err();
        assert!(matches!(err, StationError::CorruptSnapshot { .. }));
        assert!(err.to_string().contains("cannot restore station snapshot"));
        // Injector channel count out of step with the station's.
        let mut bad = snap.clone();
        bad.injector.as_mut().unwrap().up.push(true);
        assert!(matches!(
            Station::from_snapshot(&bad, Some(&plan)),
            Err(StationError::CorruptSnapshot { .. })
        ));
        // A degraded-plan grid that lies about its dimensions.
        let mut bad = snap;
        bad.active = ActivePlanSnapshot::Reduced(ProgramSnapshot {
            channels: 2,
            cycle: 8,
            grid: vec![None; 3],
        });
        assert!(matches!(
            Station::from_snapshot(&bad, Some(&plan)),
            Err(StationError::CorruptSnapshot { .. })
        ));
    }

    fn every_slot_trace() -> Trace {
        Trace::new(airsched_trace::TraceConfig {
            sample_every: 1,
            ring_capacity: 16,
            slo: airsched_trace::SloConfig::default(),
        })
    }

    #[test]
    fn trace_samples_span_trees_and_chunks() {
        // Demand 1.5 channels keeps both transmitters busy, so the drain
        // sees >= 2 requests per slot and the pooled path splits chunks.
        let mut s = Station::new(2, 8).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 2).unwrap();
        s.publish(PageId::new(2), 4).unwrap();
        s.publish(PageId::new(3), 4).unwrap();
        s.parallelism(4);
        let trace = every_slot_trace();
        s.attach_trace(&trace);
        assert!(s.trace().is_some());
        for t in 0..32u64 {
            let page = PageId::new(u32::try_from(t % 4).unwrap());
            s.subscribe(page).unwrap();
            s.tick();
        }
        let snap = trace.snapshot();
        assert_eq!(snap.slots, 32, "SLO tracker must see every tick");
        assert_eq!(snap.sampled, 32, "sample_every=1 captures every slot");
        for phase in [
            Phase::Faults,
            Phase::Air,
            Phase::Drain,
            Phase::Deadline,
            Phase::Sync,
        ] {
            assert!(
                snap.phases
                    .iter()
                    .any(|p| p.phase == phase && p.count == 32),
                "phase {} missing from snapshot",
                phase.name()
            );
        }
        assert!(
            !snap.chunks.is_empty(),
            "pooled drain must record chunk spans"
        );
        let doc = trace.render_chrome(false);
        for name in ["\"slot\"", "\"drain\"", "\"drain-chunk\""] {
            assert!(doc.contains(name), "chrome doc missing {name}: {doc}");
        }
    }

    #[test]
    fn unsampled_ticks_still_track_slo() {
        let mut s = station_with_catalogue();
        let trace = Trace::new(airsched_trace::TraceConfig {
            sample_every: 0,
            ring_capacity: 16,
            slo: airsched_trace::SloConfig::default(),
        });
        s.attach_trace(&trace);
        s.subscribe(PageId::new(0)).unwrap();
        s.run(16);
        let snap = trace.snapshot();
        assert_eq!(snap.slots, 16);
        assert_eq!(snap.sampled, 0, "sampling off must capture nothing");
        assert!(snap.phases.is_empty());
        assert_eq!(snap.slo_burns, 0);
        assert_eq!(snap.fast_hit_milli, 1000, "valid schedule serves on time");
    }

    #[test]
    fn tracing_does_not_change_the_output_stream() {
        let mut plain = station_with_catalogue();
        let mut traced = station_with_catalogue();
        let trace = every_slot_trace();
        traced.attach_trace(&trace);
        for t in 0..100u64 {
            if t % 3 == 0 {
                let page = PageId::new(u32::try_from(t % 3).unwrap());
                assert_eq!(
                    plain.subscribe(page).unwrap(),
                    traced.subscribe(page).unwrap()
                );
            }
            assert_eq!(plain.tick(), traced.tick(), "diverged at slot {t}");
        }
        assert_eq!(plain.stats(), traced.stats());
    }

    #[test]
    fn slo_burn_fires_on_late_deliveries_and_captures_postmortem() {
        let mut s = station_with_catalogue();
        let obs = Obs::new();
        s.attach_obs(&obs);
        let trace = every_slot_trace();
        s.attach_trace(&trace);
        // Park a crowd on the fastest page, then black out both channels
        // long enough to fill the fast SLO window and blow the deadline.
        for _ in 0..8 {
            s.subscribe(PageId::new(0)).unwrap();
        }
        s.fail_channel(ChannelId::new(0));
        s.fail_channel(ChannelId::new(1));
        s.run(80);
        assert_eq!(trace.snapshot().slo_burns, 0, "idle slots are not misses");
        // Restoration serves the crowd far past its deadline: the slot's
        // deliveries all miss, the fast and slow windows both burn, and
        // the alert lands in the flight recorder with a postmortem.
        s.restore_channel(ChannelId::new(0));
        s.restore_channel(ChannelId::new(1));
        s.run(8);
        let snap = trace.snapshot();
        assert!(snap.slo_burns >= 1, "burn alert must fire: {snap:?}");
        let events = obs.recent_events(256);
        let burn = events
            .iter()
            .find(|e| matches!(e, ObsEvent::SloBurn { .. }))
            .expect("SloBurn event recorded");
        if let ObsEvent::SloBurn {
            fast_burn_milli,
            threshold_milli,
            ..
        } = burn
        {
            assert!(fast_burn_milli >= threshold_milli);
        }
        let pms = obs.take_postmortems();
        assert!(
            pms.iter().any(|p| p.trigger == "slo_burn"),
            "postmortem captured for the burn"
        );
    }
}
