//! The broadcast station: a live server over an always-valid schedule.
//!
//! [`Station`] glues the pieces of the reproduction into the long-running
//! process a deployment would actually operate:
//!
//! * a catalogue managed through [`Station::publish`] / [`Station::expire`]
//!   (backed by [`airsched_core::dynamic::OnlineScheduler`], so the
//!   schedule stays valid through every change, compacting when needed);
//! * client subscriptions ([`Station::subscribe`]) that are delivered the
//!   moment their page airs;
//! * a slot clock driven by [`Station::tick`], each tick transmitting one
//!   column of the program and returning the deliveries it caused;
//! * live statistics ([`Station::stats`]): waits, deadline hits, backlog.

use std::collections::BTreeMap;

use airsched_core::dynamic::OnlineScheduler;
use airsched_core::error::ScheduleError;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};

/// Identifier of a subscribed client, unique within one station.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(u64);

impl core::fmt::Display for ClientId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// One delivery produced by a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Who was served.
    pub client: ClientId,
    /// The page they waited for.
    pub page: PageId,
    /// Whole slots from subscription to full reception.
    pub wait: u64,
    /// Whether the wait stayed within the page's expected time.
    pub within_deadline: bool,
}

/// What one slot of air time did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickOutcome {
    /// The slot that just finished transmitting.
    pub time: u64,
    /// Pages on the air this slot, by channel (`None` = idle carrier).
    pub on_air: Vec<Option<PageId>>,
    /// Clients served this slot.
    pub deliveries: Vec<Delivery>,
}

/// Aggregate station statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StationStats {
    /// Slots ticked so far.
    pub slots_elapsed: u64,
    /// Total deliveries.
    pub delivered: u64,
    /// Deliveries within their page's expected time.
    pub on_time: u64,
    /// Sum of delivery waits (for the mean).
    pub total_wait: u64,
    /// Clients currently waiting.
    pub waiting: u64,
}

impl StationStats {
    /// Mean wait per delivery, in slots (0 when nothing delivered).
    #[must_use]
    pub fn mean_wait(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.delivered as f64
        }
    }

    /// Fraction of deliveries within the expected time (1.0 when none).
    #[must_use]
    pub fn on_time_rate(&self) -> f64 {
        if self.delivered == 0 {
            1.0
        } else {
            self.on_time as f64 / self.delivered as f64
        }
    }
}

/// Errors specific to station operation (scheduling errors pass through
/// as [`ScheduleError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StationError {
    /// The page is not in the catalogue.
    UnknownPage {
        /// The missing page.
        page: PageId,
    },
    /// Admission failed even after compaction: the catalogue no longer
    /// fits the channel budget.
    CapacityExhausted {
        /// The page that could not be admitted.
        page: PageId,
    },
    /// An underlying scheduling error.
    Schedule(ScheduleError),
}

impl core::fmt::Display for StationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownPage { page } => write!(f, "{page} is not in the catalogue"),
            Self::CapacityExhausted { page } => write!(
                f,
                "cannot admit {page}: catalogue exceeds the channel budget"
            ),
            Self::Schedule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScheduleError> for StationError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

/// A live broadcast station.
///
/// # Examples
///
/// ```
/// use airsched_core::types::PageId;
/// use airsched_server::station::Station;
///
/// let mut station = Station::new(2, 8)?;
/// station.publish(PageId::new(0), 2)?;
/// station.publish(PageId::new(1), 4)?;
/// let client = station.subscribe(PageId::new(0))?;
///
/// // The page airs every 2 slots, so the client is served within 2 ticks.
/// let mut served = false;
/// for _ in 0..2 {
///     let tick = station.tick();
///     if tick.deliveries.iter().any(|d| d.client == client) {
///         served = true;
///         break;
///     }
/// }
/// assert!(served);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Station {
    scheduler: OnlineScheduler,
    time: u64,
    /// Waiting clients per page, with their subscription instant.
    waiting: BTreeMap<PageId, Vec<(ClientId, u64)>>,
    next_client: u64,
    stats: StationStats,
}

impl Station {
    /// Creates a station with `channels` transmitters and a `cycle`-slot
    /// schedule (the largest expected time it will accept).
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] for a zero channel count or cycle.
    pub fn new(channels: u32, cycle: u64) -> Result<Self, StationError> {
        Ok(Self {
            scheduler: OnlineScheduler::new(channels, cycle)?,
            time: 0,
            waiting: BTreeMap::new(),
            next_client: 0,
            stats: StationStats::default(),
        })
    }

    /// The current slot clock.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Live statistics.
    #[must_use]
    pub fn stats(&self) -> StationStats {
        self.stats
    }

    /// The current catalogue: page → expected time.
    #[must_use]
    pub fn catalogue(&self) -> &BTreeMap<PageId, u64> {
        self.scheduler.pages()
    }

    /// Publishes a page with an expected time, compacting the schedule if
    /// fragmentation blocks direct admission.
    ///
    /// # Errors
    ///
    /// * [`StationError::CapacityExhausted`] if it does not fit even after
    ///   compaction.
    /// * [`StationError::Schedule`] for malformed inputs (zero or
    ///   non-dividing expected time, duplicate page id).
    pub fn publish(&mut self, page: PageId, expected: u64) -> Result<(), StationError> {
        match self.scheduler.add_page(page, expected) {
            Ok(()) => Ok(()),
            Err(ScheduleError::PlacementFailed { .. }) => self
                .scheduler
                .rebuild_with(&[(page, expected)])
                .map_err(|_| StationError::CapacityExhausted { page }),
            Err(e) => Err(e.into()),
        }
    }

    /// Removes a page from the catalogue. Clients still waiting for it
    /// keep waiting and will only be served if it is re-published.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownPage`] if the page is not live.
    pub fn expire(&mut self, page: PageId) -> Result<(), StationError> {
        self.scheduler
            .remove_page(page)
            .map_err(|_| StationError::UnknownPage { page })
    }

    /// Registers a client waiting for `page` from the current instant.
    ///
    /// # Errors
    ///
    /// Returns [`StationError::UnknownPage`] for a page not in the
    /// catalogue (a real frontend would route such clients to the
    /// on-demand channel).
    pub fn subscribe(&mut self, page: PageId) -> Result<ClientId, StationError> {
        if !self.scheduler.pages().contains_key(&page) {
            return Err(StationError::UnknownPage { page });
        }
        let id = ClientId(self.next_client);
        self.next_client += 1;
        self.waiting.entry(page).or_default().push((id, self.time));
        self.stats.waiting += 1;
        Ok(id)
    }

    /// Transmits one slot: every channel sends its scheduled page, waiting
    /// clients whose page aired are served, and the clock advances.
    pub fn tick(&mut self) -> TickOutcome {
        let program = self.scheduler.program();
        let column = self.time % program.cycle_len();
        let on_air: Vec<Option<PageId>> = (0..program.channels())
            .map(|ch| program.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(column))))
            .collect();

        let mut deliveries = Vec::new();
        for page in on_air.iter().flatten() {
            if let Some(waiters) = self.waiting.remove(page) {
                let expected = self.scheduler.pages().get(page).copied();
                for (client, since) in waiters {
                    // Received at the end of this slot.
                    let wait = self.time - since + 1;
                    let within = expected.is_some_and(|t| wait <= t);
                    deliveries.push(Delivery {
                        client,
                        page: *page,
                        wait,
                        within_deadline: within,
                    });
                    self.stats.delivered += 1;
                    self.stats.total_wait += wait;
                    self.stats.waiting -= 1;
                    if within {
                        self.stats.on_time += 1;
                    }
                }
            }
        }

        let outcome = TickOutcome {
            time: self.time,
            on_air,
            deliveries,
        };
        self.time += 1;
        self.stats.slots_elapsed += 1;
        outcome
    }

    /// Ticks `slots` times, returning all deliveries in order.
    pub fn run(&mut self, slots: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        for _ in 0..slots {
            out.extend(self.tick().deliveries);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station_with_catalogue() -> Station {
        let mut s = Station::new(2, 8).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 4).unwrap();
        s.publish(PageId::new(2), 8).unwrap();
        s
    }

    #[test]
    fn subscribers_are_served_within_deadline() {
        let mut s = station_with_catalogue();
        // Subscribe to everything at various instants; every delivery must
        // be on time because the schedule is valid.
        let mut pending = Vec::new();
        for round in 0..16u64 {
            let page = PageId::new(u32::try_from(round % 3).unwrap());
            pending.push((s.subscribe(page).unwrap(), page));
            let tick = s.tick();
            for d in &tick.deliveries {
                assert!(d.within_deadline, "{d:?}");
            }
        }
        // Drain the rest.
        s.run(16);
        assert_eq!(s.stats().waiting, 0);
        assert_eq!(s.stats().on_time, s.stats().delivered);
        assert!(s.stats().mean_wait() >= 1.0);
        assert_eq!(s.stats().on_time_rate(), 1.0);
    }

    #[test]
    fn unknown_page_subscription_is_rejected() {
        let mut s = station_with_catalogue();
        let err = s.subscribe(PageId::new(9)).unwrap_err();
        assert!(matches!(err, StationError::UnknownPage { .. }));
        assert!(err.to_string().contains("not in the catalogue"));
    }

    #[test]
    fn publish_duplicate_and_bad_times_error() {
        let mut s = station_with_catalogue();
        assert!(matches!(
            s.publish(PageId::new(0), 4),
            Err(StationError::Schedule(_))
        ));
        assert!(s.publish(PageId::new(9), 3).is_err()); // 3 does not divide 8
        assert!(s.publish(PageId::new(9), 0).is_err());
    }

    #[test]
    fn expire_stops_transmission() {
        let mut s = station_with_catalogue();
        s.expire(PageId::new(0)).unwrap();
        assert!(s.expire(PageId::new(0)).is_err());
        for _ in 0..16 {
            let tick = s.tick();
            assert!(
                !tick.on_air.contains(&Some(PageId::new(0))),
                "expired page still on air"
            );
        }
    }

    #[test]
    fn capacity_exhaustion_reports() {
        let mut s = Station::new(1, 2).unwrap();
        s.publish(PageId::new(0), 2).unwrap();
        s.publish(PageId::new(1), 2).unwrap();
        let err = s.publish(PageId::new(2), 2).unwrap_err();
        assert!(matches!(err, StationError::CapacityExhausted { .. }));
        assert!(err.to_string().contains("channel budget"));
    }

    #[test]
    fn publish_compacts_through_fragmentation() {
        // Same scenario as the OnlineScheduler fragmentation test, but via
        // the station's publish, which must self-heal.
        let mut s = Station::new(1, 4).unwrap();
        for i in 0..4 {
            s.publish(PageId::new(i), 4).unwrap();
        }
        s.expire(PageId::new(0)).unwrap();
        s.expire(PageId::new(3)).unwrap();
        s.publish(PageId::new(9), 2).unwrap(); // needs compaction
        assert_eq!(s.catalogue().len(), 3);
    }

    #[test]
    fn clock_and_stats_advance() {
        let mut s = station_with_catalogue();
        assert_eq!(s.now(), 0);
        s.run(10);
        assert_eq!(s.now(), 10);
        assert_eq!(s.stats().slots_elapsed, 10);
    }

    #[test]
    fn delivery_wait_is_exact() {
        let mut s = Station::new(1, 4).unwrap();
        s.publish(PageId::new(0), 4).unwrap(); // airs at slot 0 of each cycle
                                               // Let one full cycle pass, subscribe at t=4 (the page's slot).
        s.run(4);
        let client = s.subscribe(PageId::new(0)).unwrap();
        let tick = s.tick();
        assert_eq!(tick.deliveries.len(), 1);
        let d = tick.deliveries[0];
        assert_eq!(d.client, client);
        assert_eq!(d.wait, 1);
        assert!(d.within_deadline);
    }

    #[test]
    fn multiple_waiters_served_together() {
        let mut s = Station::new(1, 4).unwrap();
        s.publish(PageId::new(0), 4).unwrap();
        s.run(1); // move past the page's slot
        let a = s.subscribe(PageId::new(0)).unwrap();
        let b = s.subscribe(PageId::new(0)).unwrap();
        assert_ne!(a, b);
        let deliveries = s.run(4);
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.page == PageId::new(0)));
    }

    #[test]
    fn client_id_display() {
        let mut s = station_with_catalogue();
        let c = s.subscribe(PageId::new(0)).unwrap();
        assert_eq!(c.to_string(), "client0");
    }
}
