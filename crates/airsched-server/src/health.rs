//! Per-channel health monitoring for the broadcast station.
//!
//! The station reports every transmission attempt to a [`HealthMonitor`]
//! as a [`SlotObservation`]; the monitor aggregates them into windowed
//! error and stall rates per channel and compares them against
//! [`HealthThresholds`], emitting a typed [`ChannelEvent`] whenever a
//! channel crosses into or out of the degraded band. Hard outages and
//! recoveries (which the station learns about from the fault injector or
//! its manual failure API, not from observations) are reported through the
//! same event type so a single consumer sees the whole health picture.
//!
//! Rates are carried as integer *permille* (parts per thousand) so events
//! stay `Eq`/`Hash`-able and tick outcomes remain exactly comparable
//! across runs — a requirement for the deterministic chaos tests.

use airsched_core::types::ChannelId;

/// What the station observed on one channel in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotObservation {
    /// A frame went out intact.
    Clean,
    /// A transmission was due but the transmitter stalled.
    Stalled,
    /// A frame went out corrupted.
    Corrupt,
}

/// Thresholds that separate a healthy channel from a degraded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HealthThresholds {
    /// Observations per evaluation window (rates are computed once per
    /// full window).
    pub window: u32,
    /// Corrupt-frame rate, in permille, at or above which the channel is
    /// flagged degraded.
    pub error_permille: u32,
    /// Stall rate, in permille, at or above which the channel is flagged
    /// degraded.
    pub stall_permille: u32,
}

impl Default for HealthThresholds {
    /// 32-observation windows; 25% errors or stalls flag the channel.
    fn default() -> Self {
        Self {
            window: 32,
            error_permille: 250,
            stall_permille: 250,
        }
    }
}

/// A health-state transition on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelEvent {
    /// The channel's transmitter failed (hard outage).
    Down {
        /// The failed channel.
        channel: ChannelId,
        /// The slot the outage took effect.
        at: u64,
    },
    /// The channel's transmitter recovered.
    Up {
        /// The recovered channel.
        channel: ChannelId,
        /// The slot the recovery took effect.
        at: u64,
    },
    /// The channel's windowed error/stall rates crossed the degraded
    /// threshold.
    Degraded {
        /// The degraded channel.
        channel: ChannelId,
        /// The slot the window completed.
        at: u64,
        /// Corrupt-frame rate over the window, in permille.
        error_permille: u32,
        /// Stall rate over the window, in permille.
        stall_permille: u32,
    },
    /// A previously degraded channel completed a window back under the
    /// thresholds.
    Healthy {
        /// The recovered channel.
        channel: ChannelId,
        /// The slot the window completed.
        at: u64,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct ChannelHealth {
    samples: u32,
    errors: u32,
    stalls: u32,
    degraded: bool,
}

/// Windowed per-channel error/stall-rate tracking.
///
/// # Examples
///
/// ```
/// use airsched_core::types::ChannelId;
/// use airsched_server::health::{
///     ChannelEvent, HealthMonitor, HealthThresholds, SlotObservation,
/// };
///
/// let thresholds = HealthThresholds { window: 4, error_permille: 500, stall_permille: 500 };
/// let mut monitor = HealthMonitor::new(2, thresholds);
/// let ch = ChannelId::new(0);
/// // Three corrupt frames out of four trip the 50% threshold.
/// monitor.record(ch, SlotObservation::Corrupt, 0);
/// monitor.record(ch, SlotObservation::Corrupt, 1);
/// monitor.record(ch, SlotObservation::Clean, 2);
/// let event = monitor.record(ch, SlotObservation::Corrupt, 3);
/// assert!(matches!(event, Some(ChannelEvent::Degraded { error_permille: 750, .. })));
/// assert!(monitor.is_degraded(ch));
/// ```
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    thresholds: HealthThresholds,
    channels: Vec<ChannelHealth>,
}

impl HealthMonitor {
    /// A monitor for `channels` channels, all initially healthy.
    ///
    /// A zero `window` in the thresholds is bumped to 1 (an empty window
    /// can never complete).
    #[must_use]
    pub fn new(channels: u32, mut thresholds: HealthThresholds) -> Self {
        thresholds.window = thresholds.window.max(1);
        Self {
            thresholds,
            channels: vec![ChannelHealth::default(); channels as usize],
        }
    }

    /// The active thresholds.
    #[must_use]
    pub fn thresholds(&self) -> HealthThresholds {
        self.thresholds
    }

    /// Whether `channel` is currently flagged degraded (out-of-range
    /// channels are not).
    #[must_use]
    pub fn is_degraded(&self, channel: ChannelId) -> bool {
        self.channels
            .get(channel.index() as usize)
            .is_some_and(|c| c.degraded)
    }

    /// Records one observation; returns an event if the completed window
    /// moved the channel across the degraded boundary.
    ///
    /// Out-of-range channels are ignored.
    pub fn record(
        &mut self,
        channel: ChannelId,
        observation: SlotObservation,
        at: u64,
    ) -> Option<ChannelEvent> {
        let state = self.channels.get_mut(channel.index() as usize)?;
        state.samples += 1;
        match observation {
            SlotObservation::Clean => {}
            SlotObservation::Stalled => state.stalls += 1,
            SlotObservation::Corrupt => state.errors += 1,
        }
        if state.samples < self.thresholds.window {
            return None;
        }
        let error_permille = state.errors * 1000 / state.samples;
        let stall_permille = state.stalls * 1000 / state.samples;
        let was_degraded = state.degraded;
        state.degraded = error_permille >= self.thresholds.error_permille
            || stall_permille >= self.thresholds.stall_permille;
        let now_degraded = state.degraded;
        state.samples = 0;
        state.errors = 0;
        state.stalls = 0;
        match (was_degraded, now_degraded) {
            (false, true) => Some(ChannelEvent::Degraded {
                channel,
                at,
                error_permille,
                stall_permille,
            }),
            (true, false) => Some(ChannelEvent::Healthy { channel, at }),
            _ => None,
        }
    }

    /// Clears `channel`'s window and degraded flag — called when a channel
    /// recovers from a hard outage so pre-outage errors do not instantly
    /// re-flag it.
    pub fn reset(&mut self, channel: ChannelId) {
        if let Some(state) = self.channels.get_mut(channel.index() as usize) {
            *state = ChannelHealth::default();
        }
    }

    /// Captures every channel's in-flight window for checkpointing.
    #[must_use]
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            thresholds: self.thresholds,
            channels: self
                .channels
                .iter()
                .map(|c| ChannelHealthSnapshot {
                    samples: c.samples,
                    errors: c.errors,
                    stalls: c.stalls,
                    degraded: c.degraded,
                })
                .collect(),
        }
    }

    /// Rebuilds a monitor from a snapshot taken by [`Self::snapshot`].
    /// Subsequent [`Self::record`] calls behave bit-identically to the
    /// snapshotted monitor's continuation.
    #[must_use]
    pub fn from_snapshot(snapshot: &HealthSnapshot) -> Self {
        Self {
            thresholds: snapshot.thresholds,
            channels: snapshot
                .channels
                .iter()
                .map(|c| ChannelHealth {
                    samples: c.samples,
                    errors: c.errors,
                    stalls: c.stalls,
                    degraded: c.degraded,
                })
                .collect(),
        }
    }
}

/// One channel's in-flight health window, as captured by
/// [`HealthMonitor::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelHealthSnapshot {
    /// Observations accumulated in the current window.
    pub samples: u32,
    /// Corrupt frames seen in the current window.
    pub errors: u32,
    /// Stalls seen in the current window.
    pub stalls: u32,
    /// Whether the channel is currently flagged degraded.
    pub degraded: bool,
}

/// The full state of a [`HealthMonitor`] for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// The active thresholds.
    pub thresholds: HealthThresholds,
    /// Per-channel window state.
    pub channels: Vec<ChannelHealthSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId::new(i)
    }

    fn small_monitor() -> HealthMonitor {
        HealthMonitor::new(
            2,
            HealthThresholds {
                window: 4,
                error_permille: 500,
                stall_permille: 500,
            },
        )
    }

    #[test]
    fn clean_windows_stay_healthy() {
        let mut m = small_monitor();
        for t in 0..16 {
            assert_eq!(m.record(ch(0), SlotObservation::Clean, t), None);
        }
        assert!(!m.is_degraded(ch(0)));
    }

    #[test]
    fn degraded_then_healthy_round_trip() {
        let mut m = small_monitor();
        for t in 0..4 {
            let e = m.record(ch(0), SlotObservation::Corrupt, t);
            if t < 3 {
                assert_eq!(e, None);
            } else {
                assert_eq!(
                    e,
                    Some(ChannelEvent::Degraded {
                        channel: ch(0),
                        at: 3,
                        error_permille: 1000,
                        stall_permille: 0,
                    })
                );
            }
        }
        assert!(m.is_degraded(ch(0)));
        // A clean window flips it back exactly once.
        for t in 4..8 {
            let e = m.record(ch(0), SlotObservation::Clean, t);
            if t < 7 {
                assert_eq!(e, None);
            } else {
                assert_eq!(
                    e,
                    Some(ChannelEvent::Healthy {
                        channel: ch(0),
                        at: 7
                    })
                );
            }
        }
        assert!(!m.is_degraded(ch(0)));
    }

    #[test]
    fn stalls_count_toward_their_own_threshold() {
        let mut m = small_monitor();
        m.record(ch(1), SlotObservation::Stalled, 0);
        m.record(ch(1), SlotObservation::Stalled, 1);
        m.record(ch(1), SlotObservation::Clean, 2);
        let e = m.record(ch(1), SlotObservation::Clean, 3);
        assert_eq!(
            e,
            Some(ChannelEvent::Degraded {
                channel: ch(1),
                at: 3,
                error_permille: 0,
                stall_permille: 500,
            })
        );
    }

    #[test]
    fn reset_clears_the_degraded_flag() {
        let mut m = small_monitor();
        for t in 0..4 {
            m.record(ch(0), SlotObservation::Corrupt, t);
        }
        assert!(m.is_degraded(ch(0)));
        m.reset(ch(0));
        assert!(!m.is_degraded(ch(0)));
    }

    #[test]
    fn out_of_range_channels_are_inert() {
        let mut m = small_monitor();
        assert_eq!(m.record(ch(9), SlotObservation::Corrupt, 0), None);
        assert!(!m.is_degraded(ch(9)));
        m.reset(ch(9)); // no panic
    }

    #[test]
    fn snapshot_round_trips_mid_window() {
        let mut m = small_monitor();
        // Leave channel 0 two corrupt frames into a window, channel 1
        // degraded with one stall pending.
        m.record(ch(0), SlotObservation::Corrupt, 0);
        m.record(ch(0), SlotObservation::Corrupt, 1);
        for t in 0..4 {
            m.record(ch(1), SlotObservation::Stalled, t);
        }
        m.record(ch(1), SlotObservation::Stalled, 4);
        let snap = m.snapshot();
        let mut restored = HealthMonitor::from_snapshot(&snap);
        assert!(restored.is_degraded(ch(1)));
        assert!(!restored.is_degraded(ch(0)));
        // Both monitors complete their windows identically.
        for t in 5..12 {
            assert_eq!(
                m.record(ch(0), SlotObservation::Corrupt, t),
                restored.record(ch(0), SlotObservation::Corrupt, t),
                "slot {t}"
            );
            assert_eq!(
                m.record(ch(1), SlotObservation::Clean, t),
                restored.record(ch(1), SlotObservation::Clean, t),
                "slot {t}"
            );
        }
        assert_eq!(m.snapshot(), restored.snapshot());
    }

    #[test]
    fn zero_window_is_bumped_to_one() {
        let mut m = HealthMonitor::new(
            1,
            HealthThresholds {
                window: 0,
                error_permille: 1,
                stall_permille: 1,
            },
        );
        assert_eq!(m.thresholds().window, 1);
        // Every corrupt observation completes a window immediately.
        assert!(m.record(ch(0), SlotObservation::Corrupt, 0).is_some());
    }
}
