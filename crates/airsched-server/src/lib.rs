//! # airsched-server
//!
//! A runnable time-constrained broadcast station, built from the
//! scheduling machinery of [`airsched_core`]: a live catalogue with
//! publish/expire, client subscriptions delivered the moment their page
//! airs, a slot-by-slot transmission clock, and live statistics. The
//! schedule stays *valid* (every catalogue page within its expected time
//! from any instant) through every change, by way of the online scheduler
//! and automatic compaction.
//!
//! ```
//! use airsched_core::types::PageId;
//! use airsched_server::Station;
//!
//! let mut station = Station::new(2, 8)?;
//! station.publish(PageId::new(0), 2)?;   // must air every 2 slots
//! station.publish(PageId::new(1), 8)?;
//! let client = station.subscribe(PageId::new(1))?;
//! let deliveries = station.run(8);       // one full cycle serves everyone
//! assert!(deliveries.iter().any(|d| d.client == client && d.within_deadline));
//! # Ok::<(), airsched_server::StationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::all)]

pub mod station;

pub use station::{ClientId, Delivery, Station, StationError, StationStats, TickOutcome};
