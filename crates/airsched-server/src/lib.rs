//! # airsched-server
//!
//! A runnable, fault-tolerant time-constrained broadcast station, built
//! from the scheduling machinery of [`airsched_core`]: a live catalogue
//! with publish/expire, client subscriptions delivered the moment their
//! page airs, a slot-by-slot transmission clock, and live statistics. The
//! schedule stays *valid* (every catalogue page within its expected time
//! from any instant) through every change, by way of the online scheduler
//! and automatic compaction.
//!
//! When transmitters fail, the station walks a degradation ladder instead
//! of falling over: it re-packs the catalogue into a still-valid SUSC
//! program while the survivors meet Theorem 3.1's minimum, fails over to
//! PAMAD best-effort below it, and climbs back on recovery — preserving
//! every in-flight subscription. Faults come from a deterministic,
//! seed-driven injector ([`faults`]), and a windowed health monitor
//! ([`health`]) flags noisy channels before they die. Every replan
//! candidate passes a pre-swap lint gate ([`airsched_lint`]) before it
//! reaches the air: a corrupted candidate is refused and the previous
//! program keeps serving.
//!
//! ```
//! use airsched_core::types::PageId;
//! use airsched_server::Station;
//!
//! let mut station = Station::new(2, 8)?;
//! station.publish(PageId::new(0), 2)?;   // must air every 2 slots
//! station.publish(PageId::new(1), 8)?;
//! let client = station.subscribe(PageId::new(1))?;
//! let deliveries = station.run(8);       // one full cycle serves everyone
//! assert!(deliveries.iter().any(|d| d.client == client && d.within_deadline));
//! # Ok::<(), airsched_server::StationError>(())
//! ```
//!
//! Injecting faults is just as direct:
//!
//! ```
//! use airsched_core::types::{ChannelId, PageId};
//! use airsched_server::faults::{FaultEvent, FaultPlan};
//! use airsched_server::{Mode, Station};
//!
//! let plan = FaultPlan::scripted(vec![
//!     FaultEvent::Down { at: 4, channel: ChannelId::new(1) },
//! ]);
//! let mut station = Station::with_faults(2, 8, &plan)?;
//! station.publish(PageId::new(0), 4)?;
//! station.run(4);
//! assert_eq!(station.mode(), Mode::Valid);
//! station.tick();                        // slot 4: the outage lands
//! assert_eq!(station.mode(), Mode::Repacked);
//! # Ok::<(), airsched_server::StationError>(())
//! ```

pub mod faults;
pub mod health;
mod pool;
pub mod station;
pub mod transmit;
mod waiting;

pub use faults::{FaultEvent, FaultInjector, FaultInjectorSnapshot, FaultPlan, SlotFaults};
pub use health::{
    ChannelEvent, ChannelHealthSnapshot, HealthMonitor, HealthSnapshot, HealthThresholds,
    SlotObservation,
};
pub use station::{
    ActivePlanSnapshot, ClientId, DegradationPolicy, Delivery, Mode, ModeTally, PlanCells,
    PlanCorruptor, ProgramSnapshot, Station, StationError, StationSnapshot, StationStats, TickBuf,
    TickOutcome,
};
pub use transmit::SlotBroadcaster;
