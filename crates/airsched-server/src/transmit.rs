//! The station's wire side: template-cached slot encoding.
//!
//! [`SlotBroadcaster`] owns a [`FrameTemplateCache`] built from the
//! station's effective on-air grid ([`Station::plan_cells`]) and keyed on
//! [`Station::plan_epoch`]: in steady state each slot is emitted by
//! memcpy-ing pre-encoded wire images and patching only the eight
//! `slot_time` bytes plus an incrementally-corrected CRC, instead of
//! re-walking header fields, payload bytes and the full CRC every tick
//! (the "encode wall" — see DESIGN.md §13).
//!
//! Invalidation is epoch-driven, not guessed: every path that can change
//! what a column puts on the air — publish, expire, manual fail/restore,
//! a policy change, any in-tick ladder move — bumps the station's plan
//! epoch, and the broadcaster rebuilds its cache on the next slot. Per
//! slot stalls need no rebuild (a `None` carrier patches the channel's
//! idle template), and drift that slips through anyway (a column computed
//! just before a swap) is caught by the cache's plan-drift check,
//! answered with one rebuild-and-retry, and — if the column still
//! disagrees — a fresh encode, so the emitted bytes are *always* exactly
//! what the fresh encoder would produce.
//!
//! A broadcaster is bound to one station instance: the epoch is not
//! snapshotted, so after [`Station::from_snapshot`] bind a fresh
//! broadcaster (its first slot rebuilds from the restored plan, keeping
//! recovery byte-identical).

use airsched_core::types::PageId;
use airsched_proto::frame::EncodeError;
use airsched_proto::template::{CyclicPayloads, CyclicSource, FrameTemplateCache};
use airsched_proto::transmitter::encode_slot_into;
use bytes::BytesMut;

use crate::station::Station;

/// Encodes one slot of air time per call, serving frames from a
/// plan-epoch-keyed [`FrameTemplateCache`] and falling back to fresh
/// encoding only when the cache provably disagrees with the column.
///
/// ```
/// use airsched_core::types::PageId;
/// use airsched_proto::transmitter::FixedPayloads;
/// use airsched_server::{SlotBroadcaster, Station, TickBuf};
/// use bytes::{Bytes, BytesMut};
///
/// let mut station = Station::new(2, 8)?;
/// station.publish(PageId::new(0), 2)?;
/// let mut tx = SlotBroadcaster::new(FixedPayloads::new(Bytes::from_static(b"body")));
/// let mut buf = TickBuf::default();
/// let mut wire = BytesMut::new();
/// station.tick_into(&mut buf);
/// let written = tx.encode_slot(&station, buf.on_air(), buf.time(), &mut wire)?;
/// assert_eq!(written, wire.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SlotBroadcaster<P> {
    payloads: P,
    cache: Option<FrameTemplateCache>,
    /// The [`Station::plan_epoch`] the cache was built at; `None` until
    /// the first slot.
    built_epoch: Option<u64>,
    rebuilds: u64,
    fresh_fallbacks: u64,
    /// Registry mirrors for the two counters above (single-writer
    /// `store` after each encode), installed by
    /// [`SlotBroadcaster::attach_obs`].
    obs_counters: Option<(
        airsched_obs::metrics::Counter,
        airsched_obs::metrics::Counter,
    )>,
}

impl<P> std::fmt::Debug for SlotBroadcaster<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotBroadcaster")
            .field("built_epoch", &self.built_epoch)
            .field("rebuilds", &self.rebuilds)
            .field("fresh_fallbacks", &self.fresh_fallbacks)
            .finish_non_exhaustive()
    }
}

impl<P: CyclicPayloads> SlotBroadcaster<P> {
    /// Wraps a payload supplier; the first [`SlotBroadcaster::encode_slot`]
    /// builds the cache.
    pub fn new(payloads: P) -> Self {
        Self {
            payloads,
            cache: None,
            built_epoch: None,
            rebuilds: 0,
            fresh_fallbacks: 0,
            obs_counters: None,
        }
    }

    /// Registers the broadcaster's template counters
    /// (`airsched_transmit_template_rebuilds_total`,
    /// `airsched_transmit_fresh_fallbacks_total`) with `obs` and mirrors
    /// them after every encode. Series appear immediately (value 0), so
    /// exposition is stable whether or not a rebuild has happened yet.
    pub fn attach_obs(&mut self, obs: &airsched_obs::Obs) {
        let reg = obs.registry();
        let rebuilds = reg.counter("airsched_transmit_template_rebuilds_total", &[]);
        let fallbacks = reg.counter("airsched_transmit_fresh_fallbacks_total", &[]);
        rebuilds.store(self.rebuilds);
        fallbacks.store(self.fresh_fallbacks);
        self.obs_counters = Some((rebuilds, fallbacks));
    }

    /// Appends one encoded slot — one frame per physical channel, idle
    /// frames for `None` carriers — to `buf`, returning the bytes
    /// written. `on_air` is the tick's post-stall column
    /// ([`crate::TickBuf::on_air`]) and `slot_time` its slot
    /// ([`crate::TickBuf::time`]); the output is byte-identical to
    /// running the fresh encoder over the same column.
    ///
    /// # Errors
    ///
    /// Propagates [`EncodeError`] from a cache rebuild or fresh-encode
    /// fallback (a channel index or payload too wide for the wire
    /// format) with nothing appended for the offending slot.
    pub fn encode_slot(
        &mut self,
        station: &Station,
        on_air: &[Option<PageId>],
        slot_time: u64,
        buf: &mut BytesMut,
    ) -> Result<usize, EncodeError> {
        let result = self.encode_slot_inner(station, on_air, slot_time, buf);
        if let Some((rebuilds, fallbacks)) = &self.obs_counters {
            rebuilds.store(self.rebuilds);
            fallbacks.store(self.fresh_fallbacks);
        }
        result
    }

    fn encode_slot_inner(
        &mut self,
        station: &Station,
        on_air: &[Option<PageId>],
        slot_time: u64,
        buf: &mut BytesMut,
    ) -> Result<usize, EncodeError> {
        let epoch = station.plan_epoch();
        if self.built_epoch != Some(epoch) || self.cache.is_none() {
            self.rebuild(station)?;
        }
        let cache = self.cache.as_mut().expect("rebuild installs a cache");
        if let Ok(written) = cache.encode_slot_into(on_air, slot_time, buf) {
            return Ok(written);
        }
        // The column disagrees with the cached plan (drift the epoch did
        // not cover, e.g. a column captured just before a swap): rebuild
        // once and retry, then encode fresh if it still disagrees. Either
        // way the emitted bytes match the fresh encoder's.
        self.rebuild(station)?;
        let cache = self.cache.as_mut().expect("rebuild installs a cache");
        if let Ok(written) = cache.encode_slot_into(on_air, slot_time, buf) {
            return Ok(written);
        }
        self.fresh_fallbacks += 1;
        encode_slot_into(
            on_air,
            slot_time,
            &mut CyclicSource::new(&mut self.payloads),
            buf,
        )
    }

    /// Rebuilds the template cache from the station's current effective
    /// grid and records the epoch it captured.
    fn rebuild(&mut self, station: &Station) -> Result<(), EncodeError> {
        let plan = station.plan_cells();
        self.cache = Some(FrameTemplateCache::from_cells(
            plan.channels,
            plan.cycle_len,
            &plan.cells,
            &mut self.payloads,
        )?);
        self.built_epoch = Some(station.plan_epoch());
        self.rebuilds += 1;
        Ok(())
    }

    /// How many times the cache was (re)built — 1 after the first slot
    /// of an unchanging plan, +1 per plan change encountered since.
    #[must_use]
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Slots that fell all the way back to the fresh encoder (cache
    /// disagreed with the column even after a rebuild). Zero in any
    /// steady pipeline.
    #[must_use]
    pub fn fresh_fallbacks(&self) -> u64 {
        self.fresh_fallbacks
    }

    /// The live cache, if one has been built.
    #[must_use]
    pub fn cache(&self) -> Option<&FrameTemplateCache> {
        self.cache.as_ref()
    }

    /// The payload supplier.
    pub fn payloads_mut(&mut self) -> &mut P {
        &mut self.payloads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::TickBuf;
    use airsched_core::types::ChannelId;

    /// Per-page deterministic payloads, page-keyed (the template
    /// contract) with distinct lengths so delta tables are exercised.
    #[derive(Debug, Clone, Default)]
    struct PagePayloads;

    impl CyclicPayloads for PagePayloads {
        fn page_payload(&mut self, page: PageId, out: &mut BytesMut) {
            let n = (page.index() as usize % 5) * 17 + 3;
            out.extend_from_slice(
                &(0..n)
                    .map(|i| (i as u8) ^ (page.index() as u8).wrapping_mul(73))
                    .collect::<Vec<u8>>(),
            );
        }
    }

    fn build_station() -> Station {
        let mut station = Station::new(3, 8).expect("station builds");
        station.publish(PageId::new(0), 2).expect("publishes");
        station.publish(PageId::new(1), 4).expect("publishes");
        station.publish(PageId::new(2), 8).expect("publishes");
        station.publish(PageId::new(3), 8).expect("publishes");
        station
    }

    /// One tick's wire bytes from the fresh encoder, for comparison.
    fn fresh_bytes(on_air: &[Option<PageId>], slot_time: u64) -> BytesMut {
        let mut buf = BytesMut::new();
        encode_slot_into(
            on_air,
            slot_time,
            &mut CyclicSource::new(&mut PagePayloads),
            &mut buf,
        )
        .expect("fresh encoding succeeds");
        buf
    }

    #[test]
    fn plan_epoch_moves_on_every_invalidation_point() {
        let mut station = build_station();
        let mut last = station.plan_epoch();
        let expect_bump = |station: &Station, what: &str, last: &mut u64| {
            assert!(
                station.plan_epoch() > *last,
                "{what} must bump the plan epoch"
            );
            *last = station.plan_epoch();
        };
        station.publish(PageId::new(4), 8).expect("publishes");
        expect_bump(&station, "publish", &mut last);
        station.expire(PageId::new(4)).expect("expires");
        expect_bump(&station, "expire", &mut last);
        station.fail_channel(ChannelId::new(2));
        expect_bump(&station, "fail_channel", &mut last);
        station.restore_channel(ChannelId::new(2));
        expect_bump(&station, "restore_channel", &mut last);
        station.set_degradation_policy(crate::station::DegradationPolicy::default());
        expect_bump(&station, "set_degradation_policy", &mut last);
        // Plain ticking of an unchanged plan must NOT bump: steady state
        // keeps the cache.
        let mut buf = TickBuf::default();
        station.tick_into(&mut buf);
        assert_eq!(station.plan_epoch(), last, "a quiet tick keeps the epoch");
    }

    #[test]
    fn template_slots_match_fresh_encoding_through_the_ladder() {
        let mut station = build_station();
        let mut tx = SlotBroadcaster::new(PagePayloads);
        let mut buf = TickBuf::default();
        let mut wire = BytesMut::new();
        let mut check = |station: &mut Station, tx: &mut SlotBroadcaster<PagePayloads>| {
            station.tick_into(&mut buf);
            wire.clear();
            let written = tx
                .encode_slot(station, buf.on_air(), buf.time(), &mut wire)
                .expect("slot encodes");
            assert_eq!(written, wire.len());
            assert_eq!(
                &wire[..],
                &fresh_bytes(buf.on_air(), buf.time())[..],
                "slot {} diverged from the fresh encoder",
                buf.time()
            );
        };
        for _ in 0..16 {
            check(&mut station, &mut tx);
        }
        assert_eq!(tx.rebuilds(), 1, "a steady plan builds once");
        // Walk down the ladder (repack, then best-effort) and back up,
        // publishing mid-degradation; every slot must stay byte-exact.
        station.fail_channel(ChannelId::new(2));
        for _ in 0..8 {
            check(&mut station, &mut tx);
        }
        station.fail_channel(ChannelId::new(1));
        station.publish(PageId::new(9), 8).expect("publishes");
        for _ in 0..8 {
            check(&mut station, &mut tx);
        }
        station.restore_channel(ChannelId::new(1));
        station.restore_channel(ChannelId::new(2));
        for _ in 0..8 {
            check(&mut station, &mut tx);
        }
        assert_eq!(
            tx.fresh_fallbacks(),
            0,
            "epoch keying covers every plan change"
        );
    }

    #[test]
    fn restored_station_with_fresh_broadcaster_is_byte_identical() {
        let mut station = build_station();
        let mut tx = SlotBroadcaster::new(PagePayloads);
        let mut buf = TickBuf::default();
        let mut wire = BytesMut::new();
        for _ in 0..5 {
            station.tick_into(&mut buf);
            wire.clear();
            tx.encode_slot(&station, buf.on_air(), buf.time(), &mut wire)
                .expect("slot encodes");
        }
        station.fail_channel(ChannelId::new(0));
        let snapshot = station.snapshot();
        // The survivor continues; the twin restores and binds a fresh
        // broadcaster, as crash recovery must.
        let mut twin = Station::from_snapshot(&snapshot, None).expect("snapshot restores");
        let mut twin_tx = SlotBroadcaster::new(PagePayloads);
        let mut twin_buf = TickBuf::default();
        let mut twin_wire = BytesMut::new();
        for _ in 0..12 {
            station.tick_into(&mut buf);
            wire.clear();
            tx.encode_slot(&station, buf.on_air(), buf.time(), &mut wire)
                .expect("slot encodes");
            twin.tick_into(&mut twin_buf);
            twin_wire.clear();
            twin_tx
                .encode_slot(&twin, twin_buf.on_air(), twin_buf.time(), &mut twin_wire)
                .expect("twin slot encodes");
            assert_eq!(buf.time(), twin_buf.time());
            assert_eq!(
                &wire[..],
                &twin_wire[..],
                "restored slot {} diverged on the wire",
                buf.time()
            );
        }
    }

    #[test]
    fn stale_column_falls_back_without_wrong_bytes() {
        // Encode a column captured *before* a plan change with the
        // post-change station: the epoch rebuild makes the cache disagree
        // with the stale column, so the broadcaster must take the fresh
        // path — and still emit exactly what the fresh encoder does.
        let mut station = build_station();
        let mut tx = SlotBroadcaster::new(PagePayloads);
        let mut buf = TickBuf::default();
        station.tick_into(&mut buf);
        let stale: Vec<Option<PageId>> = buf.on_air().to_vec();
        let stale_time = buf.time();
        let mut wire = BytesMut::new();
        tx.encode_slot(&station, &stale, stale_time, &mut wire)
            .expect("pre-change slot encodes");
        station.expire(PageId::new(0)).expect("expires");
        station.publish(PageId::new(7), 2).expect("publishes");
        wire.clear();
        tx.encode_slot(&station, &stale, stale_time, &mut wire)
            .expect("stale column still encodes");
        assert_eq!(&wire[..], &fresh_bytes(&stale, stale_time)[..]);
        assert!(
            tx.fresh_fallbacks() >= 1,
            "a genuinely stale column exercises the fallback"
        );
    }
}
