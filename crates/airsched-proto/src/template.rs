//! Cyclic frame templates: pre-encoded wire images patched per slot.
//!
//! Broadcast programs are *periodic* — every channel repeats a fixed cycle
//! of pages — so across the whole run a channel's slot differs from the
//! same slot one cycle earlier in exactly one header field: the 8-byte
//! `slot_time`. The fresh encoder still rebuilds the header, copies the
//! payload, and re-scans every byte for the CRC each slot. This module
//! hoists all of that to plan-publish time: [`FrameTemplateCache`]
//! pre-encodes one wire image per `(channel, slot-in-cycle)` cell, and the
//! per-slot work collapses to one `memcpy` of the image plus an 8-byte
//! `slot_time` patch and an *incremental* CRC fix-up.
//!
//! # Why the CRC can be patched without a re-scan
//!
//! CRC-16/CCITT-FALSE processes a message one byte at a time:
//! `s' = A(s) ^ T[b ^ hi(s)]` where `T` is the byte table and
//! `A(s) = (s << 8) ^ T[hi(s)]` is the state advance for a zero byte.
//! Both `A` and `T` are linear over GF(2) (`T[a ^ b] = T[a] ^ T[b]`, pinned
//! by a test below), which makes the whole CRC an *affine* function of the
//! message: for two equal-length messages `m1`, `m2` the nonlinear parts —
//! the `0xFFFF` init and every byte the messages share — cancel, leaving
//!
//! ```text
//! crc(m1) ^ crc(m2) = L(m1 ^ m2)
//! ```
//!
//! with `L` linear. When the messages differ only in the 8 `slot_time`
//! bytes, `L` collapses to eight 256-entry lookup tables — one per slot
//! byte position, each entry pre-advanced over the `tail_len` bytes that
//! follow the slot field ([`DeltaTable`]). Templates bake `slot_time = 0`,
//! so the XOR of the fields *is* the new slot bytes, and the patched CRC is
//! `base_crc ^ delta(slot_time)` — 8 lookups instead of a full message
//! scan, identical bit-for-bit to re-encoding (the fresh
//! [`crate::transmitter::encode_slot_into`] stays as the reference, and
//! the lockstep gates in `station_perf` compare the two byte-for-byte).
//!
//! # Invalidation
//!
//! The cache is a snapshot of one plan. Callers must rebuild it whenever
//! the plan changes shape: plan swap/publish, a degradation-ladder repack
//! (channel failure or recovery), or recovery `restore()`. Stalls need no
//! rebuild — a stalled or down channel airs the cached per-channel idle
//! template. [`FrameTemplateCache::encode_slot_into`] detects a stale
//! cache (`on_air` naming a page the cached plan does not have in that
//! cell) and returns [`TemplateError::PlanDrift`] instead of emitting
//! wrong bytes.

use std::collections::BTreeMap;

use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
use bytes::{Bytes, BytesMut};

use crate::frame::{
    crc16, crc16_advance_zero, EncodeError, CRC16_TABLE, FLAG_IDLE, HEADER_LEN, MAGIC, MAX_PAYLOAD,
    VERSION,
};
use crate::transmitter::PayloadSource;

/// Byte offset of the `slot_time` field in a frame header.
const SLOT_TIME_OFFSET: usize = 8;
/// Byte offset of the CRC field in a frame header.
const CRC_OFFSET: usize = HEADER_LEN - 2;
/// Header bytes after the `slot_time` field that feed the CRC
/// (page id + payload length).
const HEADER_TAIL: usize = CRC_OFFSET - (SLOT_TIME_OFFSET + 8);

/// Supplies the payload bytes for a page when its template is built.
///
/// Unlike [`PayloadSource`], the payload may not depend on the slot time:
/// the same bytes air every time the page's cell comes around in the
/// cycle, which is exactly what makes the template reusable. (This matches
/// the paper's model — a page is one fixed unit of content rebroadcast
/// periodically.) Use [`CyclicSource`] to drive the fresh encoder from the
/// same payloads when comparing the two paths.
pub trait CyclicPayloads {
    /// Appends the payload for `page` to `out`.
    fn page_payload(&mut self, page: PageId, out: &mut BytesMut);
}

/// Adapts a [`CyclicPayloads`] to the slot-aware [`PayloadSource`] trait so
/// the fresh encoder ([`crate::transmitter::encode_slot_into`]) can be run
/// on the exact payloads a template cache was built from — the basis of
/// every template-vs-fresh lockstep gate.
#[derive(Debug)]
pub struct CyclicSource<'a, P> {
    inner: &'a mut P,
}

impl<'a, P> CyclicSource<'a, P> {
    /// Wraps a cyclic payload supplier.
    pub fn new(inner: &'a mut P) -> Self {
        Self { inner }
    }
}

impl<P: CyclicPayloads> PayloadSource for CyclicSource<'_, P> {
    fn payload(&mut self, page: PageId, _slot_time: u64) -> Bytes {
        let mut buf = BytesMut::new();
        self.inner.page_payload(page, &mut buf);
        buf.freeze()
    }

    fn payload_into(&mut self, page: PageId, _slot_time: u64, out: &mut BytesMut) {
        self.inner.page_payload(page, out);
    }
}

/// The linear delta operator `L` for one message shape: maps the XOR of
/// the 8 `slot_time` bytes straight onto the XOR of the checksums, for
/// messages whose slot field is followed by exactly `tail_len` bytes.
///
/// `entry(pos, v)` is the checksum contribution of XOR byte `v` at slot
/// byte position `pos` (0 = most significant). Built from the CRC byte
/// table by repeated zero-byte advances: position 7's entries are
/// `A^tail_len(T[v])`, and each earlier position is one more advance of
/// the next. Linearity of `T` lets the base row be assembled from the 8
/// single-bit columns instead of advancing all 256 entries.
#[derive(Debug, Clone)]
pub struct DeltaTable {
    tbl: Box<[[u16; 256]; 8]>,
}

impl DeltaTable {
    /// Builds the delta operator for a slot field followed by `tail_len`
    /// bytes (for a wire frame: 6 header bytes + the payload length).
    #[must_use]
    pub fn new(tail_len: usize) -> Self {
        // Advance each single-bit basis column over the tail once, then
        // expand to all 256 byte values by GF(2) linearity.
        let mut basis = [0u16; 8];
        for (bit, slot) in basis.iter_mut().enumerate() {
            let mut s = CRC16_TABLE[1usize << bit];
            for _ in 0..tail_len {
                s = crc16_advance_zero(s);
            }
            *slot = s;
        }
        let mut tbl = Box::new([[0u16; 256]; 8]);
        for v in 0..256usize {
            let mut d = 0u16;
            for (bit, &contribution) in basis.iter().enumerate() {
                if v & (1 << bit) != 0 {
                    d ^= contribution;
                }
            }
            tbl[7][v] = d;
        }
        for pos in (0..7).rev() {
            for v in 0..256 {
                tbl[pos][v] = crc16_advance_zero(tbl[pos + 1][v]);
            }
        }
        Self { tbl }
    }

    /// The checksum contribution of XOR byte `value` at slot byte
    /// position `pos` (0 = most significant byte of `slot_time`).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 8`.
    #[must_use]
    pub fn entry(&self, pos: usize, value: u8) -> u16 {
        self.tbl[pos][usize::from(value)]
    }

    /// Maps the XOR of the 8 slot bytes onto the XOR of the checksums.
    #[must_use]
    pub fn delta(&self, xor: [u8; 8]) -> u16 {
        let mut d = 0u16;
        for (pos, &b) in xor.iter().enumerate() {
            d ^= self.tbl[pos][usize::from(b)];
        }
        d
    }
}

/// One pre-encoded wire image (with `slot_time = 0` baked in).
#[derive(Debug, Clone)]
struct Template {
    bytes: Box<[u8]>,
    base_crc: u16,
    /// Index into the cache's [`DeltaTable`] list (one per distinct
    /// payload length).
    table: u32,
}

/// Frame counters for the template emit path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateStats {
    /// Data frames emitted by patching a cached template.
    pub data_frames: u64,
    /// Idle frames emitted by patching a cached idle template.
    pub idle_frames: u64,
}

/// Why a template emit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TemplateError {
    /// The on-air column names a page the cached plan does not have in
    /// that cell — the plan changed under the cache. Rebuild and retry.
    PlanDrift {
        /// The channel whose cell disagreed.
        channel: u32,
        /// The slot being encoded.
        slot_time: u64,
        /// What the cached plan has in the cell.
        expected: Option<PageId>,
        /// What the on-air column asked for.
        found: PageId,
    },
    /// The on-air column width differs from the cached channel count.
    ChannelMismatch {
        /// Channels the cache was built for.
        cached: u32,
        /// Channels in the on-air column.
        found: usize,
    },
}

impl core::fmt::Display for TemplateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::PlanDrift {
                channel,
                slot_time,
                expected,
                found,
            } => write!(
                f,
                "plan drift on channel {channel} at slot {slot_time}: \
                 cache holds {expected:?}, on-air wants {found}"
            ),
            Self::ChannelMismatch { cached, found } => write!(
                f,
                "on-air column has {found} channel(s) but the cache was \
                 built for {cached}"
            ),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Pre-encoded wire images for every `(channel, slot-in-cycle)` cell of
/// one broadcast plan, emitted per slot by patching `slot_time` and
/// fixing the CRC incrementally (see the module docs for the argument).
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_core::types::PageId;
/// use airsched_proto::template::{CyclicPayloads, FrameTemplateCache};
/// use bytes::BytesMut;
///
/// struct Fixed;
/// impl CyclicPayloads for Fixed {
///     fn page_payload(&mut self, page: PageId, out: &mut BytesMut) {
///         out.extend_from_slice(page.to_string().as_bytes());
///     }
/// }
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let mut cache = FrameTemplateCache::build(&program, &mut Fixed)?;
/// let mut buf = BytesMut::new();
/// let written = cache.encode_cycle_slot(7, &mut buf);
/// assert_eq!(written, buf.len());
/// // Every emitted frame decodes — the patched CRC is valid.
/// let (frames, used) = airsched_proto::decode_stream(&buf);
/// assert_eq!(used, buf.len());
/// assert_eq!(frames.len(), program.channels() as usize);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameTemplateCache {
    channels: u32,
    cycle_len: u64,
    templates: Vec<Template>,
    tables: Vec<DeltaTable>,
    /// Template index per cell, channel-major (`ch * cycle_len + column`);
    /// idle cells point at the channel's idle template.
    cells: Vec<u32>,
    /// The plan's page per cell, for drift detection.
    pages: Vec<Option<PageId>>,
    /// Idle template per channel.
    idle: Vec<u32>,
    /// Per-table slot delta for the slot being emitted.
    delta_scratch: Vec<u16>,
    stats: TemplateStats,
}

impl FrameTemplateCache {
    /// Pre-encodes every cell of `program`, pulling one payload per
    /// distinct page from `payloads`.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a channel index or payload does not
    /// fit its wire field.
    pub fn build<P: CyclicPayloads>(
        program: &BroadcastProgram,
        payloads: &mut P,
    ) -> Result<Self, EncodeError> {
        let channels = program.channels();
        let cycle_len = program.cycle_len();
        let mut cells =
            Vec::with_capacity(usize::try_from(program.capacity()).expect("grid fits in memory"));
        for ch in 0..channels {
            for col in 0..cycle_len {
                cells.push(program.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(col))));
            }
        }
        Self::from_cells(channels, cycle_len, &cells, payloads)
    }

    /// Pre-encodes an explicit channel-major grid (`cells[ch * cycle_len +
    /// column]`) — the entry point for a live station, whose effective grid
    /// under degraded plans is not a [`BroadcastProgram`].
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a channel index or payload does not
    /// fit its wire field.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_len` is zero or `cells.len() != channels *
    /// cycle_len`.
    pub fn from_cells<P: CyclicPayloads>(
        channels: u32,
        cycle_len: u64,
        cells: &[Option<PageId>],
        payloads: &mut P,
    ) -> Result<Self, EncodeError> {
        assert!(cycle_len > 0, "a plan cycle has at least one slot");
        let n = usize::try_from(u64::from(channels) * cycle_len).expect("grid fits in memory");
        assert_eq!(
            cells.len(),
            n,
            "cells must be channel-major, channels x cycle_len"
        );
        let mut cache = Self {
            channels,
            cycle_len,
            templates: Vec::new(),
            tables: Vec::new(),
            cells: Vec::with_capacity(n),
            pages: Vec::with_capacity(n),
            idle: Vec::with_capacity(channels as usize),
            delta_scratch: Vec::new(),
            stats: TemplateStats::default(),
        };
        let mut tables_by_len: BTreeMap<usize, u32> = BTreeMap::new();
        let mut by_key: BTreeMap<(u32, Option<u32>), u32> = BTreeMap::new();
        let mut payload = BytesMut::new();
        for ch in 0..channels {
            let ti = cache.intern(ch, None, &[], &mut tables_by_len, &mut by_key)?;
            cache.idle.push(ti);
        }
        for ch in 0..channels {
            for col in 0..cycle_len {
                let page = cells[cache.cell_index(ch as usize, col)];
                let ti = match page {
                    None => cache.idle[ch as usize],
                    Some(p) => {
                        if let Some(&ti) = by_key.get(&(ch, Some(p.index()))) {
                            ti
                        } else {
                            payload.clear();
                            payloads.page_payload(p, &mut payload);
                            cache.intern(ch, Some(p), &payload, &mut tables_by_len, &mut by_key)?
                        }
                    }
                };
                cache.cells.push(ti);
                cache.pages.push(page);
            }
        }
        Ok(cache)
    }

    /// Builds (or reuses) the template for `(ch, page)` and returns its
    /// index. `page: None` builds the channel's idle template.
    fn intern(
        &mut self,
        ch: u32,
        page: Option<PageId>,
        payload: &[u8],
        tables_by_len: &mut BTreeMap<usize, u32>,
        by_key: &mut BTreeMap<(u32, Option<u32>), u32>,
    ) -> Result<u32, EncodeError> {
        let key = (ch, page.map(PageId::index));
        if let Some(&ti) = by_key.get(&key) {
            return Ok(ti);
        }
        let Ok(wire_ch) = u16::try_from(ch) else {
            return Err(EncodeError::ChannelOutOfRange {
                channel: ChannelId::new(ch),
            });
        };
        if payload.len() > MAX_PAYLOAD {
            return Err(EncodeError::PayloadTooLarge { len: payload.len() });
        }
        let tail_len = HEADER_TAIL + payload.len();
        let table = *tables_by_len.entry(tail_len).or_insert_with(|| {
            self.tables.push(DeltaTable::new(tail_len));
            u32::try_from(self.tables.len() - 1).expect("table count fits in u32")
        });
        // The wire image with slot_time = 0 baked in: the XOR against any
        // real slot is then the slot bytes themselves.
        let mut img = Vec::with_capacity(HEADER_LEN + payload.len());
        img.extend_from_slice(&MAGIC.to_be_bytes());
        img.push(VERSION);
        img.push(if page.is_none() { FLAG_IDLE } else { 0 });
        img.extend_from_slice(&wire_ch.to_be_bytes());
        img.extend_from_slice(&0u64.to_be_bytes());
        img.extend_from_slice(&page.map_or(0, PageId::index).to_be_bytes());
        let payload_len = u16::try_from(payload.len()).expect("length checked above");
        img.extend_from_slice(&payload_len.to_be_bytes());
        let base_crc = crc16(&img, payload);
        img.extend_from_slice(&base_crc.to_be_bytes());
        img.extend_from_slice(payload);
        let ti = u32::try_from(self.templates.len()).expect("template count fits in u32");
        self.templates.push(Template {
            bytes: img.into_boxed_slice(),
            base_crc,
            table,
        });
        by_key.insert(key, ti);
        Ok(ti)
    }

    /// Channels the cache was built for.
    #[must_use]
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Cycle length the cache was built for.
    #[must_use]
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// Distinct wire images held (idle templates included).
    #[must_use]
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Distinct delta tables held (one per distinct payload length).
    #[must_use]
    pub fn delta_table_count(&self) -> usize {
        self.tables.len()
    }

    /// Frame counters for the emit path.
    #[must_use]
    pub fn stats(&self) -> TemplateStats {
        self.stats
    }

    /// The cached plan's page for `channel` at `slot_time`.
    #[must_use]
    pub fn page_at(&self, channel: u32, slot_time: u64) -> Option<PageId> {
        let col = slot_time % self.cycle_len;
        self.pages[self.cell_index(channel as usize, col)]
    }

    fn cell_index(&self, ch: usize, col: u64) -> usize {
        ch * usize::try_from(self.cycle_len).expect("cycle fits in memory")
            + usize::try_from(col).expect("column fits in memory")
    }

    /// Computes each table's slot delta once per slot, shared by every
    /// template of the same payload length in the column.
    fn prepare_slot(&mut self, slot_time: u64) {
        let slot_bytes = slot_time.to_be_bytes();
        self.delta_scratch.clear();
        for table in &self.tables {
            self.delta_scratch.push(table.delta(slot_bytes));
        }
    }

    /// Appends one template's image with `slot_time` and the CRC patched.
    fn emit(&self, ti: u32, slot_bytes: [u8; 8], buf: &mut BytesMut) {
        let t = &self.templates[ti as usize];
        let at = buf.len();
        buf.extend_from_slice(&t.bytes);
        let out = &mut buf[at..];
        out[SLOT_TIME_OFFSET..SLOT_TIME_OFFSET + 8].copy_from_slice(&slot_bytes);
        let crc = t.base_crc ^ self.delta_scratch[t.table as usize];
        out[CRC_OFFSET..CRC_OFFSET + 2].copy_from_slice(&crc.to_be_bytes());
    }

    /// Encodes one live slot (e.g. a station's `TickOutcome::on_air`) by
    /// patching cached templates, appending every frame (idle carriers
    /// included) to `buf`. Returns the bytes appended. Bit-identical to
    /// [`crate::transmitter::encode_slot_into`] over the same payloads.
    ///
    /// A `None` cell airs the channel's idle template whatever the plan
    /// holds there — that is exactly what a stalled or down channel
    /// transmits — so stalls and outages need no cache rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`TemplateError`] when `on_air` does not fit the cached
    /// plan (wrong width, or a page not in the cached cell — i.e. the
    /// plan was swapped or repacked without a rebuild). On error nothing
    /// is appended.
    pub fn encode_slot_into(
        &mut self,
        on_air: &[Option<PageId>],
        slot_time: u64,
        buf: &mut BytesMut,
    ) -> Result<usize, TemplateError> {
        if on_air.len() != self.channels as usize {
            return Err(TemplateError::ChannelMismatch {
                cached: self.channels,
                found: on_air.len(),
            });
        }
        self.prepare_slot(slot_time);
        let slot_bytes = slot_time.to_be_bytes();
        let col = slot_time % self.cycle_len;
        let start = buf.len();
        let mut data_frames = 0u64;
        let mut idle_frames = 0u64;
        for (ch, &page) in on_air.iter().enumerate() {
            let ti = match page {
                None => {
                    idle_frames += 1;
                    self.idle[ch]
                }
                Some(p) => {
                    let cell = self.cell_index(ch, col);
                    if self.pages[cell] != Some(p) {
                        buf.truncate(start);
                        return Err(TemplateError::PlanDrift {
                            channel: u32::try_from(ch).expect("channel fits in u32"),
                            slot_time,
                            expected: self.pages[cell],
                            found: p,
                        });
                    }
                    data_frames += 1;
                    self.cells[cell]
                }
            };
            self.emit(ti, slot_bytes, buf);
        }
        self.stats.data_frames += data_frames;
        self.stats.idle_frames += idle_frames;
        Ok(buf.len() - start)
    }

    /// Encodes the plan's own column for `slot_time` — the template
    /// counterpart of walking [`crate::transmitter::FrameStream`] for one
    /// slot and encoding each frame. Returns the bytes appended.
    pub fn encode_cycle_slot(&mut self, slot_time: u64, buf: &mut BytesMut) -> usize {
        self.prepare_slot(slot_time);
        let slot_bytes = slot_time.to_be_bytes();
        let col = slot_time % self.cycle_len;
        let start = buf.len();
        for ch in 0..self.channels as usize {
            let cell = self.cell_index(ch, col);
            if self.pages[cell].is_some() {
                self.stats.data_frames += 1;
            } else {
                self.stats.idle_frames += 1;
            }
            self.emit(self.cells[cell], slot_bytes, buf);
        }
        buf.len() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::transmitter::{encode_slot_into, FrameStream};
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;

    /// Deterministic per-page payload with per-page lengths (so several
    /// delta tables coexist).
    struct TestPayloads;

    impl CyclicPayloads for TestPayloads {
        fn page_payload(&mut self, page: PageId, out: &mut BytesMut) {
            let len = (page.index() as usize * 7) % 41;
            for i in 0..len {
                out.extend_from_slice(&[(page.index() as u8)
                    .wrapping_mul(31)
                    .wrapping_add(i as u8)]);
            }
        }
    }

    fn program() -> BroadcastProgram {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        susc::schedule(&ladder, 2).unwrap()
    }

    #[test]
    fn crc_byte_table_is_gf2_linear() {
        // The whole delta argument rests on T[a ^ b] == T[a] ^ T[b].
        for a in 0u16..=255 {
            for b in 0u16..=255 {
                assert_eq!(
                    CRC16_TABLE[usize::from(a ^ b)],
                    CRC16_TABLE[usize::from(a)] ^ CRC16_TABLE[usize::from(b)],
                    "a={a:#04x} b={b:#04x}"
                );
            }
        }
    }

    #[test]
    fn delta_matches_crc_difference_of_real_messages() {
        // crc(m1) ^ crc(m2) == delta(slot1 ^ slot2) for messages that
        // differ only in the 8 slot bytes, across several tail lengths.
        let mut rng_state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for tail_len in [0usize, 1, 6, 22, 70, 512] {
            let table = DeltaTable::new(tail_len);
            for _ in 0..8 {
                let prefix: Vec<u8> = (0..SLOT_TIME_OFFSET).map(|_| next() as u8).collect();
                let tail: Vec<u8> = (0..tail_len).map(|_| next() as u8).collect();
                let s1 = next().to_be_bytes();
                let s2 = next().to_be_bytes();
                let msg = |s: [u8; 8]| {
                    let mut m = prefix.clone();
                    m.extend_from_slice(&s);
                    m.extend_from_slice(&tail);
                    m
                };
                let mut xor = [0u8; 8];
                for (x, (a, b)) in xor.iter_mut().zip(s1.iter().zip(s2.iter())) {
                    *x = a ^ b;
                }
                assert_eq!(
                    crc16(&msg(s1), b"") ^ crc16(&msg(s2), b""),
                    table.delta(xor),
                    "tail_len={tail_len}"
                );
            }
        }
    }

    #[test]
    fn delta_table_golden_vectors() {
        // Pinned against an independent implementation, next to the CRC
        // goldens in `frame`. tail_len 6 is an idle frame, 22 a 16-byte
        // payload, 70 a 64-byte payload.
        let t6 = DeltaTable::new(6);
        let t22 = DeltaTable::new(22);
        let t70 = DeltaTable::new(70);
        assert_eq!(DeltaTable::new(0).entry(7, 0x01), 0x1021); // = T[1]
        assert_eq!(t6.entry(0, 0x01), 0x7B61);
        assert_eq!(t6.entry(7, 0x01), 0xB861);
        assert_eq!(t6.entry(7, 0xFF), 0xA571);
        assert_eq!(t6.entry(3, 0xA5), 0xAADE);
        assert_eq!(t6.delta(1u64.to_be_bytes()), 0xB861);
        assert_eq!(t6.delta(0xDEAD_BEEFu64.to_be_bytes()), 0xCA77);
        assert_eq!(t22.entry(0, 0x01), 0x091F);
        assert_eq!(t22.entry(7, 0x01), 0x650B);
        assert_eq!(t22.entry(7, 0xFF), 0x31F8);
        assert_eq!(t22.entry(3, 0xA5), 0xDE36);
        assert_eq!(t22.delta(1u64.to_be_bytes()), 0x650B);
        assert_eq!(t22.delta(0xDEAD_BEEFu64.to_be_bytes()), 0x54B5);
        assert_eq!(t70.entry(0, 0x01), 0x9C98);
        assert_eq!(t70.entry(7, 0x01), 0x8832);
        assert_eq!(t70.entry(7, 0xFF), 0x9671);
        assert_eq!(t70.entry(3, 0xA5), 0xEB24);
        assert_eq!(t70.delta(1u64.to_be_bytes()), 0x8832);
        assert_eq!(t70.delta(0xDEAD_BEEFu64.to_be_bytes()), 0xECFD);
        // The zero XOR never changes a checksum.
        assert_eq!(t6.delta([0; 8]), 0);
        assert_eq!(t70.delta([0; 8]), 0);
    }

    #[test]
    fn cycle_slots_match_fresh_framestream_encoding() {
        let p = program();
        let mut cache = FrameTemplateCache::build(&p, &mut TestPayloads).unwrap();
        let slots = 3 * p.cycle_len();
        let mut payloads = TestPayloads;
        let mut stream = FrameStream::new(&p, CyclicSource::new(&mut payloads));
        let mut buf = BytesMut::new();
        for slot_time in 0..slots {
            buf.clear();
            let written = cache.encode_cycle_slot(slot_time, &mut buf);
            assert_eq!(written, buf.len());
            let mut expected = Vec::new();
            for _ in 0..p.channels() {
                let frame = stream.next().unwrap();
                assert_eq!(frame.slot_time, slot_time);
                expected.extend_from_slice(&frame.encode());
            }
            assert_eq!(&buf[..], &expected[..], "slot {slot_time}");
        }
        let stats = cache.stats();
        assert!(stats.data_frames > 0);
        assert_eq!(
            stats.data_frames + stats.idle_frames,
            slots * u64::from(p.channels())
        );
    }

    #[test]
    fn live_slots_match_fresh_encoder_including_stalls() {
        let p = program();
        let mut cache = FrameTemplateCache::build(&p, &mut TestPayloads).unwrap();
        let mut buf = BytesMut::new();
        let mut fresh = BytesMut::new();
        // Far-future slot times exercise all 8 slot bytes.
        for slot_time in [0u64, 1, 7, 1 << 35, u64::MAX - 1, u64::MAX] {
            let col = slot_time % p.cycle_len();
            let mut on_air: Vec<Option<PageId>> = (0..p.channels())
                .map(|ch| p.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(col))))
                .collect();
            // A stalled channel airs idle regardless of the plan.
            on_air[1] = None;
            buf.clear();
            cache
                .encode_slot_into(&on_air, slot_time, &mut buf)
                .unwrap();
            fresh.clear();
            encode_slot_into(
                &on_air,
                slot_time,
                &mut CyclicSource::new(&mut TestPayloads),
                &mut fresh,
            )
            .unwrap();
            assert_eq!(&buf[..], &fresh[..], "slot {slot_time}");
            // Each frame decodes with a valid checksum.
            let (frames, used) = crate::frame::decode_stream(&buf);
            assert_eq!(used, buf.len());
            assert_eq!(frames.len(), p.channels() as usize);
        }
    }

    #[test]
    fn plan_drift_is_detected_and_appends_nothing() {
        let p = program();
        let mut cache = FrameTemplateCache::build(&p, &mut TestPayloads).unwrap();
        let col = 0;
        let mut on_air: Vec<Option<PageId>> = (0..p.channels())
            .map(|ch| p.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(col))))
            .collect();
        // Swap in a page the plan does not have in that cell.
        let wrong = PageId::new(9_999);
        on_air[0] = Some(wrong);
        let mut buf = BytesMut::new();
        let err = cache.encode_slot_into(&on_air, 0, &mut buf).unwrap_err();
        assert!(matches!(err, TemplateError::PlanDrift { channel: 0, .. }));
        assert!(buf.is_empty(), "a refused emit must append nothing");
        assert!(err.to_string().contains("plan drift"));
        // Wrong width is also refused.
        let err = cache.encode_slot_into(&[None], 0, &mut buf).unwrap_err();
        assert!(matches!(err, TemplateError::ChannelMismatch { .. }));
    }

    #[test]
    fn idle_only_column_patches_cleanly() {
        let mut cache =
            FrameTemplateCache::from_cells(3, 4, &[None; 12], &mut TestPayloads).unwrap();
        let mut buf = BytesMut::new();
        let written = cache
            .encode_slot_into(&[None, None, None], 123_456_789, &mut buf)
            .unwrap();
        assert_eq!(written, 3 * HEADER_LEN);
        let (frames, used) = crate::frame::decode_stream(&buf);
        assert_eq!(used, buf.len());
        for (ch, frame) in frames.iter().enumerate() {
            assert!(frame.is_idle());
            assert_eq!(frame.slot_time, 123_456_789);
            assert_eq!(frame.channel, ChannelId::new(u32::try_from(ch).unwrap()));
        }
        assert_eq!(cache.stats().idle_frames, 3);
        assert_eq!(cache.template_count(), 3); // idle templates only
        assert_eq!(cache.delta_table_count(), 1);
    }

    #[test]
    fn templates_are_deduped_across_the_cycle() {
        let p = program();
        let cache = FrameTemplateCache::build(&p, &mut TestPayloads).unwrap();
        // One template per distinct (channel, page) pair plus one idle per
        // channel — not one per cell.
        let mut distinct = std::collections::BTreeSet::new();
        for ch in 0..p.channels() {
            for col in 0..p.cycle_len() {
                if let Some(page) = p.page_at(GridPos::new(ChannelId::new(ch), SlotIndex::new(col)))
                {
                    distinct.insert((ch, page));
                }
            }
        }
        assert_eq!(
            cache.template_count(),
            distinct.len() + p.channels() as usize
        );
    }

    #[test]
    fn wide_channel_and_oversize_payload_are_refused_at_build() {
        struct Huge;
        impl CyclicPayloads for Huge {
            fn page_payload(&mut self, _page: PageId, out: &mut BytesMut) {
                out.extend_from_slice(&vec![0u8; MAX_PAYLOAD + 1]);
            }
        }
        let cells = vec![Some(PageId::new(0))];
        let err = FrameTemplateCache::from_cells(1, 1, &cells, &mut Huge).unwrap_err();
        assert!(matches!(err, EncodeError::PayloadTooLarge { .. }));
        // Channel 65536 cannot be named on the wire; the grid build fails
        // before any emit can truncate it.
        let wide = u64::from(u16::MAX) + 2;
        let cells = vec![None; usize::try_from(wide).unwrap()];
        let err = FrameTemplateCache::from_cells(
            u32::try_from(wide).unwrap(),
            1,
            &cells,
            &mut TestPayloads,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::ChannelOutOfRange { .. }));
    }

    #[test]
    fn patched_frames_equal_fresh_frames_at_max_payload_edge() {
        struct MaxPayload;
        impl CyclicPayloads for MaxPayload {
            fn page_payload(&mut self, page: PageId, out: &mut BytesMut) {
                let byte = page.index() as u8;
                out.extend_from_slice(&vec![byte ^ 0x5A; MAX_PAYLOAD]);
            }
        }
        let cells = vec![Some(PageId::new(1)), Some(PageId::new(2))];
        let mut cache = FrameTemplateCache::from_cells(1, 2, &cells, &mut MaxPayload).unwrap();
        let mut buf = BytesMut::new();
        for slot_time in [1u64, u64::MAX] {
            buf.clear();
            cache.encode_cycle_slot(slot_time, &mut buf);
            let col = slot_time % 2;
            let page = cells[usize::try_from(col).unwrap()].unwrap();
            let mut payload = BytesMut::new();
            MaxPayload.page_payload(page, &mut payload);
            let expected =
                Frame::data(ChannelId::new(0), slot_time, page, payload.freeze()).encode();
            assert_eq!(&buf[..], &expected[..], "slot {slot_time}");
        }
    }
}
