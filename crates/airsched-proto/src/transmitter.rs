//! Turning a broadcast program into a frame stream.
//!
//! [`FrameStream`] walks a [`BroadcastProgram`] slot by slot and emits one
//! [`Frame`] per channel per slot (idle frames included, so receivers stay
//! slot-synchronized), pulling payloads from a caller-supplied source.

use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
use bytes::{Bytes, BytesMut};

use crate::frame::{EncodeError, Frame};

/// Supplies the payload bytes for a page each time it airs.
pub trait PayloadSource {
    /// The bytes to transmit for `page` at `slot_time`.
    fn payload(&mut self, page: PageId, slot_time: u64) -> Bytes;
}

/// A payload source that renders a deterministic text payload — handy for
/// demos and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct DebugPayloads;

impl PayloadSource for DebugPayloads {
    fn payload(&mut self, page: PageId, slot_time: u64) -> Bytes {
        Bytes::from(format!("{page}@t{slot_time}"))
    }
}

/// An infinite frame stream over a program.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_proto::transmitter::{DebugPayloads, FrameStream};
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let mut stream = FrameStream::new(&program, DebugPayloads);
/// let first_slot: Vec<_> = stream.by_ref().take(2).collect(); // 2 channels
/// assert!(first_slot.iter().all(|f| f.slot_time == 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FrameStream<'a, S> {
    program: &'a BroadcastProgram,
    source: S,
    time: u64,
    channel: u32,
}

impl<'a, S: PayloadSource> FrameStream<'a, S> {
    /// Starts the stream at slot 0, channel 0.
    pub fn new(program: &'a BroadcastProgram, source: S) -> Self {
        Self {
            program,
            source,
            time: 0,
            channel: 0,
        }
    }
}

impl<S: PayloadSource> Iterator for FrameStream<'_, S> {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        let column = self.time % self.program.cycle_len();
        let channel = ChannelId::new(self.channel);
        let pos = GridPos::new(channel, SlotIndex::new(column));
        let frame = match self.program.page_at(pos) {
            Some(page) => Frame::data(
                channel,
                self.time,
                page,
                self.source.payload(page, self.time),
            ),
            None => Frame::idle(channel, self.time),
        };
        self.channel += 1;
        if self.channel == self.program.channels() {
            self.channel = 0;
            self.time += 1;
        }
        Some(frame)
    }
}

/// Encodes one slot's worth of per-channel payloads (e.g. a live station's
/// `TickOutcome::on_air`) into frames — the adapter between a dynamic
/// server and the wire.
///
/// # Examples
///
/// ```
/// use airsched_core::types::PageId;
/// use airsched_proto::transmitter::{frames_for_slot, DebugPayloads};
///
/// let on_air = [Some(PageId::new(3)), None];
/// let frames = frames_for_slot(&on_air, 17, &mut DebugPayloads);
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].page, Some(PageId::new(3)));
/// assert!(frames[1].is_idle());
/// ```
pub fn frames_for_slot<S: PayloadSource>(
    on_air: &[Option<PageId>],
    slot_time: u64,
    source: &mut S,
) -> Vec<Frame> {
    on_air
        .iter()
        .enumerate()
        .map(|(ch, page)| {
            let channel = ChannelId::new(u32::try_from(ch).expect("channel fits in u32"));
            match page {
                Some(p) => Frame::data(channel, slot_time, *p, source.payload(*p, slot_time)),
                None => Frame::idle(channel, slot_time),
            }
        })
        .collect()
}

/// Encodes one slot's per-channel pages straight onto the wire, appending
/// every frame (idle carriers included) to one reused `buf`. Returns the
/// number of bytes appended. This is the zero-allocation sibling of
/// [`frames_for_slot`]: the station's steady-state transmit loop clears and
/// refills the same buffer every slot.
///
/// # Errors
///
/// Returns [`EncodeError`] if a channel index or payload does not fit its
/// wire field; frames encoded before the failure remain in `buf`.
pub fn encode_slot_into<S: PayloadSource>(
    on_air: &[Option<PageId>],
    slot_time: u64,
    source: &mut S,
    buf: &mut BytesMut,
) -> Result<usize, EncodeError> {
    let start = buf.len();
    for (ch, page) in on_air.iter().enumerate() {
        let channel = ChannelId::new(u32::try_from(ch).expect("channel fits in u32"));
        let frame = match page {
            Some(p) => Frame::data(channel, slot_time, *p, source.payload(*p, slot_time)),
            None => Frame::idle(channel, slot_time),
        };
        frame.encode_into(buf)?;
    }
    Ok(buf.len() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;

    fn program() -> BroadcastProgram {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        susc::schedule(&ladder, 2).unwrap()
    }

    #[test]
    fn emits_one_frame_per_channel_per_slot() {
        let p = program();
        let frames: Vec<Frame> = FrameStream::new(&p, DebugPayloads)
            .take((p.channels() as usize) * (p.cycle_len() as usize))
            .collect();
        // Channel-major within each slot, slots ascending.
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.slot_time, (k as u64) / u64::from(p.channels()));
            assert_eq!(
                u64::from(frame.channel.index()),
                (k as u64) % u64::from(p.channels())
            );
        }
    }

    #[test]
    fn frames_match_the_grid() {
        let p = program();
        for frame in FrameStream::new(&p, DebugPayloads).take(32) {
            let pos = GridPos::new(
                frame.channel,
                SlotIndex::new(frame.slot_time % p.cycle_len()),
            );
            assert_eq!(p.page_at(pos), frame.page);
            if let Some(page) = frame.page {
                let text = String::from_utf8(frame.payload.to_vec()).unwrap();
                assert!(text.starts_with(&page.to_string()), "{text}");
            } else {
                assert!(frame.payload.is_empty());
            }
        }
    }

    #[test]
    fn encode_slot_into_matches_per_frame_encoding() {
        let on_air = [Some(PageId::new(3)), None, Some(PageId::new(1))];
        let mut buf = BytesMut::with_capacity(512);
        let mut expected = Vec::new();
        for slot_time in 0..4u64 {
            buf.clear();
            let written =
                encode_slot_into(&on_air, slot_time, &mut DebugPayloads, &mut buf).unwrap();
            assert_eq!(written, buf.len());
            expected.clear();
            for f in frames_for_slot(&on_air, slot_time, &mut DebugPayloads) {
                expected.extend_from_slice(&f.encode());
            }
            assert_eq!(&buf[..], &expected[..]);
        }
    }

    #[test]
    fn encoded_stream_round_trips() {
        let p = program();
        let mut wire = Vec::new();
        let original: Vec<Frame> = FrameStream::new(&p, DebugPayloads).take(24).collect();
        for f in &original {
            wire.extend_from_slice(&f.encode());
        }
        let (decoded, used) = crate::frame::decode_stream(&wire);
        assert_eq!(used, wire.len());
        assert_eq!(decoded, original);
    }
}
