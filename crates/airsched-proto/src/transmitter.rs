//! Turning a broadcast program into a frame stream.
//!
//! [`FrameStream`] walks a [`BroadcastProgram`] slot by slot and emits one
//! [`Frame`] per channel per slot (idle frames included, so receivers stay
//! slot-synchronized), pulling payloads from a caller-supplied source.

use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
use bytes::{BufMut, Bytes, BytesMut};

use crate::frame::{EncodeError, Frame, FLAG_IDLE, HEADER_LEN, MAGIC, VERSION};
use crate::template::CyclicPayloads;

/// Supplies the payload bytes for a page each time it airs.
pub trait PayloadSource {
    /// The bytes to transmit for `page` at `slot_time`.
    fn payload(&mut self, page: PageId, slot_time: u64) -> Bytes;

    /// Appends the bytes for `page` at `slot_time` directly to `out` — the
    /// allocation-free sibling of [`PayloadSource::payload`], used by
    /// [`encode_slot_into`] so the steady-state transmit loop never
    /// round-trips payloads through an owned [`Bytes`]. The default
    /// delegates to [`PayloadSource::payload`]; sources that can render in
    /// place should override it.
    fn payload_into(&mut self, page: PageId, slot_time: u64, out: &mut BytesMut) {
        out.extend_from_slice(&self.payload(page, slot_time));
    }
}

/// A payload source that renders a deterministic text payload — handy for
/// demos and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct DebugPayloads;

impl PayloadSource for DebugPayloads {
    fn payload(&mut self, page: PageId, slot_time: u64) -> Bytes {
        Bytes::from(format!("{page}@t{slot_time}"))
    }

    fn payload_into(&mut self, page: PageId, slot_time: u64, out: &mut BytesMut) {
        use core::fmt::Write;
        // Render straight into the frame buffer: same bytes as
        // `format!`, none of its per-frame `String` + `Bytes` churn.
        write!(WriteBytes(out), "{page}@t{slot_time}").expect("writing to a buffer is infallible");
    }
}

/// `fmt::Write` adapter appending UTF-8 to a [`BytesMut`].
struct WriteBytes<'a>(&'a mut BytesMut);

impl core::fmt::Write for WriteBytes<'_> {
    fn write_str(&mut self, s: &str) -> core::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// A payload source that serves one fixed byte pattern for every page —
/// the borrowing workhorse for benchmarks and load tests, where payload
/// *content* is irrelevant but payload *cost* must not include the
/// allocator. Also usable as [`CyclicPayloads`] (the bytes never vary by
/// slot), so one instance can drive both the template cache and the fresh
/// encoder in lockstep gates.
#[derive(Debug, Clone)]
pub struct FixedPayloads {
    data: Bytes,
}

impl FixedPayloads {
    /// A source serving `data` for every page.
    #[must_use]
    pub fn new(data: Bytes) -> Self {
        Self { data }
    }

    /// The fixed payload served.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

impl PayloadSource for FixedPayloads {
    fn payload(&mut self, _page: PageId, _slot_time: u64) -> Bytes {
        self.data.clone()
    }

    fn payload_into(&mut self, _page: PageId, _slot_time: u64, out: &mut BytesMut) {
        out.extend_from_slice(&self.data);
    }
}

impl CyclicPayloads for FixedPayloads {
    fn page_payload(&mut self, _page: PageId, out: &mut BytesMut) {
        out.extend_from_slice(&self.data);
    }
}

/// An infinite frame stream over a program.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_core::susc;
/// use airsched_proto::transmitter::{DebugPayloads, FrameStream};
///
/// let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
/// let program = susc::schedule(&ladder, 2)?;
/// let mut stream = FrameStream::new(&program, DebugPayloads);
/// let first_slot: Vec<_> = stream.by_ref().take(2).collect(); // 2 channels
/// assert!(first_slot.iter().all(|f| f.slot_time == 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FrameStream<'a, S> {
    program: &'a BroadcastProgram,
    source: S,
    time: u64,
    channel: u32,
}

impl<'a, S: PayloadSource> FrameStream<'a, S> {
    /// Starts the stream at slot 0, channel 0.
    pub fn new(program: &'a BroadcastProgram, source: S) -> Self {
        Self {
            program,
            source,
            time: 0,
            channel: 0,
        }
    }
}

impl<S: PayloadSource> Iterator for FrameStream<'_, S> {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        let column = self.time % self.program.cycle_len();
        let channel = ChannelId::new(self.channel);
        let pos = GridPos::new(channel, SlotIndex::new(column));
        let frame = match self.program.page_at(pos) {
            Some(page) => Frame::data(
                channel,
                self.time,
                page,
                self.source.payload(page, self.time),
            ),
            None => Frame::idle(channel, self.time),
        };
        self.channel += 1;
        if self.channel == self.program.channels() {
            self.channel = 0;
            self.time += 1;
        }
        Some(frame)
    }
}

/// Encodes one slot's worth of per-channel payloads (e.g. a live station's
/// `TickOutcome::on_air`) into frames — the adapter between a dynamic
/// server and the wire.
///
/// # Examples
///
/// ```
/// use airsched_core::types::PageId;
/// use airsched_proto::transmitter::{frames_for_slot, DebugPayloads};
///
/// let on_air = [Some(PageId::new(3)), None];
/// let frames = frames_for_slot(&on_air, 17, &mut DebugPayloads);
/// assert_eq!(frames.len(), 2);
/// assert_eq!(frames[0].page, Some(PageId::new(3)));
/// assert!(frames[1].is_idle());
/// ```
pub fn frames_for_slot<S: PayloadSource>(
    on_air: &[Option<PageId>],
    slot_time: u64,
    source: &mut S,
) -> Vec<Frame> {
    on_air
        .iter()
        .enumerate()
        .map(|(ch, page)| {
            let channel = ChannelId::new(u32::try_from(ch).expect("channel fits in u32"));
            match page {
                Some(p) => Frame::data(channel, slot_time, *p, source.payload(*p, slot_time)),
                None => Frame::idle(channel, slot_time),
            }
        })
        .collect()
}

/// Encodes one slot's per-channel pages straight onto the wire, appending
/// every frame (idle carriers included) to one reused `buf`. Returns the
/// number of bytes appended. This is the zero-allocation sibling of
/// [`frames_for_slot`]: the station's steady-state transmit loop clears and
/// refills the same buffer every slot. Payloads are rendered in place via
/// [`PayloadSource::payload_into`] — no intermediate [`Frame`] or
/// [`Bytes`] is built — and the payload length and CRC are patched into
/// the header afterwards, producing bytes identical to
/// [`Frame::encode_into`]. (This fresh path is also the bit-identity
/// reference for the patched [`crate::template::FrameTemplateCache`].)
///
/// # Errors
///
/// Returns [`EncodeError`] if a channel index or payload does not fit its
/// wire field; frames encoded before the failure remain in `buf`.
pub fn encode_slot_into<S: PayloadSource>(
    on_air: &[Option<PageId>],
    slot_time: u64,
    source: &mut S,
    buf: &mut BytesMut,
) -> Result<usize, EncodeError> {
    let start = buf.len();
    for (ch, page) in on_air.iter().enumerate() {
        let channel = u32::try_from(ch).expect("channel fits in u32");
        let Ok(wire_ch) = u16::try_from(channel) else {
            return Err(EncodeError::ChannelOutOfRange {
                channel: ChannelId::new(channel),
            });
        };
        let at = buf.len();
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(if page.is_none() { FLAG_IDLE } else { 0 });
        buf.put_u16(wire_ch);
        buf.put_u64(slot_time);
        buf.put_u32(page.map_or(0, PageId::index));
        // Payload length and CRC are not known yet; reserve their fields
        // and patch them once the payload is in place.
        buf.put_u16(0);
        buf.put_u16(0);
        if let Some(p) = page {
            source.payload_into(*p, slot_time, buf);
        }
        let payload_len = buf.len() - at - HEADER_LEN;
        let Ok(wire_len) = u16::try_from(payload_len) else {
            buf.truncate(at);
            return Err(EncodeError::PayloadTooLarge { len: payload_len });
        };
        let frame = &mut buf[at..];
        frame[HEADER_LEN - 4..HEADER_LEN - 2].copy_from_slice(&wire_len.to_be_bytes());
        let crc = crate::frame::crc16(&frame[..HEADER_LEN - 2], &frame[HEADER_LEN..]);
        frame[HEADER_LEN - 2..HEADER_LEN].copy_from_slice(&crc.to_be_bytes());
    }
    Ok(buf.len() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;

    fn program() -> BroadcastProgram {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        susc::schedule(&ladder, 2).unwrap()
    }

    #[test]
    fn emits_one_frame_per_channel_per_slot() {
        let p = program();
        let frames: Vec<Frame> = FrameStream::new(&p, DebugPayloads)
            .take((p.channels() as usize) * (p.cycle_len() as usize))
            .collect();
        // Channel-major within each slot, slots ascending.
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(frame.slot_time, (k as u64) / u64::from(p.channels()));
            assert_eq!(
                u64::from(frame.channel.index()),
                (k as u64) % u64::from(p.channels())
            );
        }
    }

    #[test]
    fn frames_match_the_grid() {
        let p = program();
        for frame in FrameStream::new(&p, DebugPayloads).take(32) {
            let pos = GridPos::new(
                frame.channel,
                SlotIndex::new(frame.slot_time % p.cycle_len()),
            );
            assert_eq!(p.page_at(pos), frame.page);
            if let Some(page) = frame.page {
                let text = String::from_utf8(frame.payload.to_vec()).unwrap();
                assert!(text.starts_with(&page.to_string()), "{text}");
            } else {
                assert!(frame.payload.is_empty());
            }
        }
    }

    #[test]
    fn encode_slot_into_matches_per_frame_encoding() {
        let on_air = [Some(PageId::new(3)), None, Some(PageId::new(1))];
        let mut buf = BytesMut::with_capacity(512);
        let mut expected = Vec::new();
        for slot_time in 0..4u64 {
            buf.clear();
            let written =
                encode_slot_into(&on_air, slot_time, &mut DebugPayloads, &mut buf).unwrap();
            assert_eq!(written, buf.len());
            expected.clear();
            for f in frames_for_slot(&on_air, slot_time, &mut DebugPayloads) {
                expected.extend_from_slice(&f.encode());
            }
            assert_eq!(&buf[..], &expected[..]);
        }
    }

    #[test]
    fn debug_payload_into_matches_format() {
        let mut out = BytesMut::new();
        DebugPayloads.payload_into(PageId::new(12), 345, &mut out);
        assert_eq!(
            &out[..],
            DebugPayloads.payload(PageId::new(12), 345).as_ref()
        );
        assert_eq!(&out[..], b"p12@t345");
    }

    #[test]
    fn fixed_payloads_serve_the_same_bytes_on_every_path() {
        let mut src = FixedPayloads::new(Bytes::from_static(b"tick"));
        assert_eq!(src.data(), b"tick");
        let owned = src.payload(PageId::new(3), 9);
        let mut appended = BytesMut::new();
        src.payload_into(PageId::new(3), 9, &mut appended);
        let mut cyclic = BytesMut::new();
        crate::template::CyclicPayloads::page_payload(&mut src, PageId::new(3), &mut cyclic);
        assert_eq!(&owned[..], &appended[..]);
        assert_eq!(&owned[..], &cyclic[..]);
    }

    #[test]
    fn encode_slot_into_rejects_oversize_and_keeps_earlier_frames() {
        use crate::frame::MAX_PAYLOAD;
        struct Huge;
        impl PayloadSource for Huge {
            fn payload(&mut self, _page: PageId, _slot_time: u64) -> Bytes {
                Bytes::from(vec![0u8; MAX_PAYLOAD + 1])
            }
        }
        let on_air = [None, Some(PageId::new(1))];
        let mut buf = BytesMut::new();
        let err = encode_slot_into(&on_air, 5, &mut Huge, &mut buf).unwrap_err();
        assert!(matches!(err, EncodeError::PayloadTooLarge { .. }));
        // The idle frame on channel 0 was already encoded and survives;
        // the oversize frame was rolled back cleanly.
        let (frames, used) = crate::frame::decode_stream(&buf);
        assert_eq!(used, buf.len());
        assert_eq!(frames.len(), 1);
        assert!(frames[0].is_idle());
    }

    #[test]
    fn encoded_stream_round_trips() {
        let p = program();
        let mut wire = Vec::new();
        let original: Vec<Frame> = FrameStream::new(&p, DebugPayloads).take(24).collect();
        for f in &original {
            wire.extend_from_slice(&f.encode());
        }
        let (decoded, used) = crate::frame::decode_stream(&wire);
        assert_eq!(used, wire.len());
        assert_eq!(decoded, original);
    }
}
