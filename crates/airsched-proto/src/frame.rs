//! Slot frames: the unit a transmitter puts on the air.
//!
//! One frame carries one page transmission in one slot on one channel.
//! Layout (big-endian, 24-byte header + payload):
//!
//! ```text
//! offset  size  field
//!      0     4  magic        0x41495253 ("AIRS")
//!      4     1  version      1
//!      5     1  flags        bit 0: IDLE (carrier only, no page)
//!      6     2  channel      u16
//!      8     8  slot_time    u64  absolute slot index
//!     16     4  page         u32  page id (0 when IDLE)
//!     20     2  payload_len  u16
//!     22     2  crc          CRC-16/CCITT-FALSE over bytes 0..22 + payload
//!     24     -  payload
//! ```
//!
//! The checksum lets receivers detect corruption (see
//! `airsched-sim::lossy` for what loss does to service quality); the
//! sequence of `slot_time`s lets them detect gaps after dozing.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use airsched_core::types::{ChannelId, PageId};

/// Frame magic: `"AIRS"`.
pub const MAGIC: u32 = 0x4149_5253;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 24;
/// Largest payload a frame may carry.
pub const MAX_PAYLOAD: usize = u16::MAX as usize;

/// Largest channel index the wire format can carry (the header stores the
/// channel as a `u16`).
pub const MAX_CHANNEL_INDEX: u32 = u16::MAX as u32;

pub(crate) const FLAG_IDLE: u8 = 0b0000_0001;

/// One slot transmission on one channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The channel the frame airs on.
    pub channel: ChannelId,
    /// Absolute slot index.
    pub slot_time: u64,
    /// The page carried, or `None` for an idle carrier slot.
    pub page: Option<PageId>,
    /// Opaque page payload (empty for idle frames).
    pub payload: Bytes,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// Fewer bytes than a header.
    Truncated {
        /// Bytes needed beyond what was supplied.
        missing: usize,
    },
    /// The magic bytes are wrong.
    BadMagic {
        /// The value found.
        found: u32,
    },
    /// Unsupported version.
    BadVersion {
        /// The value found.
        found: u8,
    },
    /// The checksum does not match (corruption).
    BadChecksum,
    /// An idle frame carried a payload or page id.
    MalformedIdle,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated { missing } => {
                write!(f, "frame truncated: {missing} byte(s) missing")
            }
            Self::BadMagic { found } => write!(f, "bad magic {found:#010x}"),
            Self::BadVersion { found } => write!(f, "unsupported version {found}"),
            Self::BadChecksum => write!(f, "checksum mismatch"),
            Self::MalformedIdle => write!(f, "idle frame carries data"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a frame failed to encode.
///
/// The constructors ([`Frame::data`], [`Frame::idle`]) reject these states up
/// front, but the fields are public, so the encoder re-validates hand-built
/// frames instead of silently truncating them onto the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// The channel index does not fit the header's `u16` field — encoding it
    /// truncated would round-trip to the wrong channel.
    ChannelOutOfRange {
        /// The offending channel.
        channel: ChannelId,
    },
    /// The payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge {
        /// The payload length found.
        len: usize,
    },
}

impl core::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ChannelOutOfRange { channel } => write!(
                f,
                "channel {channel} exceeds the wire limit of {MAX_CHANNEL_INDEX}"
            ),
            Self::PayloadTooLarge { len } => {
                write!(f, "payload of {len} byte(s) exceeds the frame limit")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

impl Frame {
    /// A data frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] or the channel index
    /// exceeds [`MAX_CHANNEL_INDEX`] — a wider channel id would silently
    /// truncate on the wire and round-trip to the wrong channel.
    #[must_use]
    pub fn data(channel: ChannelId, slot_time: u64, page: PageId, payload: Bytes) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload exceeds the frame limit"
        );
        assert!(
            channel.index() <= MAX_CHANNEL_INDEX,
            "channel {channel} exceeds the wire limit of {MAX_CHANNEL_INDEX}"
        );
        Self {
            channel,
            slot_time,
            page: Some(page),
            payload,
        }
    }

    /// An idle-carrier frame (keeps receivers slot-synchronized).
    ///
    /// # Panics
    ///
    /// Panics if the channel index exceeds [`MAX_CHANNEL_INDEX`].
    #[must_use]
    pub fn idle(channel: ChannelId, slot_time: u64) -> Self {
        assert!(
            channel.index() <= MAX_CHANNEL_INDEX,
            "channel {channel} exceeds the wire limit of {MAX_CHANNEL_INDEX}"
        );
        Self {
            channel,
            slot_time,
            page: None,
            payload: Bytes::new(),
        }
    }

    /// Whether this is an idle frame.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.page.is_none()
    }

    /// Encodes the frame into a fresh buffer.
    ///
    /// Allocates per call; a transmitter encoding a whole column should use
    /// [`Frame::encode_into`] with one reused buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if the frame fails [`Frame::encode_into`] validation (only
    /// possible for hand-built frames — the constructors reject both states).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut buf).expect("frame is encodable");
        buf.freeze()
    }

    /// Appends the encoded frame to `buf`, returning the number of bytes
    /// written. The buffer is *not* cleared first, so a transmitter can pack
    /// a whole column of frames into one retained allocation and
    /// [`BytesMut::clear`] it between slots.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when the channel index or payload length does
    /// not fit its wire field. On error nothing is appended.
    pub fn encode_into(&self, buf: &mut BytesMut) -> Result<usize, EncodeError> {
        let Ok(channel) = u16::try_from(self.channel.index()) else {
            return Err(EncodeError::ChannelOutOfRange {
                channel: self.channel,
            });
        };
        let Ok(payload_len) = u16::try_from(self.payload.len()) else {
            return Err(EncodeError::PayloadTooLarge {
                len: self.payload.len(),
            });
        };
        let start = buf.len();
        buf.put_u32(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(if self.is_idle() { FLAG_IDLE } else { 0 });
        buf.put_u16(channel);
        buf.put_u64(self.slot_time);
        buf.put_u32(self.page.map_or(0, PageId::index));
        buf.put_u16(payload_len);
        // CRC over the header so far + payload.
        let crc = crc16(&buf[start..], &self.payload);
        buf.put_u16(crc);
        buf.extend_from_slice(&self.payload);
        Ok(buf.len() - start)
    }

    /// Decodes one frame from `bytes` (which must contain exactly one
    /// frame; see [`decode_stream`] for concatenated frames).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for truncation, bad magic/version, checksum
    /// mismatch, or malformed idle frames.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let (frame, used) = Self::decode_prefix(bytes)?;
        if used != bytes.len() {
            // Trailing garbage counts as corruption of this frame's framing.
            return Err(DecodeError::Truncated { missing: 0 });
        }
        Ok(frame)
    }

    /// Decodes a frame from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// As [`Frame::decode`].
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), DecodeError> {
        if bytes.len() < HEADER_LEN {
            return Err(DecodeError::Truncated {
                missing: HEADER_LEN - bytes.len(),
            });
        }
        let mut header = &bytes[..HEADER_LEN];
        let magic = header.get_u32();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic { found: magic });
        }
        let version = header.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion { found: version });
        }
        let flags = header.get_u8();
        let channel = header.get_u16();
        let slot_time = header.get_u64();
        let page = header.get_u32();
        let payload_len = header.get_u16() as usize;
        let crc_stored = header.get_u16();

        let total = HEADER_LEN + payload_len;
        if bytes.len() < total {
            return Err(DecodeError::Truncated {
                missing: total - bytes.len(),
            });
        }
        let payload = &bytes[HEADER_LEN..total];
        let crc_actual = crc16(&bytes[..HEADER_LEN - 2], payload);
        if crc_actual != crc_stored {
            return Err(DecodeError::BadChecksum);
        }

        let idle = flags & FLAG_IDLE != 0;
        if idle && (payload_len != 0 || page != 0) {
            return Err(DecodeError::MalformedIdle);
        }
        Ok((
            Self {
                channel: ChannelId::new(u32::from(channel)),
                slot_time,
                page: if idle { None } else { Some(PageId::new(page)) },
                payload: Bytes::copy_from_slice(payload),
            },
            total,
        ))
    }
}

/// Decodes a buffer of concatenated frames, stopping at the first error.
///
/// Returns the frames decoded and the byte offset where decoding stopped
/// (equals the buffer length on full success).
#[must_use]
pub fn decode_stream(bytes: &[u8]) -> (Vec<Frame>, usize) {
    let mut frames = Vec::new();
    let mut offset = 0;
    while offset < bytes.len() {
        match Frame::decode_prefix(&bytes[offset..]) {
            Ok((frame, used)) => {
                frames.push(frame);
                offset += used;
            }
            Err(_) => break,
        }
    }
    (frames, offset)
}

/// Per-byte lookup table for CRC-16/CCITT-FALSE (polynomial `0x1021`),
/// computed at compile time. Entry `i` is the CRC of the single byte `i`
/// folded through the 8 bitwise steps, so the hot loop does one table hit
/// per byte instead of eight shift/xor rounds.
pub(crate) const CRC16_TABLE: [u16; 256] = {
    let mut table = [0u16; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-16/CCITT-FALSE over the header prefix and payload (table-driven; the
/// bitwise original is retained as `crc16_bitwise` and pinned equal by the
/// golden-vector tests).
///
/// Public so other on-disk formats (the recovery subsystem's checkpoint
/// and journal framing) share the exact same checksum as the wire.
#[must_use]
pub fn crc16(header: &[u8], payload: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in header.iter().chain(payload) {
        crc = (crc << 8) ^ CRC16_TABLE[usize::from((crc >> 8) as u8 ^ byte)];
    }
    crc
}

/// Advances a CRC state by one *zero* input byte: `s → (s << 8) ^
/// T[s >> 8]`. This is the linear part `A` of the per-byte step `s' =
/// A(s) ^ T[b]` (see [`crate::template::DeltaTable`] for why the step
/// decomposes that way); the incremental-CRC delta tables are built by
/// repeated application of it.
#[inline]
pub(crate) fn crc16_advance_zero(state: u16) -> u16 {
    (state << 8) ^ CRC16_TABLE[usize::from((state >> 8) as u8)]
}

/// The seed's bit-at-a-time CRC-16/CCITT-FALSE, kept as the reference the
/// table-driven [`crc16`] is verified against.
#[cfg(test)]
fn crc16_bitwise(header: &[u8], payload: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in header.iter().chain(payload) {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::data(
            ChannelId::new(2),
            987_654,
            PageId::new(41),
            Bytes::from_static(b"quote:ACME=42.17"),
        )
    }

    #[test]
    fn data_frame_round_trips() {
        let frame = sample();
        let encoded = frame.encode();
        assert_eq!(encoded.len(), HEADER_LEN + 16);
        let decoded = Frame::decode(&encoded).unwrap();
        assert_eq!(decoded, frame);
        assert!(!decoded.is_idle());
    }

    #[test]
    fn idle_frame_round_trips() {
        let frame = Frame::idle(ChannelId::new(0), 7);
        let decoded = Frame::decode(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
        assert!(decoded.is_idle());
        assert!(decoded.payload.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().encode().to_vec();
        for idx in [6, 10, 20, HEADER_LEN + 3] {
            let mut copy = bytes.clone();
            copy[idx] ^= 0x40;
            // Any single-bit flip must be detected — as a checksum
            // mismatch, or as truncation when the flipped bit is in the
            // length field.
            assert!(
                Frame::decode(&copy).is_err(),
                "flip at {idx} went undetected"
            );
        }
        // Flipping magic is reported as magic, not checksum.
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(DecodeError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_reports_missing_bytes() {
        let encoded = sample().encode();
        let err = Frame::decode(&encoded[..10]).unwrap_err();
        assert_eq!(err, DecodeError::Truncated { missing: 14 });
        let err = Frame::decode(&encoded[..HEADER_LEN + 2]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
    }

    #[test]
    fn version_gate() {
        let mut bytes = sample().encode().to_vec();
        bytes[4] = 9;
        assert_eq!(
            Frame::decode(&bytes),
            Err(DecodeError::BadVersion { found: 9 })
        );
    }

    #[test]
    fn stream_decoding_stops_at_corruption() {
        let mut buf = Vec::new();
        for k in 0..4u64 {
            buf.extend_from_slice(&Frame::idle(ChannelId::new(0), k).encode());
        }
        let (frames, used) = decode_stream(&buf);
        assert_eq!(frames.len(), 4);
        assert_eq!(used, buf.len());
        // Corrupt the third frame.
        let frame_len = HEADER_LEN;
        buf[2 * frame_len + 9] ^= 1;
        let (frames, used) = decode_stream(&buf);
        assert_eq!(frames.len(), 2);
        assert_eq!(used, 2 * frame_len);
    }

    #[test]
    fn display_messages() {
        assert!(DecodeError::BadChecksum.to_string().contains("checksum"));
        assert!(DecodeError::Truncated { missing: 3 }
            .to_string()
            .contains("3 byte"));
        assert!(DecodeError::BadMagic { found: 0 }
            .to_string()
            .contains("magic"));
    }

    #[test]
    #[should_panic(expected = "payload exceeds")]
    fn oversized_payload_panics() {
        let _ = Frame::data(
            ChannelId::new(0),
            0,
            PageId::new(0),
            Bytes::from(vec![0u8; MAX_PAYLOAD + 1]),
        );
    }

    #[test]
    fn crc_is_stable() {
        // Pin the CRC algorithm so the wire format never drifts silently.
        assert_eq!(crc16(b"123456789", b""), 0x29B1); // CCITT-FALSE check value
        assert_eq!(crc16(b"", b"123456789"), 0x29B1);
        assert_eq!(crc16(b"1234", b"56789"), 0x29B1);
    }

    #[test]
    fn crc_golden_vectors_pin_table_against_bitwise() {
        // Known CCITT-FALSE values (init 0xFFFF, poly 0x1021, no reflection).
        let goldens: &[(&[u8], u16)] = &[
            (b"", 0xFFFF),
            (b"\x00", 0xE1F0),
            (b"\xFF", 0xFF00),
            (b"123456789", 0x29B1),
            (b"A", 0xB915),
            (b"AIRS", 0x1D9F),
        ];
        for &(input, expected) in goldens {
            assert_eq!(crc16(input, b""), expected, "table CRC of {input:?}");
            assert_eq!(
                crc16_bitwise(input, b""),
                expected,
                "bitwise CRC of {input:?}"
            );
        }
        // Exhaustive single-byte sweep plus a structured corpus: the table
        // rewrite must match the bitwise original on every split.
        for b in 0u8..=255 {
            assert_eq!(crc16(&[b], b""), crc16_bitwise(&[b], b""), "byte {b:#04x}");
        }
        let corpus: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for split in [0usize, 1, 23, 512, 1024] {
            assert_eq!(
                crc16(&corpus[..split], &corpus[split..]),
                crc16_bitwise(&corpus[..split], &corpus[split..]),
                "split at {split}"
            );
        }
    }

    #[test]
    fn wide_channel_is_rejected_not_truncated() {
        // Regression: the seed encoded channel 65536+ as 65535, which
        // round-tripped to the wrong channel. Hand-built frames (the fields
        // are public) must now fail to encode instead.
        let frame = Frame {
            channel: ChannelId::new(70_000),
            slot_time: 1,
            page: Some(PageId::new(0)),
            payload: Bytes::new(),
        };
        let mut buf = BytesMut::new();
        assert_eq!(
            frame.encode_into(&mut buf),
            Err(EncodeError::ChannelOutOfRange {
                channel: ChannelId::new(70_000)
            })
        );
        // A failed encode appends nothing.
        assert!(buf.is_empty());
        // The boundary channel still encodes and round-trips exactly.
        let edge = Frame::idle(ChannelId::new(MAX_CHANNEL_INDEX), 9);
        let decoded = Frame::decode(&edge.encode()).unwrap();
        assert_eq!(decoded.channel, ChannelId::new(MAX_CHANNEL_INDEX));
        let err = EncodeError::ChannelOutOfRange {
            channel: ChannelId::new(70_000),
        };
        assert!(err.to_string().contains("wire limit"));
    }

    #[test]
    #[should_panic(expected = "wire limit")]
    fn constructor_rejects_wide_channel() {
        let _ = Frame::data(
            ChannelId::new(u32::from(u16::MAX) + 1),
            0,
            PageId::new(0),
            Bytes::new(),
        );
    }

    #[test]
    #[should_panic(expected = "wire limit")]
    fn idle_constructor_rejects_wide_channel() {
        let _ = Frame::idle(ChannelId::new(u32::MAX), 0);
    }

    #[test]
    fn encode_into_reuses_one_buffer_across_a_column() {
        let frames = [
            Frame::data(
                ChannelId::new(0),
                5,
                PageId::new(1),
                Bytes::from_static(b"a"),
            ),
            Frame::idle(ChannelId::new(1), 5),
            Frame::data(
                ChannelId::new(2),
                5,
                PageId::new(3),
                Bytes::from_static(b"bcd"),
            ),
        ];
        let mut buf = BytesMut::with_capacity(256);
        let mut expected = Vec::new();
        let mut written = 0;
        for frame in &frames {
            written += frame.encode_into(&mut buf).unwrap();
            expected.extend_from_slice(&frame.encode());
        }
        assert_eq!(written, buf.len());
        assert_eq!(&buf[..], &expected[..]);
        let (decoded, used) = decode_stream(&buf);
        assert_eq!(used, buf.len());
        assert_eq!(decoded, frames);
        // Clearing retains the allocation for the next slot.
        let cap = buf.capacity();
        buf.clear();
        frames[0].encode_into(&mut buf).unwrap();
        assert_eq!(buf.capacity(), cap);
        assert_eq!(&buf[..], &frames[0].encode()[..]);
    }

    #[test]
    fn encode_into_rejects_oversized_payload() {
        let frame = Frame {
            channel: ChannelId::new(0),
            slot_time: 0,
            page: Some(PageId::new(0)),
            payload: Bytes::from(vec![0u8; MAX_PAYLOAD + 1]),
        };
        let mut buf = BytesMut::new();
        assert_eq!(
            frame.encode_into(&mut buf),
            Err(EncodeError::PayloadTooLarge {
                len: MAX_PAYLOAD + 1
            })
        );
        assert!(buf.is_empty());
    }

    mod robustness {
        use super::*;
        use proptest::prelude::*;

        fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
            prop::collection::vec(any::<u8>(), 0..max)
        }

        /// A valid encoded frame to mutate.
        fn arb_encoded() -> impl Strategy<Value = Vec<u8>> {
            (any::<u16>(), any::<u64>(), any::<u32>(), arb_bytes(48)).prop_map(
                |(ch, slot, page, payload)| {
                    Frame::data(
                        ChannelId::new(u32::from(ch)),
                        slot,
                        PageId::new(page),
                        Bytes::from(payload),
                    )
                    .encode()
                    .to_vec()
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary byte soup never panics the decoder, never makes
            /// it hand back more payload than was offered, and anything
            /// it does accept re-encodes to exactly the input.
            #[test]
            fn arbitrary_bytes_never_panic_or_overallocate(bytes in arb_bytes(96)) {
                // A typed error is the other allowed outcome.
                if let Ok(frame) = Frame::decode(&bytes) {
                    prop_assert!(frame.payload.len() <= bytes.len());
                    prop_assert_eq!(&frame.encode()[..], &bytes[..]);
                }
                let (frames, used) = decode_stream(&bytes);
                prop_assert!(used <= bytes.len());
                let total: usize = frames.iter().map(|f| f.payload.len()).sum();
                prop_assert!(total <= bytes.len());
            }

            /// Truncating a valid frame anywhere yields a typed error —
            /// and for cuts at or beyond the header, specifically
            /// `Truncated` (a short length prefix can also surface as a
            /// checksum/framing error, never a panic).
            #[test]
            fn truncated_frames_error_cleanly(encoded in arb_encoded(), cut in any::<usize>()) {
                let cut = cut % encoded.len().max(1);
                let err = Frame::decode(&encoded[..cut]).unwrap_err();
                if cut < HEADER_LEN {
                    prop_assert_eq!(err, DecodeError::Truncated { missing: HEADER_LEN - cut });
                } else {
                    prop_assert!(matches!(err, DecodeError::Truncated { .. }));
                }
            }

            /// A single flipped bit anywhere in a valid frame is always
            /// detected: decode either errors, or (when the flip lands in
            /// the length field and re-frames the buffer) returns a frame
            /// different from a clean re-encode of the original bytes.
            #[test]
            fn bit_flips_never_round_trip_silently(
                encoded in arb_encoded(),
                pos in any::<usize>(),
                bit in 0u8..8,
            ) {
                let original = Frame::decode(&encoded).unwrap();
                let mut tampered = encoded.clone();
                let pos = pos % tampered.len();
                tampered[pos] ^= 1 << bit;
                match Frame::decode(&tampered) {
                    Err(_) => {}
                    Ok(frame) => prop_assert_ne!(frame, original, "flip at byte {} bit {} went undetected", pos, bit),
                }
            }
        }
    }
}
