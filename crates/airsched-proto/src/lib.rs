//! # airsched-proto
//!
//! The wire format for time-constrained broadcast transmissions: every
//! slot on every channel becomes a checksummed [`frame::Frame`]
//! ([`transmitter::FrameStream`] produces them from a
//! [`airsched_core::program::BroadcastProgram`]; [`receiver::Receiver`]
//! reassembles a client's wanted pages and tracks slot gaps after dozing).
//!
//! ```
//! use airsched_core::group::GroupLadder;
//! use airsched_core::susc;
//! use airsched_core::types::PageId;
//! use airsched_proto::receiver::Receiver;
//! use airsched_proto::transmitter::{DebugPayloads, FrameStream};
//!
//! let ladder = GroupLadder::new(vec![(2, 2), (4, 3)])?;
//! let program = susc::schedule(&ladder, 2)?;
//! let mut rx = Receiver::new([PageId::new(4)]);
//! for frame in FrameStream::new(&program, DebugPayloads).take(16) {
//!     // Over the wire and back.
//!     let decoded = airsched_proto::frame::Frame::decode(&frame.encode())?;
//!     if rx.consume(&decoded).is_some() {
//!         break;
//!     }
//! }
//! assert!(rx.is_satisfied());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod frame;
pub mod receiver;
pub mod template;
pub mod transmitter;

pub use frame::{crc16, decode_stream, DecodeError, EncodeError, Frame};
pub use receiver::{Receiver, ReceiverStats, Reception};
pub use template::{
    CyclicPayloads, CyclicSource, DeltaTable, FrameTemplateCache, TemplateError, TemplateStats,
};
pub use transmitter::{
    encode_slot_into, frames_for_slot, DebugPayloads, FixedPayloads, FrameStream, PayloadSource,
};
