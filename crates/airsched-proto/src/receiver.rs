//! The receiving side: reassembling a client's view from a frame stream.
//!
//! [`Receiver`] consumes frames (one channel's worth or all channels'),
//! tracks slot synchronization, detects gaps after dozing, and surfaces
//! page receptions to the application.

use std::collections::BTreeSet;

use airsched_core::types::PageId;
use bytes::Bytes;

use crate::frame::Frame;

/// One successfully received page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reception {
    /// The page received.
    pub page: PageId,
    /// The slot it aired in.
    pub slot_time: u64,
    /// Its payload.
    pub payload: Bytes,
}

/// Receiver statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiverStats {
    /// Frames consumed (data + idle).
    pub frames: u64,
    /// Data frames carrying a wanted page.
    pub hits: u64,
    /// Slot-clock gaps observed (frames whose slot_time skipped ahead).
    pub gaps: u64,
}

/// A client-side receiver with a set of wanted pages.
///
/// # Examples
///
/// ```
/// use airsched_core::types::{ChannelId, PageId};
/// use airsched_proto::frame::Frame;
/// use airsched_proto::receiver::Receiver;
/// use bytes::Bytes;
///
/// let mut rx = Receiver::new([PageId::new(3)]);
/// let frame = Frame::data(ChannelId::new(0), 5, PageId::new(3), Bytes::from_static(b"hi"));
/// let got = rx.consume(&frame).unwrap();
/// assert_eq!(got.page, PageId::new(3));
/// assert!(rx.wanted().is_empty()); // satisfied
/// ```
#[derive(Debug, Clone)]
pub struct Receiver {
    wanted: BTreeSet<PageId>,
    last_slot: Option<u64>,
    stats: ReceiverStats,
}

impl Receiver {
    /// Creates a receiver wanting the given pages.
    pub fn new(wanted: impl IntoIterator<Item = PageId>) -> Self {
        Self {
            wanted: wanted.into_iter().collect(),
            last_slot: None,
            stats: ReceiverStats::default(),
        }
    }

    /// Pages still outstanding.
    #[must_use]
    pub fn wanted(&self) -> &BTreeSet<PageId> {
        &self.wanted
    }

    /// Adds a page to the want set.
    pub fn want(&mut self, page: PageId) {
        self.wanted.insert(page);
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Consumes one frame; returns a [`Reception`] if it satisfied a
    /// wanted page (which is then removed from the want set).
    pub fn consume(&mut self, frame: &Frame) -> Option<Reception> {
        self.stats.frames += 1;
        if let Some(last) = self.last_slot {
            if frame.slot_time > last + 1 {
                self.stats.gaps += 1;
            }
        }
        self.last_slot = Some(
            self.last_slot
                .map_or(frame.slot_time, |l| l.max(frame.slot_time)),
        );

        let page = frame.page?;
        if self.wanted.remove(&page) {
            self.stats.hits += 1;
            Some(Reception {
                page,
                slot_time: frame.slot_time,
                payload: frame.payload.clone(),
            })
        } else {
            None
        }
    }

    /// Whether every wanted page has been received.
    #[must_use]
    pub fn is_satisfied(&self) -> bool {
        self.wanted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;
    use airsched_core::types::ChannelId;
    use bytes::Bytes;

    use crate::transmitter::{DebugPayloads, FrameStream};

    #[test]
    fn receiver_collects_wanted_pages_from_a_stream() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        let program = susc::schedule(&ladder, 2).unwrap();
        let wanted: Vec<PageId> = ladder.pages().map(|(p, _)| p).collect();
        let mut rx = Receiver::new(wanted.iter().copied());
        let mut receptions = Vec::new();
        for frame in FrameStream::new(&program, DebugPayloads).take(64) {
            if let Some(r) = rx.consume(&frame) {
                receptions.push(r);
            }
            if rx.is_satisfied() {
                break;
            }
        }
        assert!(rx.is_satisfied(), "missing: {:?}", rx.wanted());
        assert_eq!(receptions.len(), wanted.len());
        assert_eq!(rx.stats().hits, wanted.len() as u64);
        // Every page within one cycle: a valid SUSC program airs all pages
        // in the first t_h slots.
        assert!(receptions.iter().all(|r| r.slot_time < program.cycle_len()));
    }

    #[test]
    fn unwanted_pages_are_ignored() {
        let mut rx = Receiver::new([PageId::new(7)]);
        let frame = Frame::data(
            ChannelId::new(0),
            0,
            PageId::new(3),
            Bytes::from_static(b"x"),
        );
        assert!(rx.consume(&frame).is_none());
        assert!(!rx.is_satisfied());
        assert_eq!(rx.stats().hits, 0);
        assert_eq!(rx.stats().frames, 1);
    }

    #[test]
    fn gaps_are_detected_after_dozing() {
        let mut rx = Receiver::new([]);
        rx.consume(&Frame::idle(ChannelId::new(0), 0));
        rx.consume(&Frame::idle(ChannelId::new(0), 1));
        rx.consume(&Frame::idle(ChannelId::new(0), 5)); // dozed 1..5
        assert_eq!(rx.stats().gaps, 1);
        rx.consume(&Frame::idle(ChannelId::new(0), 6));
        assert_eq!(rx.stats().gaps, 1);
    }

    #[test]
    fn want_can_grow_dynamically() {
        let mut rx = Receiver::new([]);
        assert!(rx.is_satisfied());
        rx.want(PageId::new(1));
        assert!(!rx.is_satisfied());
        let frame = Frame::data(
            ChannelId::new(0),
            0,
            PageId::new(1),
            Bytes::from_static(b"y"),
        );
        assert!(rx.consume(&frame).is_some());
        assert!(rx.is_satisfied());
        // Receiving it again is a no-op.
        assert!(rx.consume(&frame).is_none());
    }
}
