//! The receiving side: reassembling a client's view from a frame stream.
//!
//! [`Receiver`] consumes frames (one channel's worth or all channels'),
//! tracks slot synchronization, detects gaps after dozing, and surfaces
//! page receptions to the application.
//!
//! Real links corrupt frames. A receiver built with
//! [`Receiver::with_policy`] carries an
//! [`airsched_core::retry::RetryPolicy`] that bounds how long it chases a
//! page through the noise: every corrupt occurrence of a wanted page
//! ([`Receiver::consume_corrupt`]) burns one unit of that page's attempt
//! budget, an exhausted budget abandons the page (the client would fall
//! back to an on-demand channel), and a long enough run of *consecutive*
//! corrupt frames tunes the receiver away from the air entirely for the
//! policy's backoff window. [`Receiver::new`] keeps the legacy
//! behaviour — unlimited patience — via [`RetryPolicy::unlimited`].
//!
//! Receivers can optionally export their counters to an
//! [`airsched_obs::Obs`] handle via [`Receiver::attach_obs`]. All
//! receivers attached to the same handle share one set of
//! `airsched_receiver_*_total` series (the registry dedupes by name), so
//! the exported numbers are fleet aggregates; per-receiver figures remain
//! available through [`Receiver::stats`]. An unattached receiver pays
//! nothing.

use std::collections::{BTreeMap, BTreeSet};

use airsched_core::retry::RetryPolicy;
use airsched_core::types::PageId;
use airsched_obs::metrics::Counter;
use airsched_obs::Obs;
use bytes::Bytes;

use crate::frame::Frame;

/// One successfully received page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reception {
    /// The page received.
    pub page: PageId,
    /// The slot it aired in.
    pub slot_time: u64,
    /// Its payload.
    pub payload: Bytes,
}

/// Receiver statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiverStats {
    /// Frames consumed (data + idle + corrupt).
    pub frames: u64,
    /// Data frames carrying a wanted page, received intact.
    pub hits: u64,
    /// Slot-clock gaps observed (frames whose slot_time skipped ahead).
    pub gaps: u64,
    /// Corrupt frames seen (outside backoff windows).
    pub corrupt: u64,
    /// Wanted pages given up on after exhausting their attempt budget.
    pub abandoned: u64,
    /// Tune-aways triggered by runs of consecutive corrupt frames.
    pub tune_aways: u64,
    /// Frames ignored because they arrived inside a backoff window.
    pub ignored: u64,
}

/// Hot-path metric handles mirroring [`ReceiverStats`], one relaxed
/// atomic add per increment. Shared across every receiver attached to the
/// same [`Obs`] handle.
#[derive(Debug, Clone)]
struct ReceiverObs {
    frames: Counter,
    hits: Counter,
    gaps: Counter,
    corrupt: Counter,
    abandoned: Counter,
    tune_aways: Counter,
    ignored: Counter,
}

impl ReceiverObs {
    fn new(obs: &Obs) -> Self {
        let registry = obs.registry();
        Self {
            frames: registry.counter("airsched_receiver_frames_total", &[]),
            hits: registry.counter("airsched_receiver_hits_total", &[]),
            gaps: registry.counter("airsched_receiver_gaps_total", &[]),
            corrupt: registry.counter("airsched_receiver_corrupt_total", &[]),
            abandoned: registry.counter("airsched_receiver_abandoned_total", &[]),
            tune_aways: registry.counter("airsched_receiver_tune_aways_total", &[]),
            ignored: registry.counter("airsched_receiver_ignored_total", &[]),
        }
    }
}

/// A client-side receiver with a set of wanted pages.
///
/// # Examples
///
/// ```
/// use airsched_core::types::{ChannelId, PageId};
/// use airsched_proto::frame::Frame;
/// use airsched_proto::receiver::Receiver;
/// use bytes::Bytes;
///
/// let mut rx = Receiver::new([PageId::new(3)]);
/// let frame = Frame::data(ChannelId::new(0), 5, PageId::new(3), Bytes::from_static(b"hi"));
/// let got = rx.consume(&frame).unwrap();
/// assert_eq!(got.page, PageId::new(3));
/// assert!(rx.wanted().is_empty()); // satisfied
/// ```
///
/// Bounded retries over a noisy link:
///
/// ```
/// use airsched_core::retry::RetryPolicy;
/// use airsched_core::types::{ChannelId, PageId};
/// use airsched_proto::frame::Frame;
/// use airsched_proto::receiver::Receiver;
/// use bytes::Bytes;
///
/// let policy = RetryPolicy::new(2)?;
/// let mut rx = Receiver::with_policy([PageId::new(3)], policy);
/// let frame = Frame::data(ChannelId::new(0), 0, PageId::new(3), Bytes::new());
/// assert_eq!(rx.consume_corrupt(&frame), None);           // one attempt left
/// assert_eq!(rx.consume_corrupt(&frame), Some(PageId::new(3))); // abandoned
/// assert!(rx.wanted().is_empty());
/// assert!(rx.abandoned().contains(&PageId::new(3)));
/// # Ok::<(), airsched_core::retry::RetryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Receiver {
    wanted: BTreeSet<PageId>,
    /// Corrupt occurrences burned per still-wanted page.
    attempts: BTreeMap<PageId, u32>,
    /// Pages given up on (budget exhausted).
    abandoned: BTreeSet<PageId>,
    policy: RetryPolicy,
    /// Length of the current run of consecutive corrupt frames.
    corrupt_run: u32,
    /// While set, frames with `slot_time` below it are ignored.
    backoff_until: Option<u64>,
    last_slot: Option<u64>,
    stats: ReceiverStats,
    obs: Option<ReceiverObs>,
}

impl Receiver {
    /// Creates a receiver wanting the given pages, with unlimited retries
    /// (the legacy behaviour).
    pub fn new(wanted: impl IntoIterator<Item = PageId>) -> Self {
        Self::with_policy(wanted, RetryPolicy::unlimited())
    }

    /// Creates a receiver with a bounded [`RetryPolicy`].
    pub fn with_policy(wanted: impl IntoIterator<Item = PageId>, policy: RetryPolicy) -> Self {
        Self {
            wanted: wanted.into_iter().collect(),
            attempts: BTreeMap::new(),
            abandoned: BTreeSet::new(),
            policy,
            corrupt_run: 0,
            backoff_until: None,
            last_slot: None,
            stats: ReceiverStats::default(),
            obs: None,
        }
    }

    /// Exports this receiver's counters through `obs` as
    /// `airsched_receiver_*_total` series. Counters are shared (summed)
    /// across every receiver attached to the same handle.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = Some(ReceiverObs::new(obs));
    }

    /// Pages still outstanding.
    #[must_use]
    pub fn wanted(&self) -> &BTreeSet<PageId> {
        &self.wanted
    }

    /// Pages given up on after exhausting their attempt budget.
    #[must_use]
    pub fn abandoned(&self) -> &BTreeSet<PageId> {
        &self.abandoned
    }

    /// The retry policy in force.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Corrupt occurrences burned so far for a still-wanted page.
    #[must_use]
    pub fn attempts_for(&self, page: PageId) -> u32 {
        self.attempts.get(&page).copied().unwrap_or(0)
    }

    /// Whether the receiver is tuned away from the air at `slot_time`.
    #[must_use]
    pub fn is_backing_off(&self, slot_time: u64) -> bool {
        self.backoff_until.is_some_and(|until| slot_time < until)
    }

    /// Adds a page to the want set (clearing any previous abandonment —
    /// re-wanting a page restarts its budget).
    pub fn want(&mut self, page: PageId) {
        self.abandoned.remove(&page);
        self.attempts.remove(&page);
        self.wanted.insert(page);
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// Consumes one intact frame; returns a [`Reception`] if it satisfied
    /// a wanted page (which is then removed from the want set).
    ///
    /// Frames arriving inside a tune-away backoff window are ignored —
    /// the client is not listening, so even a wanted page passes it by.
    pub fn consume(&mut self, frame: &Frame) -> Option<Reception> {
        self.stats.frames += 1;
        if let Some(o) = &self.obs {
            o.frames.inc();
        }
        if self.is_backing_off(frame.slot_time) {
            self.stats.ignored += 1;
            if let Some(o) = &self.obs {
                o.ignored.inc();
            }
            return None;
        }
        self.backoff_until = None;
        self.track_slot(frame.slot_time);
        // Any intact frame proves the channel is alive again.
        self.corrupt_run = 0;

        let page = frame.page?;
        if self.wanted.remove(&page) {
            self.attempts.remove(&page);
            self.stats.hits += 1;
            if let Some(o) = &self.obs {
                o.hits.inc();
            }
            Some(Reception {
                page,
                slot_time: frame.slot_time,
                payload: frame.payload.clone(),
            })
        } else {
            None
        }
    }

    /// Consumes one frame that arrived corrupted (its header survived,
    /// its payload did not — the common failure on a bursty link).
    ///
    /// If the frame carried a wanted page, one unit of that page's
    /// attempt budget is burned; returns `Some(page)` when this
    /// corruption exhausted the budget and the page was abandoned. A long
    /// enough run of consecutive corrupt frames triggers the policy's
    /// tune-away: the receiver stops listening for `backoff_slots` slots.
    pub fn consume_corrupt(&mut self, frame: &Frame) -> Option<PageId> {
        self.stats.frames += 1;
        if let Some(o) = &self.obs {
            o.frames.inc();
        }
        if self.is_backing_off(frame.slot_time) {
            self.stats.ignored += 1;
            if let Some(o) = &self.obs {
                o.ignored.inc();
            }
            return None;
        }
        self.backoff_until = None;
        self.track_slot(frame.slot_time);
        self.stats.corrupt += 1;
        if let Some(o) = &self.obs {
            o.corrupt.inc();
        }

        let mut gave_up = None;
        if let Some(page) = frame.page {
            if self.wanted.contains(&page) {
                let burned = self.attempts.entry(page).or_insert(0);
                *burned = burned.saturating_add(1);
                if *burned >= self.policy.max_attempts() {
                    self.wanted.remove(&page);
                    self.attempts.remove(&page);
                    self.abandoned.insert(page);
                    self.stats.abandoned += 1;
                    if let Some(o) = &self.obs {
                        o.abandoned.inc();
                    }
                    gave_up = Some(page);
                }
            }
        }

        self.corrupt_run = self.corrupt_run.saturating_add(1);
        if self.corrupt_run >= self.policy.tune_away_after() {
            self.corrupt_run = 0;
            // Saturating: a "never come back" backoff near u64::MAX must
            // pin to the end of time, not wrap into the past.
            self.backoff_until = Some(
                self.policy
                    .backoff_deadline(frame.slot_time.saturating_add(1)),
            );
            self.stats.tune_aways += 1;
            if let Some(o) = &self.obs {
                o.tune_aways.inc();
            }
        }
        gave_up
    }

    /// Whether every wanted page has been received (abandoned pages no
    /// longer count as wanted — the client has already fallen back to an
    /// on-demand path for them).
    #[must_use]
    pub fn is_satisfied(&self) -> bool {
        self.wanted.is_empty()
    }

    fn track_slot(&mut self, slot_time: u64) {
        if let Some(last) = self.last_slot {
            if slot_time > last + 1 {
                self.stats.gaps += 1;
                if let Some(o) = &self.obs {
                    o.gaps.inc();
                }
            }
        }
        self.last_slot = Some(self.last_slot.map_or(slot_time, |l| l.max(slot_time)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::group::GroupLadder;
    use airsched_core::susc;
    use airsched_core::types::ChannelId;
    use bytes::Bytes;

    use crate::transmitter::{DebugPayloads, FrameStream};

    #[test]
    fn receiver_collects_wanted_pages_from_a_stream() {
        let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
        let program = susc::schedule(&ladder, 2).unwrap();
        let wanted: Vec<PageId> = ladder.pages().map(|(p, _)| p).collect();
        let mut rx = Receiver::new(wanted.iter().copied());
        let mut receptions = Vec::new();
        for frame in FrameStream::new(&program, DebugPayloads).take(64) {
            if let Some(r) = rx.consume(&frame) {
                receptions.push(r);
            }
            if rx.is_satisfied() {
                break;
            }
        }
        assert!(rx.is_satisfied(), "missing: {:?}", rx.wanted());
        assert_eq!(receptions.len(), wanted.len());
        assert_eq!(rx.stats().hits, wanted.len() as u64);
        // Every page within one cycle: a valid SUSC program airs all pages
        // in the first t_h slots.
        assert!(receptions.iter().all(|r| r.slot_time < program.cycle_len()));
    }

    #[test]
    fn unwanted_pages_are_ignored() {
        let mut rx = Receiver::new([PageId::new(7)]);
        let frame = Frame::data(
            ChannelId::new(0),
            0,
            PageId::new(3),
            Bytes::from_static(b"x"),
        );
        assert!(rx.consume(&frame).is_none());
        assert!(!rx.is_satisfied());
        assert_eq!(rx.stats().hits, 0);
        assert_eq!(rx.stats().frames, 1);
    }

    #[test]
    fn gaps_are_detected_after_dozing() {
        let mut rx = Receiver::new([]);
        rx.consume(&Frame::idle(ChannelId::new(0), 0));
        rx.consume(&Frame::idle(ChannelId::new(0), 1));
        rx.consume(&Frame::idle(ChannelId::new(0), 5)); // dozed 1..5
        assert_eq!(rx.stats().gaps, 1);
        rx.consume(&Frame::idle(ChannelId::new(0), 6));
        assert_eq!(rx.stats().gaps, 1);
    }

    #[test]
    fn want_can_grow_dynamically() {
        let mut rx = Receiver::new([]);
        assert!(rx.is_satisfied());
        rx.want(PageId::new(1));
        assert!(!rx.is_satisfied());
        let frame = Frame::data(
            ChannelId::new(0),
            0,
            PageId::new(1),
            Bytes::from_static(b"y"),
        );
        assert!(rx.consume(&frame).is_some());
        assert!(rx.is_satisfied());
        // Receiving it again is a no-op.
        assert!(rx.consume(&frame).is_none());
    }

    fn data(slot: u64, page: u32) -> Frame {
        Frame::data(ChannelId::new(0), slot, PageId::new(page), Bytes::new())
    }

    #[test]
    fn corrupt_occurrences_burn_the_attempt_budget() {
        let policy = RetryPolicy::new(3).unwrap();
        let mut rx = Receiver::with_policy([PageId::new(1)], policy);
        assert_eq!(rx.consume_corrupt(&data(0, 1)), None);
        assert_eq!(rx.attempts_for(PageId::new(1)), 1);
        assert_eq!(rx.consume_corrupt(&data(2, 1)), None);
        // Corrupt frames for other pages don't touch this budget.
        assert_eq!(rx.consume_corrupt(&data(3, 9)), None);
        assert_eq!(rx.attempts_for(PageId::new(1)), 2);
        // Third corruption exhausts the budget.
        assert_eq!(rx.consume_corrupt(&data(4, 1)), Some(PageId::new(1)));
        assert!(rx.wanted().is_empty());
        assert!(rx.abandoned().contains(&PageId::new(1)));
        assert!(rx.is_satisfied()); // fell back to on-demand
        assert_eq!(rx.stats().abandoned, 1);
        assert_eq!(rx.stats().corrupt, 4);
    }

    #[test]
    fn clean_reception_clears_the_attempt_count() {
        let policy = RetryPolicy::new(2).unwrap();
        let mut rx = Receiver::with_policy([PageId::new(1)], policy);
        rx.consume_corrupt(&data(0, 1));
        assert_eq!(rx.attempts_for(PageId::new(1)), 1);
        assert!(rx.consume(&data(2, 1)).is_some());
        assert_eq!(rx.attempts_for(PageId::new(1)), 0);
        // Re-wanting the page after abandonment restarts its budget.
        rx.consume_corrupt(&data(3, 1)); // not wanted: no budget burned
        rx.want(PageId::new(1));
        assert_eq!(rx.attempts_for(PageId::new(1)), 0);
    }

    #[test]
    fn consecutive_corruption_tunes_the_receiver_away() {
        let policy = RetryPolicy::unlimited().with_tune_away(2, 4).unwrap();
        let mut rx = Receiver::with_policy([PageId::new(1)], policy);
        rx.consume_corrupt(&data(0, 9));
        assert!(!rx.is_backing_off(1));
        rx.consume_corrupt(&data(1, 9)); // second in a row: tune away
        assert_eq!(rx.stats().tune_aways, 1);
        // Backing off through slots 2..=5; even a wanted page passes by.
        assert!(rx.is_backing_off(2));
        assert!(rx.consume(&data(3, 1)).is_none());
        assert_eq!(rx.stats().ignored, 1);
        assert!(!rx.is_satisfied());
        // Listening again from slot 6.
        assert!(!rx.is_backing_off(6));
        assert!(rx.consume(&data(6, 1)).is_some());
        assert!(rx.is_satisfied());
    }

    #[test]
    fn intact_frames_reset_the_corrupt_run() {
        let policy = RetryPolicy::unlimited().with_tune_away(2, 4).unwrap();
        let mut rx = Receiver::with_policy([], policy);
        rx.consume_corrupt(&data(0, 9));
        rx.consume(&Frame::idle(ChannelId::new(0), 1)); // run broken
        rx.consume_corrupt(&data(2, 9));
        assert_eq!(rx.stats().tune_aways, 0);
        rx.consume_corrupt(&data(3, 9));
        assert_eq!(rx.stats().tune_aways, 1);
    }

    #[test]
    fn attached_obs_counters_mirror_stats_exactly() {
        let obs = airsched_obs::Obs::new();
        let policy = RetryPolicy::new(2).unwrap().with_tune_away(3, 4).unwrap();
        let mut rx = Receiver::with_policy([PageId::new(1), PageId::new(2)], policy);
        rx.attach_obs(&obs);
        // Exercise every counter: a hit, a gap, corruption to abandonment,
        // a tune-away, and an ignored in-backoff frame.
        assert!(rx.consume(&data(0, 1)).is_some());
        rx.consume(&Frame::idle(ChannelId::new(0), 5)); // gap
        rx.consume_corrupt(&data(6, 2));
        rx.consume_corrupt(&data(7, 2)); // budget gone: abandoned
        rx.consume_corrupt(&data(8, 9)); // third in a row: tune away
        assert!(rx.consume(&data(9, 9)).is_none()); // ignored (backing off)

        let snapshot = obs.snapshot();
        let stats = rx.stats();
        for (name, want) in [
            ("airsched_receiver_frames_total", stats.frames),
            ("airsched_receiver_hits_total", stats.hits),
            ("airsched_receiver_gaps_total", stats.gaps),
            ("airsched_receiver_corrupt_total", stats.corrupt),
            ("airsched_receiver_abandoned_total", stats.abandoned),
            ("airsched_receiver_tune_aways_total", stats.tune_aways),
            ("airsched_receiver_ignored_total", stats.ignored),
        ] {
            assert!(want > 0, "{name}: test failed to exercise the counter");
            assert_eq!(snapshot.scalar_total(name), want, "{name} diverged");
        }
    }

    #[test]
    fn unattached_receiver_registers_nothing() {
        let obs = airsched_obs::Obs::new();
        let mut rx = Receiver::new([PageId::new(1)]);
        assert!(rx.consume(&data(0, 1)).is_some());
        assert!(obs.snapshot().families.is_empty());
        assert_eq!(rx.stats().hits, 1);
    }

    #[test]
    fn unlimited_policy_never_abandons() {
        let mut rx = Receiver::new([PageId::new(1)]);
        for slot in 0..100 {
            assert_eq!(rx.consume_corrupt(&data(slot, 1)), None);
        }
        assert!(rx.wanted().contains(&PageId::new(1)));
        assert!(rx.abandoned().is_empty());
        assert_eq!(rx.stats().tune_aways, 0);
    }
}
