//! Property tests for the wire format: round-trip fidelity, decoder
//! robustness against arbitrary and corrupted bytes, and bit-identity of
//! the incremental-CRC template path against full re-encoding.

use std::collections::BTreeMap;

use proptest::prelude::*;

use airsched_core::types::{ChannelId, PageId};
use airsched_proto::frame::{decode_stream, Frame, HEADER_LEN};
use airsched_proto::template::{CyclicPayloads, CyclicSource, DeltaTable, FrameTemplateCache};
use airsched_proto::transmitter::encode_slot_into;
use bytes::{Bytes, BytesMut};

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u32..u32::from(u16::MAX),
        any::<u64>(),
        prop::option::of(any::<u32>()),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(channel, slot, page, payload)| match page {
            Some(p) => Frame::data(
                ChannelId::new(channel),
                slot,
                PageId::new(p),
                Bytes::from(payload),
            ),
            None => Frame::idle(ChannelId::new(channel), slot),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every frame round-trips bit-exactly.
    #[test]
    fn frame_round_trip(frame in arb_frame()) {
        let encoded = frame.encode();
        let decoded = Frame::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&bytes);
        let _ = decode_stream(&bytes);
    }

    /// Any single-bit flip in an encoded frame is detected.
    #[test]
    fn single_bit_flips_are_detected(
        frame in arb_frame(),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = frame.encode().to_vec();
        let idx = byte_sel.index(bytes.len());
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            Frame::decode(&bytes).is_err(),
            "flip of bit {} at byte {} went undetected",
            bit,
            idx
        );
    }

    /// Concatenated frames decode back to the same sequence.
    #[test]
    fn stream_round_trip(frames in prop::collection::vec(arb_frame(), 0..8)) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let (decoded, used) = decode_stream(&wire);
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, frames);
    }

    /// Truncating an encoded frame anywhere strictly inside it is reported
    /// as truncation or checksum failure, never success.
    #[test]
    fn truncation_is_detected(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = frame.encode();
        prop_assume!(bytes.len() > HEADER_LEN || !frame.payload.is_empty() || bytes.len() > 1);
        let cut = cut.index(bytes.len().saturating_sub(1).max(1));
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }
}

/// Payload per page id, fixed across slots (the template-cache contract).
#[derive(Debug, Default)]
struct MapPayloads(BTreeMap<u32, Vec<u8>>);

impl CyclicPayloads for MapPayloads {
    fn page_payload(&mut self, page: PageId, out: &mut BytesMut) {
        if let Some(bytes) = self.0.get(&page.index()) {
            out.extend_from_slice(bytes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The incremental-CRC delta operator equals a full recomputation for
    /// arbitrary messages: two messages differing only in the 8 slot bytes
    /// have checksums differing by exactly `delta(xor)`, for any tail.
    #[test]
    fn crc_delta_equals_full_recomputation(
        prefix in prop::collection::vec(any::<u8>(), 8),
        tail in prop::collection::vec(any::<u8>(), 0..1024),
        slot_a in any::<u64>(),
        slot_b in any::<u64>(),
    ) {
        let table = DeltaTable::new(tail.len());
        let message = |slot: u64| {
            let mut m = prefix.clone();
            m.extend_from_slice(&slot.to_be_bytes());
            m.extend_from_slice(&tail);
            m
        };
        let full_a = airsched_proto::crc16(&message(slot_a), b"");
        let full_b = airsched_proto::crc16(&message(slot_b), b"");
        let mut xor = [0u8; 8];
        for (x, (a, b)) in xor
            .iter_mut()
            .zip(slot_a.to_be_bytes().iter().zip(slot_b.to_be_bytes().iter()))
        {
            *x = a ^ b;
        }
        prop_assert_eq!(full_a ^ full_b, table.delta(xor));
    }

    /// Template-patched frames are byte-identical to fresh encoding for
    /// arbitrary grids, payload lengths, slot times, and stall patterns
    /// (stalled cells air idle frames on both paths).
    #[test]
    fn template_patching_matches_fresh_encoding(
        channels in 1u32..4,
        cycle_len in 1u64..5,
        cell_seed in prop::collection::vec(prop::option::of(0u32..6), 16),
        payload_lens in prop::collection::vec(0usize..300, 6),
        slot_times in prop::collection::vec(any::<u64>(), 1..5),
        stall_mask in any::<u16>(),
    ) {
        let n = (channels as usize) * (cycle_len as usize);
        let cells: Vec<Option<PageId>> = (0..n)
            .map(|i| cell_seed[i % cell_seed.len()].map(PageId::new))
            .collect();
        let mut payloads = MapPayloads(
            payload_lens
                .iter()
                .enumerate()
                .map(|(page, &len)| {
                    (
                        page as u32,
                        (0..len).map(|i| (i as u8) ^ (page as u8).wrapping_mul(37)).collect(),
                    )
                })
                .collect(),
        );
        let mut cache =
            FrameTemplateCache::from_cells(channels, cycle_len, &cells, &mut payloads)
                .expect("grid encodes");
        let mut patched = BytesMut::new();
        let mut fresh = BytesMut::new();
        for &slot_time in &slot_times {
            let col = (slot_time % cycle_len) as usize;
            let on_air: Vec<Option<PageId>> = (0..channels as usize)
                .map(|ch| {
                    if stall_mask & (1 << (ch % 16)) != 0 {
                        None // stalled channel: idle carrier, no rebuild
                    } else {
                        cells[ch * cycle_len as usize + col]
                    }
                })
                .collect();
            patched.clear();
            let wrote = cache
                .encode_slot_into(&on_air, slot_time, &mut patched)
                .expect("on-air column matches the cached plan");
            fresh.clear();
            encode_slot_into(
                &on_air,
                slot_time,
                &mut CyclicSource::new(&mut payloads),
                &mut fresh,
            )
            .expect("fresh encoding succeeds");
            prop_assert_eq!(wrote, patched.len());
            prop_assert_eq!(&patched[..], &fresh[..], "slot {}", slot_time);
            // Patched CRCs are valid end to end: every frame decodes.
            let (frames, used) = decode_stream(&patched);
            prop_assert_eq!(used, patched.len());
            prop_assert_eq!(frames.len(), channels as usize);
        }
    }
}
