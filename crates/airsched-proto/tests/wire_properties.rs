//! Property tests for the wire format: round-trip fidelity and decoder
//! robustness against arbitrary and corrupted bytes.

use proptest::prelude::*;

use airsched_core::types::{ChannelId, PageId};
use airsched_proto::frame::{decode_stream, Frame, HEADER_LEN};
use bytes::Bytes;

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u32..u32::from(u16::MAX),
        any::<u64>(),
        prop::option::of(any::<u32>()),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(channel, slot, page, payload)| match page {
            Some(p) => Frame::data(
                ChannelId::new(channel),
                slot,
                PageId::new(p),
                Bytes::from(payload),
            ),
            None => Frame::idle(ChannelId::new(channel), slot),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every frame round-trips bit-exactly.
    #[test]
    fn frame_round_trip(frame in arb_frame()) {
        let encoded = frame.encode();
        let decoded = Frame::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// The decoder never panics on arbitrary bytes.
    #[test]
    fn decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&bytes);
        let _ = decode_stream(&bytes);
    }

    /// Any single-bit flip in an encoded frame is detected.
    #[test]
    fn single_bit_flips_are_detected(
        frame in arb_frame(),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = frame.encode().to_vec();
        let idx = byte_sel.index(bytes.len());
        bytes[idx] ^= 1 << bit;
        prop_assert!(
            Frame::decode(&bytes).is_err(),
            "flip of bit {} at byte {} went undetected",
            bit,
            idx
        );
    }

    /// Concatenated frames decode back to the same sequence.
    #[test]
    fn stream_round_trip(frames in prop::collection::vec(arb_frame(), 0..8)) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let (decoded, used) = decode_stream(&wire);
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(decoded, frames);
    }

    /// Truncating an encoded frame anywhere strictly inside it is reported
    /// as truncation or checksum failure, never success.
    #[test]
    fn truncation_is_detected(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = frame.encode();
        prop_assume!(bytes.len() > HEADER_LEN || !frame.payload.is_empty() || bytes.len() > 1);
        let cut = cut.index(bytes.len().saturating_sub(1).max(1));
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }
}
