//! Smoke tests: every figure/experiment binary runs end to end at reduced
//! scale and prints its expected markers. Guards the harness against
//! bit-rot without paying full paper-scale runtimes in CI.

use std::process::Command;

/// Reduced-scale workload arguments shared by the sweeps.
const SMALL: &[&str] = &[
    "--n",
    "80",
    "--groups",
    "4",
    "--t1",
    "4",
    "--requests",
    "400",
];

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn fig3_distributions() {
    let text = run(env!("CARGO_BIN_EXE_fig3_distributions"), SMALL);
    assert!(text.contains("Figure 3"));
    assert!(text.contains("L-skewed"));
}

#[test]
fn fig4_parameters() {
    let text = run(env!("CARGO_BIN_EXE_fig4_parameters"), &[]);
    assert!(text.contains("Figure 4"));
    assert!(text.contains("3000"));
}

#[test]
fn fig5_table_csv_and_plot() {
    let mut args = SMALL.to_vec();
    args.extend(["--dist", "uniform", "--step", "3"]);
    let text = run(env!("CARGO_BIN_EXE_fig5"), &args);
    assert!(text.contains("PAMAD"));
    assert!(text.contains("N_min"));

    let mut args_csv = args.clone();
    args_csv.extend(["--csv", "true"]);
    let csv = run(env!("CARGO_BIN_EXE_fig5"), &args_csv);
    assert!(csv.contains("channels,PAMAD,m-PB,OPT"));

    let mut args_plot = args;
    args_plot.extend(["--plot", "true"]);
    let plot = run(env!("CARGO_BIN_EXE_fig5"), &args_plot);
    assert!(plot.contains("* PAMAD"));
}

#[test]
fn fig5_ci() {
    let mut args = SMALL.to_vec();
    args.extend(["--dist", "uniform", "--step", "5", "--seeds", "2"]);
    let text = run(env!("CARGO_BIN_EXE_fig5_ci"), &args);
    assert!(text.contains("95% CI"));
}

#[test]
fn table_onefifth() {
    let text = run(env!("CARGO_BIN_EXE_table_onefifth"), SMALL);
    assert!(text.contains("AvgD@N/5"));
}

#[test]
fn ablations_and_perf() {
    let mut args = SMALL.to_vec();
    args.extend(["--dist", "uniform", "--step", "5"]);
    let text = run(env!("CARGO_BIN_EXE_ablation_objective"), &args);
    assert!(text.contains("Eq2-literal"));

    let text = run(env!("CARGO_BIN_EXE_ablation_opt"), &[]);
    assert!(text.contains("structured"));

    let mut args = SMALL.to_vec();
    args.extend(["--dist", "uniform"]);
    let text = run(env!("CARGO_BIN_EXE_opt_perf"), &args);
    assert!(text.contains("evaluated"));
}

#[test]
fn extension_experiments() {
    let mut args = SMALL.to_vec();
    args.extend(["--dist", "uniform"]);

    let text = run(env!("CARGO_BIN_EXE_fairness"), &args);
    assert!(text.contains("Jain"));

    let mut hybrid_args = args.clone();
    hybrid_args.extend(["--budget", "4", "--horizon", "2000"]);
    let text = run(env!("CARGO_BIN_EXE_hybrid_split"), &hybrid_args);
    assert!(text.contains("best split"));

    let text = run(env!("CARGO_BIN_EXE_zipf_access"), &args);
    assert!(text.contains("zipf-aware"));

    let mut mg_args = args.clone();
    mg_args.extend(["--samples", "40"]);
    let text = run(env!("CARGO_BIN_EXE_multiget"), &mg_args);
    assert!(text.contains("speedup"));

    let mut drop_args = args.clone();
    drop_args.extend(["--horizon", "2000"]);
    let text = run(env!("CARGO_BIN_EXE_drop_vs_pamad"), &drop_args);
    assert!(text.contains("drop+SUSC"));

    let text = run(env!("CARGO_BIN_EXE_placement_stats"), &args);
    assert!(text.contains("in window %"));
}

#[test]
fn report_all_writes_markdown() {
    let dir = std::env::temp_dir().join("airsched-bench-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("report.md");
    let mut args = SMALL.to_vec();
    let path_str = path.to_str().unwrap();
    args.extend(["--dist", "uniform", "--step", "5", "--out", path_str]);
    let text = run(env!("CARGO_BIN_EXE_report_all"), &args);
    assert!(text.contains("wrote"));
    let report = std::fs::read_to_string(&path).unwrap();
    assert!(report.contains("# airsched reproduction report"));
    assert!(report.contains("Figure 2"));
    std::fs::remove_file(&path).ok();
}
