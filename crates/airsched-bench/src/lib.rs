//! # airsched-bench
//!
//! The reproduction harness: one binary per table/figure of the paper plus
//! Criterion micro-benchmarks.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `fig3_distributions` | Figure 3 — the four group-size distributions |
//! | `fig4_parameters` | Figure 4 — the experiment parameter table |
//! | `fig5` | Figure 5(a–d) — AvgD vs channels for PAMAD / m-PB / OPT |
//! | `fig5_ci` | Figure 5 with mean ± 95% CI over independent seeds |
//! | `table_onefifth` | §5's "1/5 of the minimum channels" observation |
//! | `ablation_objective` | Eq. 2-literal vs §4.1-normalized objective |
//! | `ablation_opt` | structured vs full-exhaustive OPT gap |
//! | `opt_perf` | OPT search cost vs channel count |
//! | `planner_perf` | planner/measurement perf baseline → `BENCH_planner.json` |
//! | `station_perf` | serving-path perf vs the seed station → `BENCH_station.json` |
//! | `drop_vs_pamad` | §4 Solution 1 (drop pages) vs PAMAD, with on-demand congestion |
//! | `fairness` | per-group normalized delay and Jain index (design-rationale ablation) |
//! | `hybrid_split` | push/pull transceiver budget split (extension) |
//! | `zipf_access` | access-skew-aware objective (extension) |
//! | `sensitivity` | robustness to h, n, c, seed (extension) |
//! | `multiget` | composite requests on one tuner (extension) |
//! | `ablation_placement` | even-spread vs packed/random placement |
//! | `placement_stats` | Algorithm 4's ideal-window claim, measured |
//! | `flash_crowd` | bursty vs Poisson arrivals on the pull queue |
//! | `report_all` | the whole reproduction as one markdown report |
//!
//! Run e.g. `cargo run --release -p airsched-bench --bin fig5 -- --dist all`.
//! Every binary accepts `--requests`, `--seed` and prints deterministic
//! output for fixed seeds.

use airsched_analysis::experiment::ExperimentConfig;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

/// Parses the common `--key value` options shared by the figure binaries.
///
/// Returns `(config, dists, extra)` where `extra` holds the raw pairs for
/// binary-specific options.
///
/// # Panics
///
/// Panics with a usage message on malformed options (these are internal
/// harness binaries; a parse failure is an operator error).
#[must_use]
pub fn parse_common_args() -> (
    ExperimentConfig,
    Vec<GroupSizeDistribution>,
    Vec<(String, String)>,
) {
    let mut config = ExperimentConfig::paper_defaults();
    let mut spec = WorkloadSpec::paper_defaults();
    let mut dists = vec![];
    let mut extra = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        let key = key
            .strip_prefix("--")
            .unwrap_or_else(|| panic!("expected --key, got '{key}'"))
            .to_string();
        let value = args
            .next()
            .unwrap_or_else(|| panic!("--{key} needs a value"));
        match key.as_str() {
            "dist" => {
                if value == "all" {
                    dists = GroupSizeDistribution::ALL.to_vec();
                } else {
                    dists.push(
                        GroupSizeDistribution::parse(&value)
                            .unwrap_or_else(|| panic!("unknown distribution '{value}'")),
                    );
                }
            }
            "requests" => config.requests = value.parse().expect("--requests: integer"),
            "seed" => config.seed = value.parse().expect("--seed: integer"),
            "n" => spec = spec.total_pages(value.parse().expect("--n: integer")),
            "groups" => spec = spec.groups(value.parse().expect("--groups: integer")),
            "t1" => spec = spec.base_time(value.parse().expect("--t1: integer")),
            "ratio" => spec = spec.time_ratio(value.parse().expect("--ratio: integer")),
            _ => extra.push((key, value)),
        }
    }
    if dists.is_empty() {
        dists = GroupSizeDistribution::ALL.to_vec();
    }
    config.spec = spec;
    (config, dists, extra)
}

/// Looks up a binary-specific option from `extra`, parsed, with a default.
///
/// # Panics
///
/// Panics if the value does not parse.
#[must_use]
pub fn extra_num<T: std::str::FromStr>(extra: &[(String, String)], key: &str, default: T) -> T {
    extra
        .iter()
        .find(|(k, _)| k == key)
        .map_or(default, |(_, v)| {
            v.parse().unwrap_or_else(|_| panic!("--{key}: bad value"))
        })
}

/// Whether a binary-specific boolean option (`--key true/1/yes`) was passed.
#[must_use]
pub fn extra_flag(extra: &[(String, String)], key: &str) -> bool {
    extra
        .iter()
        .any(|(k, v)| k == key && (v == "true" || v == "1" || v == "yes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extra_num_parses_with_default() {
        let extra = vec![("step".to_string(), "3".to_string())];
        assert_eq!(extra_num(&extra, "step", 1u32), 3);
        assert_eq!(extra_num(&extra, "missing", 7u32), 7);
    }

    #[test]
    fn extra_flag_detects_truthy() {
        let extra = vec![
            ("csv".to_string(), "true".to_string()),
            ("x".to_string(), "no".to_string()),
        ];
        assert!(extra_flag(&extra, "csv"));
        assert!(!extra_flag(&extra, "x"));
        assert!(!extra_flag(&extra, "absent"));
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn extra_num_panics_on_garbage() {
        let extra = vec![("step".to_string(), "zz".to_string())];
        let _: u32 = extra_num(&extra, "step", 1u32);
    }
}
