//! Planner & measurement performance baseline: times the pruned/parallel
//! OPT searches, the incremental PAMAD stage loop, the closed-form exact
//! AvgD, sharded measurement, and the validity sweep at Figure-5 scale,
//! and emits machine-readable `BENCH_planner.json` so later PRs have a
//! trajectory to beat.
//!
//! Run: `cargo run --release -p airsched-bench --bin planner_perf`
//!
//! Options (beyond the common `--dist/--n/--groups/--t1/--ratio/--requests/
//! --seed`): `--threads <k>` to override the worker count (default: all
//! available cores) and `--out <path>` for the JSON file (default
//! `BENCH_planner.json` in the working directory).
//!
//! The binary **exits non-zero** if any optimized path diverges from its
//! reference (parallel vs serial OPT, closed-form vs scanned AvgD,
//! sharded vs serial measurement) — CI runs it as a correctness gate.

use std::time::Instant;

use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::group::GroupLadder;
use airsched_core::{opt, pamad, validity};
use airsched_sim::access::{self, Measurer};
use airsched_workload::requests::{AccessPattern, RequestGenerator};

/// Wall time of `f` in microseconds, best of `reps` runs (the searches are
/// deterministic, so min-of-k isolates scheduler noise).
fn time_us<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    (out.expect("reps >= 1"), best)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let (config, dists, extra) = parse_common_args();
    let config = config.with_distribution(dists[0]);
    let ladder = config.ladder().expect("workload builds");
    let threads = extra_num(
        &extra,
        "threads",
        std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
    );
    let out_path = extra
        .iter()
        .find(|(k, _)| k == "out")
        .map_or_else(|| "BENCH_planner.json".to_string(), |(_, v)| v.clone());

    let n_min = minimum_channels(&ladder);
    let mut divergences: Vec<String> = Vec::new();
    println!(
        "planner_perf on {} ({} pages, {} groups, t1={}, t_h={}) — N_min = {n_min}, {threads} threads\n",
        dists[0],
        ladder.total_pages(),
        ladder.group_count(),
        ladder.times()[0],
        ladder.max_time()
    );

    // --- OPT r-structured at N = N_min (the Figure-5 operating point). ---
    let (unpruned, unpruned_us) = time_us(3, || {
        opt::search_r_structured_unpruned(&ladder, n_min, Weighting::PaperEq2)
    });
    let (serial, serial_us) = time_us(3, || {
        opt::search_r_structured(&ladder, n_min, Weighting::PaperEq2)
    });
    let (parallel, parallel_us) = time_us(3, || {
        opt::search_r_structured_parallel(&ladder, n_min, Weighting::PaperEq2, threads)
    });
    let opt_identical = serial.frequencies() == unpruned.frequencies()
        && serial.objective() == unpruned.objective()
        && parallel.frequencies() == serial.frequencies()
        && parallel.objective() == serial.objective();
    if !opt_identical {
        divergences.push("opt_r_structured: pruned/parallel diverge from reference".into());
    }
    if serial.evaluated() >= unpruned.evaluated() {
        divergences.push(format!(
            "opt_r_structured: pruning did not reduce evaluations ({} vs {})",
            serial.evaluated(),
            unpruned.evaluated()
        ));
    }
    // Headline: the seed paid the unpruned serial cost; the new planner
    // pays the pruned (parallel where cores exist) cost.
    let opt_speedup = unpruned_us / parallel_us.min(serial_us);
    println!("OPT r-structured @ N={n_min}:");
    println!(
        "  unpruned serial  {unpruned_us:>10.1} µs  evaluated {}",
        unpruned.evaluated()
    );
    println!(
        "  pruned serial    {serial_us:>10.1} µs  evaluated {} (cut {})",
        serial.evaluated(),
        serial.pruned()
    );
    println!(
        "  pruned parallel  {parallel_us:>10.1} µs  ({threads} threads)  speedup vs seed: {opt_speedup:.1}x\n"
    );

    // --- Full branch-and-bound on a reduced ladder (its cap space at full
    // paper scale is astronomically larger than the structured space). ---
    let bnb_ladder = GroupLadder::geometric(2, 2, &[6, 8, 10, 4, 2]).expect("static ladder");
    let bnb_n = minimum_channels(&bnb_ladder);
    let bnb_config = opt::OptConfig::default();
    let (bnb_serial, bnb_serial_us) =
        time_us(3, || opt::search_full_bnb(&bnb_ladder, bnb_n, bnb_config));
    let (bnb_parallel, bnb_parallel_us) = time_us(3, || {
        opt::search_full_bnb_parallel(&bnb_ladder, bnb_n, bnb_config, threads)
    });
    let bnb_identical = bnb_parallel.frequencies() == bnb_serial.frequencies()
        && bnb_parallel.objective() == bnb_serial.objective();
    if !bnb_identical {
        divergences.push("bnb: parallel diverges from serial".into());
    }
    println!(
        "B&B (reduced ladder, N={bnb_n}): serial {bnb_serial_us:.1} µs, parallel {bnb_parallel_us:.1} µs, evaluated {} (cut {})\n",
        bnb_serial.evaluated(),
        bnb_serial.pruned()
    );

    // --- PAMAD stage loop (incremental, windowed trace). ---
    let (plan, pamad_us) = time_us(5, || {
        pamad::derive_frequencies(&ladder, n_min, Weighting::PaperEq2)
    });
    let stage_evaluated: u64 = plan.stages().iter().map(|s| s.evaluated).sum();
    println!("PAMAD derive_frequencies @ N={n_min}: {pamad_us:.1} µs, {stage_evaluated} stage candidates\n");

    // --- Exact AvgD: closed form vs per-arrival scan, on a program with
    // real delays (half the minimum channels). ---
    let meas_n = (n_min / 2).max(1);
    let program = pamad::schedule(&ladder, meas_n)
        .expect("schedule builds")
        .into_program();
    let (fast, fast_us) = time_us(3, || access::exact_avg_delay(&program, &ladder));
    let (slow, slow_us) = time_us(1, || {
        access::reference::exact_avg_delay_scan(&program, &ladder)
    });
    if fast != slow {
        divergences.push(format!(
            "exact_avg_delay: closed form {fast:?} != scan {slow:?}"
        ));
    }
    println!(
        "exact AvgD @ N={meas_n} (cycle {}): closed form {fast_us:.1} µs vs scan {slow_us:.1} µs ({:.0}x)\n",
        program.cycle_len(),
        slow_us / fast_us
    );

    // --- Measurement: serial vs sharded. ---
    let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, config.seed)
        .take(config.requests, program.cycle_len());
    let (serial_meas, meas_serial_us) =
        time_us(3, || Measurer::new().measure(&program, &ladder, &requests));
    let (parallel_meas, meas_parallel_us) = time_us(3, || {
        Measurer::new()
            .parallelism(threads)
            .measure(&program, &ladder, &requests)
    });
    if serial_meas != parallel_meas {
        divergences.push("measure: sharded summary diverges from serial".into());
    }
    println!(
        "measure {} requests: serial {meas_serial_us:.1} µs, {threads}-way {meas_parallel_us:.1} µs\n",
        requests.len()
    );

    // --- Validity sweep (allocation-free gap iterator). ---
    let (report, validity_us) = time_us(5, || validity::check(&program, &ladder));
    println!(
        "validity sweep: {validity_us:.1} µs ({})\n",
        if report.is_valid() {
            "valid"
        } else {
            "invalid"
        }
    );

    // --- Difference-constraint solver: feasibility check, synthesis, and
    // the KSY PTAS baseline, each gated against its reference. ---
    let epsilon = extra_num(&extra, "epsilon", 0.1f64);
    let (check_verdict, solve_check_us) = time_us(3, || {
        airsched_solve::check_ladder(&ladder, n_min).expect("paper ladder encodes")
    });
    if !check_verdict.is_feasible() {
        divergences.push(format!("solve: N_min = {n_min} certified infeasible"));
    }
    if n_min > 1 {
        match airsched_solve::check_ladder(&ladder, n_min - 1).expect("paper ladder encodes") {
            airsched_solve::Verdict::Infeasible(cert) => {
                if cert.replay().is_err() {
                    divergences.push("solve: certificate below N_min fails replay".into());
                }
            }
            airsched_solve::Verdict::Feasible(_) => {
                divergences.push(format!("solve: N_min - 1 = {} feasible", n_min - 1));
            }
        }
    }
    let (synth_program, solve_synth_us) = time_us(3, || {
        airsched_solve::synthesize(&ladder, n_min).expect("feasible at the minimum")
    });
    if !validity::check(&synth_program, &ladder).is_valid() {
        divergences.push("solve: synthesized program fails validity::check".into());
    }
    // Solver-vs-validity cross-check on the measured (below-minimum)
    // program: the two verdicts must be identical.
    let program_verdict = airsched_solve::check_program(&program, &ladder);
    if program_verdict.is_feasible() != report.is_valid() {
        divergences.push(format!(
            "solve: check_program {} but validity::check {}",
            program_verdict.is_feasible(),
            report.is_valid()
        ));
    }
    println!(
        "solve: check @ N={n_min} {solve_check_us:.1} µs ({}), synth {solve_synth_us:.1} µs ({} slots)",
        if check_verdict.is_feasible() {
            "feasible"
        } else {
            "infeasible"
        },
        synth_program.occupied_slots()
    );

    // PTAS at the measurement point (real delays): its objective must stay
    // within (1 + epsilon) of the r-structured OPT's, the paper's
    // reference. (The seed tracks that optimum closely, so the grid search
    // never drifts above the epsilon band.)
    let opt_meas = opt::search_r_structured(&ladder, meas_n, Weighting::PaperEq2);
    let (ptas_out, ptas_us) = time_us(1, || {
        airsched_solve::ptas::approximate(&ladder, meas_n, epsilon, Weighting::PaperEq2)
    });
    let ptas_ratio = ptas_out.ratio_vs(opt_meas.objective());
    if !ptas_ratio.is_finite() || ptas_ratio > 1.0 + epsilon + 1e-9 {
        divergences.push(format!(
            "ptas: ratio vs r-structured OPT at N={meas_n} is {ptas_ratio} (epsilon {epsilon})"
        ));
    }
    println!(
        "solve: PTAS @ N={meas_n} eps={epsilon}: {ptas_us:.1} µs, {} candidates, ratio vs OPT {ptas_ratio:.4}\n",
        ptas_out.evaluated()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"planner_perf\",\n",
            "  \"workload\": {{\"dist\": \"{dist}\", \"pages\": {pages}, \"groups\": {groups}, ",
            "\"t1\": {t1}, \"t_h\": {th}, \"n_min\": {n_min}}},\n",
            "  \"threads\": {threads},\n",
            "  \"opt_r_structured\": {{\"unpruned_serial_us\": {o_u}, \"pruned_serial_us\": {o_s}, ",
            "\"pruned_parallel_us\": {o_p}, \"evaluated_unpruned\": {e_u}, \"evaluated_pruned\": {e_p}, ",
            "\"pruned_subtrees\": {cut}, \"speedup_vs_unpruned_serial\": {o_x}, \"identical\": {o_id}}},\n",
            "  \"bnb\": {{\"serial_us\": {b_s}, \"parallel_us\": {b_p}, \"evaluated\": {b_e}, ",
            "\"pruned_subtrees\": {b_c}, \"identical\": {b_id}}},\n",
            "  \"pamad\": {{\"derive_us\": {p_us}, \"stage_candidates\": {p_e}}},\n",
            "  \"exact_avg_delay\": {{\"closed_form_us\": {d_f}, \"scan_us\": {d_s}, ",
            "\"speedup\": {d_x}, \"identical\": {d_id}}},\n",
            "  \"measure\": {{\"requests\": {m_n}, \"serial_us\": {m_s}, \"parallel_us\": {m_p}, ",
            "\"identical\": {m_id}}},\n",
            "  \"validity\": {{\"check_us\": {v_us}, \"valid\": {v_ok}}},\n",
            "  \"solve\": {{\"check_us\": {s_c}, \"synth_us\": {s_s}, \"ptas_us\": {s_p}, ",
            "\"ptas_epsilon\": {s_eps}, \"ptas_evaluated\": {s_ev}, \"ptas_ratio_vs_opt\": {s_r}, ",
            "\"feasible_at_min\": {s_ok}, \"verdicts_agree\": {s_ag}}},\n",
            "  \"divergences\": {divs}\n",
            "}}\n"
        ),
        dist = dists[0],
        pages = ladder.total_pages(),
        groups = ladder.group_count(),
        t1 = ladder.times()[0],
        th = ladder.max_time(),
        n_min = n_min,
        threads = threads,
        o_u = json_f(unpruned_us),
        o_s = json_f(serial_us),
        o_p = json_f(parallel_us),
        e_u = unpruned.evaluated(),
        e_p = serial.evaluated(),
        cut = serial.pruned(),
        o_x = json_f(opt_speedup),
        o_id = opt_identical,
        b_s = json_f(bnb_serial_us),
        b_p = json_f(bnb_parallel_us),
        b_e = bnb_serial.evaluated(),
        b_c = bnb_serial.pruned(),
        b_id = bnb_identical,
        p_us = json_f(pamad_us),
        p_e = stage_evaluated,
        d_f = json_f(fast_us),
        d_s = json_f(slow_us),
        d_x = json_f(slow_us / fast_us),
        d_id = fast == slow,
        m_n = requests.len(),
        m_s = json_f(meas_serial_us),
        m_p = json_f(meas_parallel_us),
        m_id = serial_meas == parallel_meas,
        v_us = json_f(validity_us),
        v_ok = report.is_valid(),
        s_c = json_f(solve_check_us),
        s_s = json_f(solve_synth_us),
        s_p = json_f(ptas_us),
        s_eps = json_f(epsilon),
        s_ev = ptas_out.evaluated(),
        s_r = json_f(ptas_ratio),
        s_ok = check_verdict.is_feasible(),
        s_ag = program_verdict.is_feasible() == report.is_valid(),
        divs = if divergences.is_empty() {
            "[]".to_string()
        } else {
            format!(
                "[{}]",
                divergences
                    .iter()
                    .map(|d| format!("\"{}\"", d.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        },
    );
    std::fs::write(&out_path, &json).expect("write BENCH_planner.json");
    println!("wrote {out_path}");

    if !divergences.is_empty() {
        eprintln!("DIVERGENCE:");
        for d in &divergences {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}
