//! Ablation: how much does the r-structured OPT search give up against a
//! true full-exhaustive enumeration?
//!
//! The full search is exponential, so this runs on scaled-down ladders
//! (h <= 4) where both are feasible, reporting the objective gap and the
//! candidate counts. A zero gap supports using the structured search as
//! the OPT baseline in the Figure 5 harness (see DESIGN.md substitutions).
//!
//! Run: `cargo run --release -p airsched-bench --bin ablation_opt`

use airsched_analysis::table::{fnum, Table};
use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::group::GroupLadder;
use airsched_core::opt::{search_full, search_r_structured, OptConfig};

fn main() {
    let ladders = [
        ("tiny h=2", GroupLadder::new(vec![(2, 6), (4, 10)]).unwrap()),
        (
            "fig2 h=3",
            GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap(),
        ),
        (
            "mid h=3",
            GroupLadder::new(vec![(4, 30), (8, 40), (16, 30)]).unwrap(),
        ),
        (
            "mid h=4",
            GroupLadder::new(vec![(2, 10), (4, 20), (8, 20), (16, 10)]).unwrap(),
        ),
    ];

    let mut table = Table::new(vec![
        "workload".into(),
        "channels".into(),
        "structured D'".into(),
        "full D'".into(),
        "gap".into(),
        "structured evals".into(),
        "full evals".into(),
    ]);

    let mut worst_gap = 0.0f64;
    for (name, ladder) in &ladders {
        let min = minimum_channels(ladder);
        for n in 1..min.max(2) {
            let structured = search_r_structured(ladder, n, Weighting::PaperEq2);
            let full_config = OptConfig {
                max_freq_factor: 2,
                enumeration_limit: 1 << 26,
                weighting: Weighting::PaperEq2,
            };
            let full = search_full(ladder, n, full_config).expect("small search space");
            let gap = structured.objective() - full.objective();
            worst_gap = worst_gap.max(gap);
            table.row(vec![
                (*name).to_string(),
                n.to_string(),
                fnum(structured.objective(), 4),
                fnum(full.objective(), 4),
                fnum(gap, 4),
                structured.evaluated().to_string(),
                full.evaluated().to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "\nworst structured-vs-full objective gap: {worst_gap:.4} slots^2 \
         (the structured search explores ~1000x fewer candidates)"
    );
}
