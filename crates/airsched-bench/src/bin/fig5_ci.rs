//! Figure 5 with error bars: the AvgD curves replicated over independent
//! request seeds, reporting mean ± 95% CI per point — the statistical
//! rigor the paper's single-run curves omit.
//!
//! Run: `cargo run --release -p airsched-bench --bin fig5_ci -- --dist uniform`
//! Options: `--seeds K` (default 5), `--step K` (default 8).

use airsched_analysis::experiment::replicated_sweep;
use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;

fn main() {
    let (config, dists, extra) = parse_common_args();
    let step: u32 = extra_num(&extra, "step", 8);
    let seed_count: u64 = extra_num(&extra, "seeds", 5);
    let seeds: Vec<u64> = (0..seed_count).map(|k| config.seed + k * 7919).collect();

    for dist in dists {
        let config = config.clone().with_distribution(dist);
        let ladder = config.ladder().expect("workload builds");
        let min = minimum_channels(&ladder);
        let channels: Vec<u32> = (1..=min)
            .step_by(step as usize)
            .chain(std::iter::once(min))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let points = replicated_sweep(&config, channels, &seeds).expect("sweep runs");

        println!(
            "Figure 5 with 95% CIs ({dist}, N_min = {min}, {} seeds):",
            seeds.len()
        );
        let mut table = Table::new(vec![
            "channels".into(),
            "PAMAD".into(),
            "±".into(),
            "m-PB".into(),
            "±".into(),
            "OPT".into(),
            "±".into(),
        ]);
        for p in &points {
            table.row(vec![
                p.channels.to_string(),
                fnum(p.pamad.mean(), 3),
                fnum(p.pamad.ci95_halfwidth(), 3),
                fnum(p.mpb.mean(), 3),
                fnum(p.mpb.ci95_halfwidth(), 3),
                fnum(p.opt.mean(), 3),
                fnum(p.opt.ci95_halfwidth(), 3),
            ]);
        }
        println!("{}\n", table.render());
    }
}
