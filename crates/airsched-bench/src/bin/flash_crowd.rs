//! Extension experiment: flash crowds vs the on-demand channel.
//!
//! A mean-rate analysis of the pull channel can look healthy while bursts
//! overwhelm it. Same mean arrival rate, two arrival processes — Poisson
//! and bursty (on/off) — through the full impatience simulation: the
//! broadcast channel (stateless, shared) absorbs bursts for free, while
//! the on-demand queue's peak backlog explodes, reinforcing the paper's
//! argument for keeping clients on the air.
//!
//! Run: `cargo run --release -p airsched-bench --bin flash_crowd`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::pamad;
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::RequestGenerator;

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let rate: f64 = extra_num(&extra, "rate", 1.5);
    let burst: f64 = extra_num(&extra, "burst", 10.0);
    let servers: u32 = extra_num(&extra, "servers", 1);

    let sim_config = SimConfig {
        patience_factor: 2.0,
        ondemand_service_slots: 2,
        ondemand_servers: servers,
    };

    println!(
        "Flash crowds (uniform dist, N_min = {min}, mean rate {rate}/slot, \
         burst factor {burst}, {servers} pull server(s))\n"
    );
    let mut table = Table::new(vec![
        "channels".into(),
        "arrivals".into(),
        "abandon %".into(),
        "od queue wait".into(),
        "od peak backlog".into(),
    ]);

    for frac in [5u32, 3, 2] {
        let n = (min / frac).max(1);
        let program = pamad::schedule(&ladder, n)
            .expect("pamad runs")
            .into_program();
        for (name, bursty) in [("poisson", false), ("bursty", true)] {
            let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
            let requests = if bursty {
                // Halve the base rate so the mean over on/off matches the
                // plain stream's roughly (factor chosen for comparability).
                gen.take_bursty(config.requests, rate / (burst / 2.0), burst, 0.02)
            } else {
                gen.take_poisson(config.requests, rate)
            };
            let report = Simulation::new(&program, &ladder, sim_config).run(&requests);
            table.row(vec![
                n.to_string(),
                name.to_string(),
                fnum(report.abandonment_rate() * 100.0, 1),
                fnum(report.ondemand.mean_queue_wait, 2),
                report.ondemand.max_backlog.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "\nreading: broadcast hit rates barely move between the two \
         processes, but the pull channel's peak backlog under bursts dwarfs \
         its Poisson baseline — the queue, not the air, is what flash \
         crowds break."
    );
}
