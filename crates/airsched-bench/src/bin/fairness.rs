//! Fairness ablation: who absorbs the delay when channels are scarce?
//!
//! §4's design rationale says delay should be "equally dispersed". This
//! binary measures, per group, the mean delay normalized by the group's
//! expected time under PAMAD, m-PB and OPT, plus Jain's fairness index over
//! those normalized delays — revealing a real trade-off the paper does not
//! plot: m-PB is the fairest by this metric (deadline-proportional
//! frequencies equalize `spacing/t_i` by construction) while losing badly
//! on the average; PAMAD and OPT buy their low averages by letting the
//! tight groups absorb more of the residual delay.
//!
//! Run: `cargo run --release -p airsched-bench --bin fairness`

use airsched_analysis::fairness::{delay_fairness_index, group_fairness};
use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::{mpb, opt, pamad};
use airsched_sim::access::measure;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::RequestGenerator;

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let frac: u32 = extra_num(&extra, "frac", 5);
    let n = (min / frac).max(1);

    println!(
        "Delay fairness at {n} of {min} channels (uniform dist, normalized \
         delay = AvgD / t_i per group)\n"
    );

    let contenders = [
        (
            "PAMAD",
            pamad::schedule(&ladder, n)
                .expect("pamad runs")
                .into_program(),
        ),
        (
            "m-PB",
            mpb::schedule(&ladder, n).expect("mpb runs").into_program(),
        ),
        (
            "OPT",
            opt::search_r_structured(&ladder, n, Weighting::PaperEq2)
                .place(&ladder, n)
                .expect("placement runs")
                .into_program(),
        ),
    ];

    let mut headers = vec![
        "scheduler".to_string(),
        "AvgD".to_string(),
        "Jain".to_string(),
    ];
    for i in 1..=ladder.group_count() {
        headers.push(format!("G{i}/t"));
    }
    let mut table = Table::new(headers);

    for (name, program) in &contenders {
        let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
        let requests = gen.take(config.requests * 4, program.cycle_len());
        let (summary, _) = measure(program, &ladder, &requests);
        let mut row = vec![
            (*name).to_string(),
            fnum(summary.avg_delay(), 2),
            fnum(delay_fairness_index(&summary, &ladder), 3),
        ];
        let rows = group_fairness(&summary, &ladder);
        for g in &rows {
            row.push(fnum(g.normalized_delay, 3));
        }
        // Pad if some group saw no requests (unlikely at this volume).
        while row.len() < 3 + ladder.group_count() {
            row.push("-".into());
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "\nreading: m-PB equalizes normalized delay by construction (Jain ~1) \
         but its average is far worse; PAMAD/OPT minimize the average and \
         concentrate residual delay on tight-deadline groups."
    );
}
