//! Ablation: does Algorithm 4's even spreading matter?
//!
//! PAMAD's placement spreads each page's `S_i` appearances evenly over the
//! cycle. This ablation keeps PAMAD's *frequencies* but replaces the
//! placement with two strawmen:
//!
//! * **packed** — appearances dumped into the first free cells, column by
//!   column (what a naive implementation would do);
//! * **shuffled** — appearances placed into uniformly random free cells
//!   (seeded).
//!
//! Measured AvgD of each against the real even-spread placement isolates
//! how much of PAMAD's win comes from *when* pages air rather than *how
//! often*.
//!
//! Run: `cargo run --release -p airsched-bench --bin ablation_placement`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::delay::{major_cycle, Weighting};
use airsched_core::group::GroupLadder;
use airsched_core::pamad;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::{ChannelId, GridPos, SlotIndex};
use airsched_sim::access::measure;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::RequestGenerator;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Places `freqs` instances column-by-column into the first free cells.
fn place_packed(ladder: &GroupLadder, freqs: &[u64], n: u32) -> BroadcastProgram {
    let cycle = major_cycle(ladder.page_counts(), freqs, n);
    let mut program = BroadcastProgram::new(n, cycle);
    let mut cursor = 0u64;
    let cells = u64::from(n) * cycle;
    for info in ladder.groups() {
        let s = freqs[info.id.index() as usize];
        for page in info.page_ids() {
            for _ in 0..s {
                // Next free cell in column-major order.
                while cursor < cells {
                    let col = cursor / u64::from(n);
                    let ch = u32::try_from(cursor % u64::from(n)).expect("fits");
                    cursor += 1;
                    let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(col));
                    if program.is_free(pos)
                        && program
                            .occurrence_columns(page)
                            .binary_search(&col)
                            .is_err()
                    {
                        program.place(pos, page).expect("checked free");
                        break;
                    }
                }
            }
        }
    }
    program
}

/// Places instances into uniformly random free cells (avoiding same-column
/// duplicates where possible).
fn place_shuffled(ladder: &GroupLadder, freqs: &[u64], n: u32, seed: u64) -> BroadcastProgram {
    let cycle = major_cycle(ladder.page_counts(), freqs, n);
    let mut program = BroadcastProgram::new(n, cycle);
    let mut cells: Vec<(u32, u64)> = (0..n)
        .flat_map(|ch| (0..cycle).map(move |col| (ch, col)))
        .collect();
    cells.shuffle(&mut SmallRng::seed_from_u64(seed));
    let mut cursor = 0usize;
    for info in ladder.groups() {
        let s = freqs[info.id.index() as usize];
        for page in info.page_ids() {
            let mut placed = 0u64;
            let mut scanned = 0usize;
            while placed < s && scanned < cells.len() {
                let (ch, col) = cells[cursor % cells.len()];
                cursor += 1;
                scanned += 1;
                let pos = GridPos::new(ChannelId::new(ch), SlotIndex::new(col));
                if program.is_free(pos)
                    && program
                        .occurrence_columns(page)
                        .binary_search(&col)
                        .is_err()
                {
                    program.place(pos, page).expect("checked free");
                    placed += 1;
                }
            }
        }
    }
    program
}

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let step: u32 = extra_num(&extra, "step", 12);

    println!(
        "Placement ablation: PAMAD frequencies with different placements \
         (uniform dist, N_min = {min})\n"
    );
    let mut table = Table::new(vec![
        "channels".into(),
        "even-spread".into(),
        "packed".into(),
        "shuffled".into(),
    ]);

    for n in (1..=min).step_by(step as usize) {
        let plan = pamad::derive_frequencies(&ladder, n, Weighting::PaperEq2);
        let freqs = plan.frequencies();
        let even = pamad::place_frequencies(&ladder, freqs, n)
            .expect("placement runs")
            .into_program();
        let packed = place_packed(&ladder, freqs, n);
        let shuffled = place_shuffled(&ladder, freqs, n, config.seed);

        let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
        let normalized = gen.take_normalized(config.requests);
        let mut row = vec![n.to_string()];
        for program in [&even, &packed, &shuffled] {
            let requests: Vec<_> = normalized
                .iter()
                .map(|nr| nr.materialize(program.cycle_len()))
                .collect();
            let (summary, _) = measure(program, &ladder, &requests);
            row.push(fnum(summary.avg_delay(), 2));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "\nreading: with identical frequencies, packing appearances \
         together wrecks the delay — the even spread carries a large share \
         of PAMAD's win."
    );
}
