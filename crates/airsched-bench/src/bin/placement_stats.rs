//! Probing Algorithm 4's window claim.
//!
//! The paper asserts that during placement "an empty time slot can always
//! be found" within each appearance's ideal window "because the length of
//! a major cycle has been calculated to hold all broadcast data pages".
//! Total capacity is indeed sufficient, but individual windows *can* fill
//! up; our implementation then falls back to the nearest later column
//! (`displaced`) and, in the extreme, to a column already holding the page
//! (`duplicated`). This binary measures how often each case occurs across
//! the channel axis — quantifying exactly how far practice deviates from
//! the idealized claim.
//!
//! Run: `cargo run --release -p airsched-bench --bin placement_stats`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::pamad;
use airsched_workload::distributions::GroupSizeDistribution;

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let step: u32 = extra_num(&extra, "step", 8);

    println!("Algorithm 4 placement outcomes (uniform dist, N_min = {min})\n");
    let mut table = Table::new(vec![
        "channels".into(),
        "instances".into(),
        "in window %".into(),
        "displaced %".into(),
        "duplicated %".into(),
    ]);
    let channels: Vec<u32> = (1..=min)
        .step_by(step as usize)
        .chain(std::iter::once(min))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for n in channels {
        let outcome = pamad::schedule(&ladder, n).expect("pamad runs");
        let stats = outcome.placement_stats();
        let total = stats.total() as f64;
        table.row(vec![
            n.to_string(),
            stats.total().to_string(),
            fnum(stats.in_window as f64 / total * 100.0, 2),
            fnum(stats.displaced as f64 / total * 100.0, 2),
            fnum(stats.duplicated as f64 / total * 100.0, 2),
        ]);
    }
    println!("{}", table.render());

    // A small, tight workload where the claim *does* break: the Equation 8
    // cycle runs 100% full at the minimum, leaving the even-spread no
    // slack.
    let tight =
        airsched_core::group::GroupLadder::new(vec![(2, 11), (6, 1), (18, 1), (54, 13), (162, 7)])
            .expect("tight ladder builds");
    let tight_min = minimum_channels(&tight);
    println!("\ncounter-example: {tight} at its minimum ({tight_min} channels)\n");
    let mut table = Table::new(vec![
        "channels".into(),
        "instances".into(),
        "in window %".into(),
        "displaced %".into(),
        "duplicated %".into(),
    ]);
    for n in 1..=tight_min {
        let outcome = pamad::schedule(&tight, n).expect("pamad runs");
        let stats = outcome.placement_stats();
        let total = stats.total() as f64;
        table.row(vec![
            n.to_string(),
            stats.total().to_string(),
            fnum(stats.in_window as f64 / total * 100.0, 2),
            fnum(stats.displaced as f64 / total * 100.0, 2),
            fnum(stats.duplicated as f64 / total * 100.0, 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nreading: at paper scale the ideal-window claim holds for every \
         instance; it breaks only when the Equation 8 cycle runs ~100% full \
         (tight workloads at their exact minimum), where placements displace \
         and, in the extreme, duplicate — which is why SUSC, not PAMAD, is \
         the right scheduler in the sufficient regime."
    );
}
