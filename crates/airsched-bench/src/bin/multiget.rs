//! Extension experiment: composite (multi-page) requests on a single
//! tuner, the problem of the paper's reference \[5\].
//!
//! For request sizes 1..8 on the PAMAD program at the N_min/5 operating
//! point, compares the greedy earliest-completion client against a naive
//! fixed-order client, across channel-switch costs — showing how much
//! retrieval planning matters as requests grow.
//!
//! Run: `cargo run --release -p airsched-bench --bin multiget`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::pamad;
use airsched_sim::multiget::{retrieve_fixed_order, retrieve_greedy, MultiRequest};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::RequestGenerator;

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let n = (min / extra_num(&extra, "frac", 5u32)).max(1);
    let switch_cost: u64 = extra_num(&extra, "switch", 1);
    let samples: usize = extra_num(&extra, "samples", 500);

    let program = pamad::schedule(&ladder, n)
        .expect("pamad runs")
        .into_program();
    println!(
        "Composite requests on one tuner ({n} channels, switch cost \
         {switch_cost} slot(s), {samples} samples per size)\n"
    );

    let mut table = Table::new(vec![
        "pages/request".into(),
        "greedy wait".into(),
        "naive wait".into(),
        "speedup".into(),
        "greedy switches".into(),
    ]);

    for size in [1usize, 2, 4, 6, 8] {
        let mut gen = RequestGenerator::new(&ladder, config.access, config.seed + size as u64);
        let mut greedy_sum = 0u64;
        let mut naive_sum = 0u64;
        let mut switches_sum = 0u64;
        for _ in 0..samples {
            let base = gen.take(size, program.cycle_len());
            let req = MultiRequest {
                pages: base.iter().map(|r| r.page).collect(),
                arrival: base[0].arrival,
            };
            let greedy =
                retrieve_greedy(&program, &req, switch_cost).expect("every page airs under PAMAD");
            let naive = retrieve_fixed_order(&program, &req, switch_cost)
                .expect("every page airs under PAMAD");
            greedy_sum += greedy.completion_wait;
            naive_sum += naive.completion_wait;
            switches_sum += u64::from(greedy.switches);
        }
        let g = greedy_sum as f64 / samples as f64;
        let nv = naive_sum as f64 / samples as f64;
        table.row(vec![
            size.to_string(),
            fnum(g, 1),
            fnum(nv, 1),
            format!("{:.2}x", nv / g),
            fnum(switches_sum as f64 / samples as f64, 2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nreading: ordering by earliest completion pays off increasingly \
         with request size; switch costs make planning matter even more."
    );
}
