//! Extension experiment: splitting a fixed transceiver budget between
//! broadcast (push) channels and on-demand (pull) servers.
//!
//! The paper treats the broadcast channel count as given and argues that a
//! good broadcast schedule protects the on-demand channel. The natural
//! system-design question one step further: if a base station owns `B`
//! transceivers total, how many should broadcast and how many should serve
//! pulls? For each split `(k broadcast, B - k pull)` we run the full
//! discrete-event simulation (impatient clients abandon to the pull queue)
//! and report mean end-to-end latency — exposing the sweet spot.
//!
//! Run: `cargo run --release -p airsched-bench --bin hybrid_split`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::pamad;
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::RequestGenerator;

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);

    // Total transceiver budget: one third of the broadcast minimum, so the
    // system is genuinely resource-starved. Override with --budget.
    let budget: u32 = extra_num(&extra, "budget", (min / 3).max(2));
    let horizon: u64 = extra_num(&extra, "horizon", 30_000);
    let patience: f64 = extra_num(&extra, "patience", 2.0);

    println!(
        "Hybrid push/pull split (uniform dist, N_min = {min}, budget = \
         {budget} transceivers, patience {patience}x)\n"
    );

    let mut table = Table::new(vec![
        "broadcast ch".into(),
        "pull servers".into(),
        "abandon %".into(),
        "od queue wait".into(),
        "mean latency".into(),
    ]);

    let mut best: Option<(u32, f64)> = None;
    for k in 1..budget {
        let pull = budget - k;
        let program = pamad::schedule(&ladder, k)
            .expect("pamad runs")
            .into_program();
        let sim_config = SimConfig {
            patience_factor: patience,
            ondemand_service_slots: 2,
            ondemand_servers: pull,
        };
        let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
        let requests = gen.take(config.requests, horizon);
        let report = Simulation::new(&program, &ladder, sim_config).run(&requests);
        table.row(vec![
            k.to_string(),
            pull.to_string(),
            fnum(report.abandonment_rate() * 100.0, 1),
            fnum(report.ondemand.mean_queue_wait, 2),
            fnum(report.mean_total_latency, 1),
        ]);
        if best.is_none_or(|(_, l)| report.mean_total_latency < l) {
            best = Some((k, report.mean_total_latency));
        }
    }
    println!("{}", table.render());
    if let Some((k, latency)) = best {
        println!(
            "\nbest split: {k} broadcast / {} pull (mean latency {latency:.1} slots)",
            budget - k
        );
    }
}
