//! Ablation: Equation-2-literal objective vs. the §4.1-normalized variant.
//!
//! DESIGN.md documents that the paper's printed Equation 2 multiplies two
//! *unnormalized* gap-overshoot estimates (verified against the worked
//! example), while §4.1's derivation divides by the gap. This ablation runs
//! PAMAD with both objectives across the channel range and compares the
//! *measured* average delay, answering: does the discrepancy matter?
//!
//! Run: `cargo run --release -p airsched-bench --bin ablation_objective`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::pamad;
use airsched_sim::access::measure;
use airsched_workload::requests::RequestGenerator;

fn main() {
    let (config, dists, extra) = parse_common_args();
    let step: u32 = extra_num(&extra, "step", 4);

    for dist in dists {
        let config = config.clone().with_distribution(dist);
        let ladder = config.ladder().expect("workload builds");
        let min = minimum_channels(&ladder);
        println!("distribution {dist} (N_min = {min}):");

        let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
        let normalized = gen.take_normalized(config.requests);

        let mut table = Table::new(vec![
            "channels".into(),
            "Eq2-literal".into(),
            "normalized".into(),
        ]);
        for n in (1..=min).step_by(step as usize) {
            let mut row = vec![n.to_string()];
            for weighting in [Weighting::PaperEq2, Weighting::Normalized] {
                let program = pamad::schedule_with(&ladder, n, weighting)
                    .expect("pamad runs")
                    .into_program();
                let requests: Vec<_> = normalized
                    .iter()
                    .map(|nr| nr.materialize(program.cycle_len()))
                    .collect();
                let (summary, _) = measure(&program, &ladder, &requests);
                row.push(fnum(summary.avg_delay(), 3));
            }
            table.row(row);
        }
        println!("{}\n", table.render());
    }
}
