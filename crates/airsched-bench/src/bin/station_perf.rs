//! Serving-path performance: drives faulted and un-faulted stations at
//! 10k/100k/1M subscribers through the allocation-free
//! [`Station::tick_into`] serving loop and two baselines — the retained
//! bit-identical [`Station::tick_reference`], and a faithful replica of
//! the pre-PR seed station (`BTreeMap`-keyed waiting lists, `BTreeMap`
//! subscribe, allocating tick) rebuilt here from public APIs. It also
//! times table-driven frame encoding into one reused buffer against
//! per-frame encoding, and measures the observability tax: an
//! instrumented station (metrics registry + flight recorder attached) in
//! lockstep against an identical plain one, with a bit-identical gate and
//! an overhead ratio at the 100k-subscriber acceptance point. A fourth
//! gate kills a journaled, checkpointed station mid-run, recovers it from
//! its state directory, and drives the continuation in lockstep against
//! the never-crashed twin — restore-after-crash must be bit-identical in
//! every `TickOutcome` and the final statistics. A tracing gate runs a
//! phase-traced station at sampling 1/1 (every slot captured) in
//! lockstep against a plain twin, and trace-overhead rows time the
//! serving loop with tracing sampled at 1/32, attached with sampling
//! off, and not attached at all — the enabled taxes are capped at
//! 1.15x and the not-attached (dormant-branch) tax, which doubles as
//! an A/A noise floor, at 1.02x. Emits machine-readable `BENCH_station.json`
//! (ticks/sec, deliveries/sec, bytes encoded/sec, obs and trace
//! overhead) and **exits non-zero** if the optimized path diverges
//! from either baseline — or the instrumented station from the plain
//! one, the traced station from the plain one, or the recovered station
//! from its twin — in any outcome, delivery or statistic, or if a
//! tracing tax exceeds its ceiling. CI runs it as a correctness gate.
//!
//! On top of the serving loop, the wire side is timed in three shapes —
//! per-frame `Frame::encode` (the seed), streaming `encode_slot_into`
//! into one reused buffer, and the [`FrameTemplateCache`] patch path
//! (pre-encoded wire images, eight slot bytes + an incrementally
//! corrected CRC rewritten per frame) — with a byte-lockstep gate pinning
//! the template stream to the fresh one. *Full-slot* rows then measure
//! what a deployed station does every slot (serve **and** encode), with
//! the templated [`SlotBroadcaster`] against the fresh encoder, per scale
//! and parallelism setting, and a template gate drives broadcaster
//! encoding through full chaos — degradations, restores, a mid-run
//! snapshot/restore onto a fresh broadcaster — byte-comparing every slot.
//!
//! Run: `cargo run --release -p airsched-bench --bin station_perf`
//!
//! Options (beyond the common `--seed`): `--channels` (8), `--cycle`
//! (1024), `--pages` (1680), `--slots` (4096, serving-loop slots timed per
//! rep), `--scales` (`10000,100000,1000000`, comma-separated subscriber
//! scales), `--max-subs` (1000000, caps the subscriber matrix), `--par`
//! (`1,2,4,auto`, comma-separated drain settings: integers are fixed
//! worker counts, `auto` is a 4-thread pool behind the
//! [`Station::parallelism_auto`] crossover that drains small ticks
//! serially; every lockstep gate runs at each setting and the serving
//! loop is timed at each — `1` is always included so the serial baseline
//! row exists), `--reps` (3) and `--out <path>` for the JSON file
//! (default `BENCH_station.json` in the working directory).

use std::collections::BTreeMap;
use std::time::Instant;

use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels_for_times;
use airsched_core::degrade;
use airsched_core::dynamic::OnlineScheduler;
use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::susc;
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
use airsched_obs::Obs;
use airsched_proto::template::FrameTemplateCache;
use airsched_proto::transmitter::{encode_slot_into, frames_for_slot, FixedPayloads};
use airsched_server::faults::{FaultInjector, FaultPlan};
use airsched_server::health::{ChannelEvent, HealthMonitor, HealthThresholds, SlotObservation};
use airsched_server::station::{Station, TickBuf};
use airsched_server::{Mode, SlotBroadcaster};
use bytes::{Bytes, BytesMut};

/// Constant payload for the encode phases: [`FixedPayloads`] serves it by
/// borrowing append (no allocation per frame), so payload synthesis is
/// negligible next to the encoding being measured.
static PAYLOAD: [u8; 64] = [0x5A; 64];

fn fixed_payloads() -> FixedPayloads {
    FixedPayloads::new(Bytes::from_static(&PAYLOAD))
}

/// Worker count behind `--par auto`: a real pool, big enough that the
/// crossover (not luck) has to keep small ticks off it.
const AUTO_WORKERS: u32 = 4;

/// One `--par` entry: a fixed drain worker count, or the auto crossover.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ParSetting {
    Fixed(u32),
    Auto(u32),
}

impl ParSetting {
    fn apply(self, s: &mut Station) {
        match self {
            Self::Fixed(k) => {
                s.parallelism(k);
            }
            Self::Auto(k) => {
                s.parallelism_auto(k, Station::AUTO_DRAIN_THRESHOLD);
            }
        }
    }

    /// Human label: the count, or `auto`.
    fn label(self) -> String {
        match self {
            Self::Fixed(k) => k.to_string(),
            Self::Auto(_) => "auto".to_string(),
        }
    }

    /// JSON value: a number for fixed counts, the string `"auto"`.
    fn json(self) -> String {
        match self {
            Self::Fixed(k) => k.to_string(),
            Self::Auto(_) => "\"auto\"".to_string(),
        }
    }
}

impl std::fmt::Display for ParSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

struct Config {
    channels: u32,
    cycle: u64,
    pages: u32,
    slots: u64,
    reps: u32,
    seed: u64,
}

impl Config {
    /// Transient-fault plan for the perf rows: stalls and corruption keep
    /// the injector hot every slot without triggering re-pack storms that
    /// would swamp the tick itself.
    fn perf_plan(&self) -> FaultPlan {
        FaultPlan::seeded(self.seed)
            .with_stalls(0.01)
            .with_corruption(0.02)
    }

    /// Full-chaos plan for the correctness gate: outages and recoveries
    /// walk the degradation ladder on top of the transient faults.
    fn chaos_plan(&self) -> FaultPlan {
        FaultPlan::seeded(self.seed)
            .with_outage(0.002)
            .with_recovery(0.05)
            .with_stalls(0.01)
            .with_corruption(0.02)
    }

    fn expected_time(&self, page: u32) -> u64 {
        [self.cycle / 4, self.cycle / 2, self.cycle][(page % 3) as usize]
    }
}

/// A station with a three-band catalogue (expected times cycle/4, cycle/2,
/// cycle round-robin) sized well inside the channel budget.
fn build_station(cfg: &Config, plan: Option<&FaultPlan>) -> Station {
    let mut s = match plan {
        Some(p) => Station::with_faults(cfg.channels, cfg.cycle, p).expect("station builds"),
        None => Station::new(cfg.channels, cfg.cycle).expect("station builds"),
    };
    for i in 0..cfg.pages {
        s.publish(PageId::new(i), cfg.expected_time(i))
            .expect("catalogue fits the channel budget");
    }
    s
}

fn page_for(cfg: &Config, k: u64) -> PageId {
    PageId::new(u32::try_from(k % u64::from(cfg.pages)).expect("page index fits"))
}

// ---------------------------------------------------------------------------
// The pre-PR baseline: a faithful replica of the seed station's serving
// loop, rebuilt from public APIs. Waiting lists live in a `BTreeMap` keyed
// by `PageId`, `subscribe` walks that map, and every tick allocates its
// buffers fresh — exactly the shape this PR's tentpole replaced.
// ---------------------------------------------------------------------------

enum SeedPlan {
    Full,
    Reduced(BroadcastProgram),
    BestEffort(BroadcastProgram),
    Offline,
}

struct SeedDelivery {
    client: u64,
    page: PageId,
    wait: u64,
    within_deadline: bool,
}

struct SeedOutcome {
    mode: Mode,
    on_air: Vec<Option<PageId>>,
    corrupted: Vec<bool>,
    deliveries: Vec<SeedDelivery>,
    events: Vec<ChannelEvent>,
}

struct SeedStation {
    scheduler: OnlineScheduler,
    time: u64,
    waiting: BTreeMap<PageId, Vec<(u64, u64)>>,
    next_client: u64,
    channel_up: Vec<bool>,
    injector: Option<FaultInjector>,
    health: HealthMonitor,
    mode: Mode,
    active: SeedPlan,
    // The stats fields the equivalence check compares.
    delivered: u64,
    on_time: u64,
    total_wait: u64,
    waiting_count: u64,
    failovers: u64,
    repacks: u64,
    recoveries: u64,
    degraded_slots: u64,
    slots_elapsed: u64,
}

impl SeedStation {
    fn build(cfg: &Config, plan: Option<&FaultPlan>) -> Self {
        let mut scheduler =
            OnlineScheduler::new(cfg.channels, cfg.cycle).expect("scheduler builds");
        for i in 0..cfg.pages {
            scheduler
                .add_page(PageId::new(i), cfg.expected_time(i))
                .expect("catalogue fits the channel budget");
        }
        Self {
            scheduler,
            time: 0,
            waiting: BTreeMap::new(),
            next_client: 0,
            channel_up: vec![true; cfg.channels as usize],
            injector: plan.map(|p| FaultInjector::new(p, cfg.channels)),
            health: HealthMonitor::new(cfg.channels, HealthThresholds::default()),
            mode: Mode::Valid,
            active: SeedPlan::Full,
            delivered: 0,
            on_time: 0,
            total_wait: 0,
            waiting_count: 0,
            failovers: 0,
            repacks: 0,
            recoveries: 0,
            degraded_slots: 0,
            slots_elapsed: 0,
        }
    }

    fn subscribe(&mut self, page: PageId) -> u64 {
        assert!(
            self.scheduler.pages().contains_key(&page),
            "page is published"
        );
        let id = self.next_client;
        self.next_client += 1;
        self.waiting.entry(page).or_default().push((id, self.time));
        self.waiting_count += 1;
        id
    }

    fn channels_up(&self) -> u32 {
        u32::try_from(self.channel_up.iter().filter(|&&u| u).count()).expect("fits in u32")
    }

    fn refresh_plan(&mut self) {
        let configured = u32::try_from(self.channel_up.len()).expect("fits in u32");
        let n_up = self.channels_up();
        let (active, mode) = if n_up == 0 {
            (SeedPlan::Offline, Mode::Offline)
        } else if n_up == configured {
            (SeedPlan::Full, Mode::Valid)
        } else {
            self.reduced_plan(n_up)
        };
        self.active = active;
        if mode != self.mode {
            match mode {
                Mode::BestEffort => self.failovers += 1,
                Mode::Repacked => self.repacks += 1,
                Mode::Valid => self.recoveries += 1,
                Mode::Offline => {}
            }
            self.mode = mode;
        }
    }

    fn reduced_plan(&mut self, n_up: u32) -> (SeedPlan, Mode) {
        let times: Vec<u64> = self.scheduler.pages().values().copied().collect();
        let minimum = minimum_channels_for_times(&times).unwrap_or(u32::MAX);
        if n_up >= minimum {
            let mut probe = self.scheduler.clone();
            if probe.rebuild_on_channels(n_up).is_ok() {
                return (SeedPlan::Reduced(probe.program().clone()), Mode::Repacked);
            }
        }
        let catalogue: Vec<(PageId, u64)> = self
            .scheduler
            .pages()
            .iter()
            .map(|(&p, &t)| (p, t))
            .collect();
        if let Ok(plan) = degrade::replan(&catalogue, n_up) {
            return (SeedPlan::BestEffort(plan.into_program()), Mode::BestEffort);
        }
        (SeedPlan::Offline, Mode::Offline)
    }

    fn tick(&mut self) -> SeedOutcome {
        let mut events = Vec::new();
        let configured = self.channel_up.len();
        let mut stalled = vec![false; configured];
        let mut corrupt_wanted = vec![false; configured];

        if let Some(injector) = self.injector.as_mut() {
            let faults = injector.sample(self.time);
            let mut changed = false;
            for channel in faults.went_down {
                let ch = channel.index() as usize;
                if ch < configured && self.channel_up[ch] {
                    self.channel_up[ch] = false;
                    events.push(ChannelEvent::Down {
                        channel,
                        at: self.time,
                    });
                    changed = true;
                }
            }
            for channel in faults.came_up {
                let ch = channel.index() as usize;
                if ch < configured && !self.channel_up[ch] {
                    self.channel_up[ch] = true;
                    self.health.reset(channel);
                    events.push(ChannelEvent::Up {
                        channel,
                        at: self.time,
                    });
                    changed = true;
                }
            }
            stalled = faults.stalled;
            corrupt_wanted = faults.corrupted;
            if changed {
                self.refresh_plan();
            }
        }

        let mut on_air: Vec<Option<PageId>> = vec![None; configured];
        match &self.active {
            SeedPlan::Full => {
                let program = self.scheduler.program();
                let column = self.time % program.cycle_len();
                for (ch, slot) in on_air.iter_mut().enumerate() {
                    if self.channel_up[ch] {
                        let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
                        *slot = program.page_at(GridPos::new(channel, SlotIndex::new(column)));
                    }
                }
            }
            SeedPlan::Reduced(program) | SeedPlan::BestEffort(program) => {
                let column = self.time % program.cycle_len();
                let mut row = 0u32;
                for (ch, slot) in on_air.iter_mut().enumerate() {
                    if self.channel_up[ch] && row < program.channels() {
                        *slot = program
                            .page_at(GridPos::new(ChannelId::new(row), SlotIndex::new(column)));
                        row += 1;
                    }
                }
            }
            SeedPlan::Offline => {}
        }

        let mut corrupted = vec![false; configured];
        for ch in 0..configured {
            if !self.channel_up[ch] {
                continue;
            }
            let channel = ChannelId::new(u32::try_from(ch).expect("fits in u32"));
            if stalled[ch] {
                if on_air[ch].take().is_some() {
                    if let Some(e) =
                        self.health
                            .record(channel, SlotObservation::Stalled, self.time)
                    {
                        events.push(e);
                    }
                }
            } else if on_air[ch].is_some() {
                let observation = if corrupt_wanted[ch] {
                    corrupted[ch] = true;
                    SlotObservation::Corrupt
                } else {
                    SlotObservation::Clean
                };
                if let Some(e) = self.health.record(channel, observation, self.time) {
                    events.push(e);
                }
            }
        }

        let mut deliveries = Vec::new();
        for ch in 0..configured {
            if corrupted[ch] {
                continue;
            }
            let Some(page) = on_air[ch] else { continue };
            if let Some(waiters) = self.waiting.remove(&page) {
                let expected = self.scheduler.pages().get(&page).copied();
                for (client, since) in waiters {
                    let wait = self.time - since + 1;
                    let within = expected.is_some_and(|t| wait <= t);
                    deliveries.push(SeedDelivery {
                        client,
                        page,
                        wait,
                        within_deadline: within,
                    });
                    self.delivered += 1;
                    self.total_wait += wait;
                    self.waiting_count -= 1;
                    if within {
                        self.on_time += 1;
                    }
                }
            }
        }

        if self.mode != Mode::Valid {
            self.degraded_slots += 1;
        }

        let outcome = SeedOutcome {
            mode: self.mode,
            on_air,
            corrupted,
            deliveries,
            events,
        };
        self.time += 1;
        self.slots_elapsed += 1;
        outcome
    }
}

// ---------------------------------------------------------------------------
// Correctness gates
// ---------------------------------------------------------------------------

/// Drives two identically-configured stations in lockstep — one through
/// `tick_into` at shard count `par`, one through the retained
/// `tick_reference` — under full chaos with continuous subscription
/// churn, recording any divergence in outcomes or statistics. This is
/// the bit-identical gate.
fn reference_gate(cfg: &Config, faulted: bool, par: ParSetting, divergences: &mut Vec<String>) {
    let plan = cfg.chaos_plan();
    let plan = faulted.then_some(&plan);
    let mut fast = build_station(cfg, plan);
    par.apply(&mut fast);
    let mut reference = build_station(cfg, plan);
    let mut buf = TickBuf::new();
    let gate_slots = cfg.slots.min(1024).max(2 * cfg.cycle);
    for t in 0..gate_slots {
        for k in 0..8u64 {
            let page = page_for(cfg, t * 8 + k);
            let a = fast.subscribe(page).expect("page is published");
            let b = reference.subscribe(page).expect("page is published");
            assert_eq!(a, b, "client ids drifted");
        }
        fast.tick_into(&mut buf);
        let want = reference.tick_reference();
        if buf.to_outcome() != want {
            divergences.push(format!(
                "tick_into diverges from tick_reference at slot {t} \
                 (faulted={faulted}, parallelism={par})"
            ));
            return;
        }
    }
    if fast.stats() != reference.stats() {
        divergences.push(format!(
            "stats diverge from tick_reference after {gate_slots}-slot lockstep \
             (faulted={faulted}, parallelism={par})"
        ));
    }
}

/// Drives the optimized station against the seed replica in lockstep,
/// comparing everything the replica can observe (the replica mints its own
/// client ids, so deliveries compare by display name, page, wait and
/// deadline — order included).
fn seed_gate(cfg: &Config, faulted: bool, par: ParSetting, divergences: &mut Vec<String>) {
    let plan = cfg.chaos_plan();
    let plan = faulted.then_some(&plan);
    let mut fast = build_station(cfg, plan);
    par.apply(&mut fast);
    let mut seed = SeedStation::build(cfg, plan);
    let mut buf = TickBuf::new();
    let gate_slots = cfg.slots.min(1024).max(2 * cfg.cycle);
    for t in 0..gate_slots {
        for k in 0..8u64 {
            let page = page_for(cfg, t * 8 + k);
            let a = fast.subscribe(page).expect("page is published");
            let b = seed.subscribe(page);
            assert_eq!(a.to_string(), format!("client{b}"), "client ids drifted");
        }
        fast.tick_into(&mut buf);
        let want = seed.tick();
        let same = buf.mode() == want.mode
            && buf.on_air() == &want.on_air[..]
            && buf.corrupted() == &want.corrupted[..]
            && buf.events() == &want.events[..]
            && buf.deliveries().len() == want.deliveries.len()
            && buf.deliveries().iter().zip(&want.deliveries).all(|(d, w)| {
                d.client.to_string() == format!("client{}", w.client)
                    && d.page == w.page
                    && d.wait == w.wait
                    && d.within_deadline == w.within_deadline
            });
        if !same {
            divergences.push(format!(
                "tick_into diverges from the seed replica at slot {t} \
                 (faulted={faulted}, parallelism={par})"
            ));
            return;
        }
    }
    let stats = fast.stats();
    let same_stats = stats.delivered == seed.delivered
        && stats.on_time == seed.on_time
        && stats.total_wait == seed.total_wait
        && stats.waiting == seed.waiting_count
        && stats.failovers == seed.failovers
        && stats.repacks == seed.repacks
        && stats.recoveries == seed.recoveries
        && stats.degraded_slots == seed.degraded_slots
        && stats.slots_elapsed == seed.slots_elapsed;
    if !same_stats {
        divergences.push(format!(
            "stats diverge from the seed replica after {gate_slots}-slot lockstep \
             (faulted={faulted}, parallelism={par})"
        ));
    }
}

/// Drives a plain station and an identical one with observability
/// attached (metrics registry + flight recorder) in lockstep under full
/// chaos. Instrumentation is read-only: every tick outcome and the final
/// statistics must be bit-identical, and the registry counters must
/// mirror the station's own stats exactly. The instrumented station runs
/// its drains at shard count `par` while the plain twin stays serial, so
/// one gate proves both that instrumentation observes without perturbing
/// and that the obs mirrors stay single-writer under sharding.
fn obs_gate(cfg: &Config, faulted: bool, par: ParSetting, divergences: &mut Vec<String>) {
    let plan = cfg.chaos_plan();
    let plan = faulted.then_some(&plan);
    let mut plain = build_station(cfg, plan);
    let mut instrumented = build_station(cfg, plan);
    par.apply(&mut instrumented);
    let obs = Obs::with_recorder_capacity(4096);
    instrumented.attach_obs(&obs);
    let mut buf_plain = TickBuf::new();
    let mut buf_obs = TickBuf::new();
    let gate_slots = cfg.slots.min(1024).max(2 * cfg.cycle);
    for t in 0..gate_slots {
        for k in 0..8u64 {
            let page = page_for(cfg, t * 8 + k);
            let a = plain.subscribe(page).expect("page is published");
            let b = instrumented.subscribe(page).expect("page is published");
            assert_eq!(a, b, "client ids drifted");
        }
        plain.tick_into(&mut buf_plain);
        instrumented.tick_into(&mut buf_obs);
        if buf_plain.to_outcome() != buf_obs.to_outcome() {
            divergences.push(format!(
                "instrumented station diverges from plain at slot {t} \
                 (faulted={faulted}, parallelism={par})"
            ));
            return;
        }
    }
    let stats = plain.stats();
    if stats != instrumented.stats() {
        divergences.push(format!(
            "instrumented stats diverge from plain after {gate_slots}-slot lockstep \
             (faulted={faulted}, parallelism={par})"
        ));
    }
    let snapshot = obs.snapshot();
    let mirrored = [
        ("airsched_station_slots_total", stats.slots_elapsed),
        ("airsched_station_delivered_total", stats.delivered),
        ("airsched_station_on_time_total", stats.on_time),
        (
            "airsched_station_degraded_slots_total",
            stats.degraded_slots,
        ),
        ("airsched_station_mode_changes_total", stats.mode_changes),
    ];
    for (name, want) in mirrored {
        let got = snapshot.scalar_total(name);
        if got != want {
            divergences.push(format!(
                "registry counter {name} = {got} but station stats say {want} \
                 (faulted={faulted}, parallelism={par})"
            ));
        }
    }
}

/// Drives a plain station and an identical one with phase tracing
/// attached at sampling 1/1 — every slot captures a full span tree, the
/// most invasive setting the tracer has — in lockstep under full chaos.
/// Tracing is observation-only: every tick outcome and the final
/// statistics must be bit-identical. The traced station drains at shard
/// count `par` while the plain twin stays serial, so the gate also
/// proves the chunk-timing plumb through the drain pool does not
/// perturb pooled execution.
fn trace_gate(cfg: &Config, faulted: bool, par: ParSetting, divergences: &mut Vec<String>) {
    let plan = cfg.chaos_plan();
    let plan = faulted.then_some(&plan);
    let mut plain = build_station(cfg, plan);
    let mut traced = build_station(cfg, plan);
    par.apply(&mut traced);
    let trace = airsched_trace::Trace::new(airsched_trace::TraceConfig {
        sample_every: 1,
        ring_capacity: 64,
        slo: airsched_trace::SloConfig::default(),
    });
    traced.attach_trace(&trace);
    let mut buf_plain = TickBuf::new();
    let mut buf_trace = TickBuf::new();
    let gate_slots = cfg.slots.min(1024).max(2 * cfg.cycle);
    for t in 0..gate_slots {
        for k in 0..8u64 {
            let page = page_for(cfg, t * 8 + k);
            let a = plain.subscribe(page).expect("page is published");
            let b = traced.subscribe(page).expect("page is published");
            assert_eq!(a, b, "client ids drifted");
        }
        plain.tick_into(&mut buf_plain);
        traced.tick_into(&mut buf_trace);
        if buf_plain.to_outcome() != buf_trace.to_outcome() {
            divergences.push(format!(
                "traced station diverges from plain at slot {t} \
                 (faulted={faulted}, parallelism={par})"
            ));
            return;
        }
    }
    if plain.stats() != traced.stats() {
        divergences.push(format!(
            "traced stats diverge from plain after {gate_slots}-slot lockstep \
             (faulted={faulted}, parallelism={par})"
        ));
    }
    let snap = trace.snapshot();
    if snap.sampled != gate_slots {
        divergences.push(format!(
            "trace at sampling 1/1 captured {} of {gate_slots} slots \
             (faulted={faulted}, parallelism={par})",
            snap.sampled
        ));
    }
}

/// Kills a journaled, checkpointed station mid-run, recovers it from the
/// state directory, and drives the continuation in lockstep against a
/// never-crashed twin: every post-recovery `TickOutcome` and the final
/// statistics must be bit-identical. This is the restore-after-crash
/// gate the `airsched-recover` determinism contract is held to. The
/// twin and the crashed process tick at shard count `par` while the
/// resumed process deliberately runs at a *different* count — bit-equal
/// continuation across the crash then proves the checkpoint format does
/// not leak the partition count.
fn recovery_gate(cfg: &Config, faulted: bool, par: ParSetting, divergences: &mut Vec<String>) {
    use airsched_recover::{CrashInjector, RecoverError, RecoverableStation, RecoveryOptions};

    let plan = faulted.then(|| cfg.chaos_plan());
    let gate_slots = cfg.slots.min(1024).max(2 * cfg.cycle);
    // Off the checkpoint cadence on purpose, so recovery exercises both
    // the checkpoint restore and a non-empty journal replay.
    let crash_at = gate_slots / 2 + 3;
    let every = (cfg.cycle / 4).max(8);
    // Resume under a DIFFERENT drain setting than the crashed twin ran
    // with: recovery must be bit-identical across serial, pooled, and
    // adaptive execution.
    let resumed_par = match par {
        ParSetting::Fixed(1) => ParSetting::Auto(2),
        _ => ParSetting::Fixed(1),
    };

    let mut twin = build_station(cfg, plan.as_ref());
    par.apply(&mut twin);
    let mut want = Vec::with_capacity(usize::try_from(gate_slots).expect("fits"));
    for t in 0..gate_slots {
        for k in 0..8u64 {
            twin.subscribe(page_for(cfg, t * 8 + k))
                .expect("page is published");
        }
        want.push(twin.tick());
    }

    let dir = std::env::temp_dir().join(format!(
        "airsched-perf-recovery-{}-{faulted}-{par}",
        std::process::id()
    ));
    let opts = RecoveryOptions::new()
        .checkpoint_every(every)
        .with_crash(CrashInjector::at_slot(crash_at));
    let mut doomed = build_station(cfg, plan.as_ref());
    par.apply(&mut doomed);
    let run = RecoverableStation::create(&dir, doomed, plan, opts);
    let mut run = match run {
        Ok(r) => r,
        Err(e) => {
            divergences.push(format!(
                "recovery gate: create failed (faulted={faulted}, parallelism={par}): {e}"
            ));
            return;
        }
    };
    let mut t = 0u64;
    loop {
        for k in 0..8u64 {
            run.subscribe(page_for(cfg, t * 8 + k))
                .expect("page is published");
        }
        match run.tick() {
            Ok(got) => {
                if got != want[usize::try_from(t).expect("fits")] {
                    divergences.push(format!(
                        "journaled station diverges from its twin at slot {t} \
                         before the crash (faulted={faulted}, parallelism={par})"
                    ));
                    std::fs::remove_dir_all(&dir).ok();
                    return;
                }
                t += 1;
            }
            Err(RecoverError::Crashed { slot }) => {
                assert_eq!(slot, crash_at, "the scripted crash fired off cue");
                break;
            }
            Err(e) => {
                divergences.push(format!(
                    "recovery gate: tick failed (faulted={faulted}, parallelism={par}): {e}"
                ));
                std::fs::remove_dir_all(&dir).ok();
                return;
            }
        }
    }
    drop(run); // the "process" dies; only the state directory survives

    let resumed =
        RecoverableStation::resume(&dir, RecoveryOptions::new().checkpoint_every(every), None);
    let (mut resumed, report) = match resumed {
        Ok(pair) => pair,
        Err(e) => {
            divergences.push(format!(
                "recovery gate: resume failed (faulted={faulted}, parallelism={par}): {e}"
            ));
            std::fs::remove_dir_all(&dir).ok();
            return;
        }
    };
    match resumed_par {
        ParSetting::Fixed(k) => {
            resumed.parallelism(k);
        }
        ParSetting::Auto(k) => {
            resumed.parallelism_auto(k, Station::AUTO_DRAIN_THRESHOLD);
        }
    }
    if report.resumed_at != crash_at || resumed.now() != crash_at {
        divergences.push(format!(
            "recovery resumed at slot {} instead of the crash slot {crash_at} \
             (faulted={faulted}, parallelism={par})",
            resumed.now()
        ));
        std::fs::remove_dir_all(&dir).ok();
        return;
    }
    for t in crash_at..gate_slots {
        // The crash fired before ticking `crash_at` but after that slot's
        // subscriptions were journaled — replay already applied them, so
        // only later slots subscribe afresh.
        if t != crash_at {
            for k in 0..8u64 {
                resumed
                    .subscribe(page_for(cfg, t * 8 + k))
                    .expect("page is published");
            }
        }
        match resumed.tick() {
            Ok(got) => {
                if got != want[usize::try_from(t).expect("fits")] {
                    divergences.push(format!(
                        "recovered station diverges from its never-crashed twin at \
                         slot {t} (crash at {crash_at}, faulted={faulted}, \
                         parallelism {par} -> {resumed_par})"
                    ));
                    std::fs::remove_dir_all(&dir).ok();
                    return;
                }
            }
            Err(e) => {
                divergences.push(format!(
                    "recovery gate: post-recovery tick failed \
                     (faulted={faulted}, parallelism={par}): {e}"
                ));
                std::fs::remove_dir_all(&dir).ok();
                return;
            }
        }
    }
    if resumed.stats() != twin.stats() {
        divergences.push(format!(
            "recovered station's final stats diverge from its never-crashed twin \
             (crash at {crash_at}, faulted={faulted}, parallelism {par} -> {resumed_par})"
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Drives a chaos station (outages, recoveries, stalls, corruption —
/// the plan swaps under the cache repeatedly) while encoding every slot
/// twice: through the [`SlotBroadcaster`]'s template cache and through
/// the fresh encoder over the same on-air column. Any byte of
/// divergence fails the run. Halfway through, the station is
/// snapshotted and restored onto a *fresh* broadcaster which must
/// rebuild from the recovered plan and keep the stream byte-identical —
/// the template cache's recovery discipline.
fn template_gate(cfg: &Config, faulted: bool, par: ParSetting, divergences: &mut Vec<String>) {
    let plan = cfg.chaos_plan();
    let plan = faulted.then_some(&plan);
    let mut station = build_station(cfg, plan);
    par.apply(&mut station);
    let mut tx = SlotBroadcaster::new(fixed_payloads());
    let mut fresh_src = fixed_payloads();
    let mut buf = TickBuf::new();
    let mut wire = BytesMut::with_capacity(8 * 1024);
    let mut fresh = BytesMut::with_capacity(8 * 1024);
    let gate_slots = cfg.slots.min(1024).max(2 * cfg.cycle);
    let restore_at = gate_slots / 2 + 1;
    for t in 0..gate_slots {
        if t == restore_at {
            // Crash-recover mid-chaos: the restored twin continues with a
            // fresh broadcaster, exactly as a recovered process must.
            let snapshot = station.snapshot();
            station = match Station::from_snapshot(&snapshot, plan) {
                Ok(s) => s,
                Err(e) => {
                    divergences.push(format!(
                        "template gate: snapshot restore failed at slot {t} \
                         (faulted={faulted}, parallelism={par}): {e}"
                    ));
                    return;
                }
            };
            par.apply(&mut station);
            tx = SlotBroadcaster::new(fixed_payloads());
        }
        for k in 0..8u64 {
            station
                .subscribe(page_for(cfg, t * 8 + k))
                .expect("page is published");
        }
        station.tick_into(&mut buf);
        wire.clear();
        let written = match tx.encode_slot(&station, buf.on_air(), buf.time(), &mut wire) {
            Ok(n) => n,
            Err(e) => {
                divergences.push(format!(
                    "template gate: slot {t} failed to encode \
                     (faulted={faulted}, parallelism={par}): {e}"
                ));
                return;
            }
        };
        fresh.clear();
        encode_slot_into(buf.on_air(), buf.time(), &mut fresh_src, &mut fresh)
            .expect("fresh encoding succeeds");
        if written != wire.len() || wire[..] != fresh[..] {
            divergences.push(format!(
                "template-encoded slot {t} diverges from fresh encoding \
                 (faulted={faulted}, parallelism={par}, restored={})",
                t >= restore_at
            ));
            return;
        }
    }
    if faulted && tx.rebuilds() < 2 {
        divergences.push(format!(
            "template gate ran {gate_slots} chaos slots but rebuilt only {} time(s) — \
             the ladder never exercised invalidation (parallelism={par})",
            tx.rebuilds()
        ));
    }
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

struct ScaleResult {
    subscribers: u64,
    faulted: bool,
    /// Drain setting the optimized loop ran at; the seed and reference
    /// baselines are inherently serial and shared across all settings.
    parallelism: ParSetting,
    delivered: u64,
    /// Serving-loop slots per second (subscribe churn + tick, deliveries
    /// consumed) through each implementation.
    opt_tps: f64,
    ref_tps: f64,
    seed_tps: f64,
    opt_dps: f64,
    seed_dps: f64,
    /// Full broadcast slots per second — serve *and* encode, the work a
    /// deployed station does every slot: `tick_into` plus the templated
    /// [`SlotBroadcaster`], at this row's drain setting.
    full_slot_tps: f64,
    /// The same loop with the fresh encoder instead of templates, serial
    /// (the pre-PR wire shape), shared across the scale's rows.
    full_slot_fresh_tps: f64,
    /// `(pooled, serial)` tick counts from [`Station::drain_crossover`]
    /// over the full-slot run; `None` for rows without a pool.
    crossover: Option<(u64, u64)>,
}

impl ScaleResult {
    /// The headline ratio: optimized serving loop vs the pre-PR baseline.
    fn speedup_vs_seed(&self) -> f64 {
        self.opt_tps / self.seed_tps
    }

    /// The encode-wall ratio: templated full slots vs fresh-encoded ones.
    fn full_slot_speedup(&self) -> f64 {
        self.full_slot_tps / self.full_slot_fresh_tps
    }
}

/// Times the full serving loop at one subscriber scale: every tick admits
/// `subscribers / slots` new clients (round-robin over the catalogue) and
/// transmits one slot; deliveries stream out as they happen. The optimized
/// loop holds one `TickBuf` and counts deliveries through `tick_into`,
/// timed once per shard count in `pars`; the reference loop drives
/// `tick_reference`; the seed loop drives the pre-PR replica — both
/// baselines materialize every delivery into one growing list, as the
/// seed `run()` did, and being serial are timed once and shared across
/// every parallelism row.
fn time_scale(
    cfg: &Config,
    faulted: bool,
    scale: u64,
    pars: &[ParSetting],
    divergences: &mut Vec<String>,
) -> Vec<ScaleResult> {
    let plan = cfg.perf_plan();
    let plan = faulted.then_some(&plan);
    let per_tick = scale.div_ceil(cfg.slots).max(1);
    let subscribers = per_tick * cfg.slots;
    let base = build_station(cfg, plan);

    let mut ref_best = f64::INFINITY;
    let mut ref_delivered = 0u64;
    for _ in 0..cfg.reps {
        let mut s = base.clone();
        let mut all = Vec::new();
        let t0 = Instant::now();
        for t in 0..cfg.slots {
            for k in 0..per_tick {
                s.subscribe(page_for(cfg, t * per_tick + k))
                    .expect("page is published");
            }
            all.extend(s.tick_reference().deliveries);
        }
        ref_best = ref_best.min(t0.elapsed().as_secs_f64());
        ref_delivered = all.len() as u64;
    }

    let mut seed_best = f64::INFINITY;
    let mut seed_delivered = 0u64;
    for _ in 0..cfg.reps {
        let mut s = SeedStation::build(cfg, plan);
        let mut all = Vec::new();
        let t0 = Instant::now();
        for t in 0..cfg.slots {
            for k in 0..per_tick {
                s.subscribe(page_for(cfg, t * per_tick + k));
            }
            all.extend(s.tick().deliveries);
        }
        seed_best = seed_best.min(t0.elapsed().as_secs_f64());
        seed_delivered = all.len() as u64;
    }
    if ref_delivered != seed_delivered {
        divergences.push(format!(
            "delivery counts diverge at {subscribers} subscribers (faulted={faulted}): \
             reference {ref_delivered}, seed {seed_delivered}"
        ));
    }

    // The pre-PR wire shape: serial serve plus fresh per-slot encoding —
    // the full-slot baseline every templated row is judged against.
    let mut fresh_slot_best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let mut s = base.clone();
        let mut src = fixed_payloads();
        let mut buf = TickBuf::new();
        let mut wire = BytesMut::with_capacity(8 * 1024);
        let mut bytes = 0u64;
        let t0 = Instant::now();
        for t in 0..cfg.slots {
            for k in 0..per_tick {
                s.subscribe(page_for(cfg, t * per_tick + k))
                    .expect("page is published");
            }
            s.tick_into(&mut buf);
            wire.clear();
            bytes += encode_slot_into(buf.on_air(), buf.time(), &mut src, &mut wire)
                .expect("frames encode") as u64;
        }
        std::hint::black_box(bytes);
        fresh_slot_best = fresh_slot_best.min(t0.elapsed().as_secs_f64());
    }

    let mut rows = Vec::with_capacity(pars.len());
    for &par in pars {
        let mut opt_best = f64::INFINITY;
        let mut opt_delivered = 0u64;
        for _ in 0..cfg.reps {
            let mut s = base.clone();
            par.apply(&mut s);
            let mut buf = TickBuf::new();
            let mut count = 0u64;
            let t0 = Instant::now();
            for t in 0..cfg.slots {
                for k in 0..per_tick {
                    s.subscribe(page_for(cfg, t * per_tick + k))
                        .expect("page is published");
                }
                s.tick_into(&mut buf);
                count += buf.deliveries().len() as u64;
            }
            opt_best = opt_best.min(t0.elapsed().as_secs_f64());
            opt_delivered = count;
        }
        if opt_delivered != seed_delivered {
            divergences.push(format!(
                "delivery counts diverge at {subscribers} subscribers \
                 (faulted={faulted}, parallelism={par}): \
                 optimized {opt_delivered}, seed {seed_delivered}"
            ));
        }

        // Full broadcast slot: same serving loop plus template-patched
        // encoding through the broadcaster.
        let mut slot_best = f64::INFINITY;
        let mut crossover = None;
        for _ in 0..cfg.reps {
            let mut s = base.clone();
            par.apply(&mut s);
            let mut tx = SlotBroadcaster::new(fixed_payloads());
            let mut buf = TickBuf::new();
            let mut wire = BytesMut::with_capacity(8 * 1024);
            let mut bytes = 0u64;
            // Build the template cache before the clock starts: a deployed
            // station pays that cost at plan-swap time, not per slot. An
            // all-idle column touches no plan cell, so the warmup cannot
            // drift however the plan looks. Mid-run invalidations (the
            // faulted rows' fail/restore) still rebuild inside the timed
            // region — that cost is real.
            let idle_col = vec![None; usize::try_from(cfg.channels).expect("channel count fits")];
            tx.encode_slot(&s, &idle_col, s.now(), &mut wire)
                .expect("warmup slot encodes");
            wire.clear();
            let t0 = Instant::now();
            for t in 0..cfg.slots {
                for k in 0..per_tick {
                    s.subscribe(page_for(cfg, t * per_tick + k))
                        .expect("page is published");
                }
                s.tick_into(&mut buf);
                wire.clear();
                bytes += tx
                    .encode_slot(&s, buf.on_air(), buf.time(), &mut wire)
                    .expect("frames encode") as u64;
            }
            std::hint::black_box(bytes);
            slot_best = slot_best.min(t0.elapsed().as_secs_f64());
            if matches!(par, ParSetting::Auto(_)) {
                crossover = Some(s.drain_crossover());
            }
        }

        rows.push(ScaleResult {
            subscribers,
            faulted,
            parallelism: par,
            delivered: opt_delivered,
            opt_tps: cfg.slots as f64 / opt_best,
            ref_tps: cfg.slots as f64 / ref_best,
            seed_tps: cfg.slots as f64 / seed_best,
            opt_dps: opt_delivered as f64 / opt_best,
            seed_dps: seed_delivered as f64 / seed_best,
            full_slot_tps: cfg.slots as f64 / slot_best,
            full_slot_fresh_tps: cfg.slots as f64 / fresh_slot_best,
            crossover,
        });
    }
    rows
}

struct ObsOverhead {
    subscribers: u64,
    faulted: bool,
    /// Isolated serving loop: subscribe + `tick_into` only.
    plain_tps: f64,
    instrumented_tps: f64,
    /// Full broadcast slot: serving loop plus frame encoding, the work a
    /// deployed station does every slot.
    plain_slot_tps: f64,
    instrumented_slot_tps: f64,
}

impl ObsOverhead {
    /// How much slower the instrumented serving loop runs in isolation:
    /// plain ticks/sec over instrumented ticks/sec, so 1.02 means a 2%
    /// tax. This charges the whole tax against the nanosecond-scale
    /// serving loop alone — the worst-case framing.
    fn overhead_ratio(&self) -> f64 {
        self.plain_tps / self.instrumented_tps
    }

    /// The same tax charged against the full broadcast slot (serve +
    /// encode) — the deployment-relevant number, since a station that
    /// never encodes frames broadcasts nothing.
    fn slot_overhead_ratio(&self) -> f64 {
        self.plain_slot_tps / self.instrumented_slot_tps
    }
}

/// Times the station at the acceptance operating point with and without
/// observability attached — same subscribe churn, same `tick_into` loop,
/// same fault plan as the perf rows — in two framings: the serving loop
/// alone, and the full broadcast slot (serving loop + `encode_slot_into`
/// of the on-air frames, the per-slot work a deployed station cannot
/// skip). All four variants alternate rep by rep so clock drift and
/// thermal noise hit them alike, and extra reps tighten the best-of
/// estimate (the ratio is a few percent, well under run-to-run noise on
/// a single rep). Each instrumented rep gets a fresh registry and
/// recorder so ring-buffer state never carries across reps.
fn time_obs_overhead(cfg: &Config, faulted: bool, scale: u64) -> ObsOverhead {
    let plan = cfg.perf_plan();
    let plan = faulted.then_some(&plan);
    let per_tick = scale.div_ceil(cfg.slots).max(1);
    let subscribers = per_tick * cfg.slots;
    let base = build_station(cfg, plan);

    let run = |s: &mut Station, encode: bool| {
        let mut buf = TickBuf::new();
        let mut src = fixed_payloads();
        let mut frame_buf = BytesMut::with_capacity(8 * 1024);
        let mut bytes = 0u64;
        let t0 = Instant::now();
        for t in 0..cfg.slots {
            for k in 0..per_tick {
                s.subscribe(page_for(cfg, t * per_tick + k))
                    .expect("page is published");
            }
            s.tick_into(&mut buf);
            if encode {
                bytes += encode_slot_into(buf.on_air(), t, &mut src, &mut frame_buf)
                    .expect("frames encode") as u64;
            }
        }
        std::hint::black_box(bytes);
        t0.elapsed().as_secs_f64()
    };

    let mut plain_best = f64::INFINITY;
    let mut obs_best = f64::INFINITY;
    let mut plain_slot_best = f64::INFINITY;
    let mut obs_slot_best = f64::INFINITY;
    for _ in 0..cfg.reps.max(7) {
        let mut s = base.clone();
        plain_best = plain_best.min(run(&mut s, false));

        let mut s = base.clone();
        let obs = Obs::with_recorder_capacity(4096);
        s.attach_obs(&obs);
        obs_best = obs_best.min(run(&mut s, false));

        let mut s = base.clone();
        plain_slot_best = plain_slot_best.min(run(&mut s, true));

        let mut s = base.clone();
        let obs = Obs::with_recorder_capacity(4096);
        s.attach_obs(&obs);
        obs_slot_best = obs_slot_best.min(run(&mut s, true));
    }

    ObsOverhead {
        subscribers,
        faulted,
        plain_tps: cfg.slots as f64 / plain_best,
        instrumented_tps: cfg.slots as f64 / obs_best,
        plain_slot_tps: cfg.slots as f64 / plain_slot_best,
        instrumented_slot_tps: cfg.slots as f64 / obs_slot_best,
    }
}

struct TraceOverhead {
    subscribers: u64,
    faulted: bool,
    /// Serving-loop ticks/sec with no tracer attached.
    plain_tps: f64,
    /// Tracer attached, sampling 1/`TRACE_SAMPLE_EVERY`: span trees are
    /// captured on sampled slots, the SLO window updates every tick.
    sampled_tps: f64,
    /// Tracer attached with sampling off (`sample_every` 0): the SLO
    /// window still updates every tick, but no slot ever takes a clock
    /// reading. Still an *enabled* mode — the station is paying for
    /// live SLO tracking.
    unsampled_tps: f64,
    /// No tracer attached at all — the `Option` stays `None` and every
    /// instrumentation site reduces to one dormant branch. This is the
    /// disabled state the "~zero cost" claim is about; the ratio also
    /// doubles as an A/A noise floor for the other two.
    disabled_tps: f64,
    /// Median over reps of the per-rep `sampled / plain` time ratio.
    /// Each rep's variants run back to back, so scheduler and frequency
    /// noise — time-correlated on a small VM — cancels within the pair
    /// instead of skewing a quotient of independently-taken extremes.
    sampled_ratio: f64,
    /// Median per-rep `unsampled / plain` time ratio (same pairing).
    unsampled_ratio: f64,
    /// Median per-rep `disabled / plain` time ratio (same pairing).
    disabled_ratio: f64,
}

/// Sampling cadence the `sampled` trace-overhead row runs at.
const TRACE_SAMPLE_EVERY: u64 = 32;

/// Ceiling on the tracing-enabled serving-loop tax (both the sampled
/// and the sampling-off variants); exceeding it fails the run.
const TRACE_ENABLED_CEILING: f64 = 1.15;

/// Ceiling on the not-attached tax — the dormant branch must be free to
/// within measurement noise.
const TRACE_DISABLED_CEILING: f64 = 1.02;

/// Smallest operating point the overhead ceilings are enforced at.
/// Below this the serving loop ticks in a few hundred nanoseconds and
/// the amortized sampled-slot cost legitimately reaches the ceiling, so
/// smaller sweeps report the rows without gating them.
const TRACE_GATE_MIN_SUBS: u64 = 65_536;

/// Times the serving loop at the acceptance operating point with phase
/// tracing in three states against a plain baseline — sampling 1/32,
/// attached with sampling off, and not attached (the disabled A/A
/// variant) — same subscribe churn and fault plan as the perf rows.
/// The variants alternate rep by rep so clock drift hits them alike.
fn time_trace_overhead(cfg: &Config, faulted: bool, scale: u64) -> TraceOverhead {
    let plan = cfg.perf_plan();
    let plan = faulted.then_some(&plan);
    let per_tick = scale.div_ceil(cfg.slots).max(1);
    let subscribers = per_tick * cfg.slots;
    let base = build_station(cfg, plan);

    let run = |s: &mut Station, window: u64| {
        let mut buf = TickBuf::new();
        let t0 = Instant::now();
        for t in 0..window {
            for k in 0..per_tick {
                s.subscribe(page_for(cfg, t * per_tick + k))
                    .expect("page is published");
            }
            s.tick_into(&mut buf);
            std::hint::black_box(buf.deliveries().len());
        }
        t0.elapsed().as_secs_f64()
    };
    let trace_with = |sample_every: u64| {
        airsched_trace::Trace::new(airsched_trace::TraceConfig {
            sample_every,
            ring_capacity: 64,
            slo: airsched_trace::SloConfig::default(),
        })
    };

    // Calibrate the measurement window: the ratio ceilings are tight
    // enough that a sub-millisecond timed region hands the verdict to
    // scheduler noise, so a short slot program (small `--slots`, fast
    // ticks) is repeated — the churn pattern is cyclic in the page
    // catalogue — until one plain pass costs a few milliseconds.
    let mut window = cfg.slots;
    loop {
        let mut s = base.clone();
        let secs = run(&mut s, window);
        if secs >= 0.004 || window >= 1 << 20 {
            break;
        }
        window *= 2;
    }

    let mut plain_times = Vec::new();
    let mut sampled_ratios = Vec::new();
    let mut unsampled_ratios = Vec::new();
    let mut disabled_ratios = Vec::new();
    // Each rep is a few milliseconds, so a deep sweep costs nothing; the
    // ratio ceilings below are tight enough that scheduler noise on a
    // short window would otherwise dominate the measurement. Each rep
    // pairs the traced variants with its own plain run taken moments
    // before, and the gated ratio is the median of those per-rep
    // quotients — time-local pairing cancels the drift a quotient of
    // independently-taken extremes would keep.
    for _ in 0..cfg.reps.max(25) {
        let mut s = base.clone();
        let plain = run(&mut s, window);
        plain_times.push(plain);

        let mut s = base.clone();
        let trace = trace_with(TRACE_SAMPLE_EVERY);
        s.attach_trace(&trace);
        sampled_ratios.push(run(&mut s, window) / plain);

        let mut s = base.clone();
        let trace = trace_with(0);
        s.attach_trace(&trace);
        unsampled_ratios.push(run(&mut s, window) / plain);

        let mut s = base.clone();
        disabled_ratios.push(run(&mut s, window) / plain);
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };

    let plain_secs = median(&mut plain_times);
    let plain_tps = window as f64 / plain_secs;
    let sampled_ratio = median(&mut sampled_ratios);
    let unsampled_ratio = median(&mut unsampled_ratios);
    let disabled_ratio = median(&mut disabled_ratios);
    TraceOverhead {
        subscribers,
        faulted,
        plain_tps,
        sampled_tps: plain_tps / sampled_ratio,
        unsampled_tps: plain_tps / unsampled_ratio,
        disabled_tps: plain_tps / disabled_ratio,
        sampled_ratio,
        unsampled_ratio,
        disabled_ratio,
    }
}

struct EncodeResult {
    slots: u64,
    bytes_per_slot: u64,
    /// Distinct wire images the template cache interned for the program.
    templates: usize,
    opt_bytes_per_sec: f64,
    ref_bytes_per_sec: f64,
    /// The template-patch path: pre-encoded images, eight slot bytes and
    /// an incrementally corrected CRC rewritten per frame.
    template_bytes_per_sec: f64,
}

fn fill_on_air(on_air: &mut [Option<PageId>], program: &BroadcastProgram, t: u64) {
    let column = SlotIndex::new(t % program.cycle_len());
    for (ch, slot) in on_air.iter_mut().enumerate() {
        let channel = ChannelId::new(u32::try_from(ch).expect("channel fits"));
        *slot = program.page_at(GridPos::new(channel, column));
    }
}

/// Times three encode shapes over the same program: the seed's per-frame
/// `Frame::encode` (fresh buffer per frame), one reused-buffer
/// `encode_slot_into` stream, and the [`FrameTemplateCache`] patch path —
/// byte-comparing all three streams over a full cycle before timing.
fn encode_phase(cfg: &Config, divergences: &mut Vec<String>) -> EncodeResult {
    let per = u64::from(cfg.pages / 3);
    let ladder = GroupLadder::new(vec![
        (cfg.cycle / 4, per),
        (cfg.cycle / 2, per),
        (cfg.cycle, per),
    ])
    .expect("ladder builds");
    let program = susc::schedule(&ladder, cfg.channels).expect("schedule fits");
    let n = cfg.channels as usize;
    let encode_slots = cfg.slots.min(2048);
    let mut on_air: Vec<Option<PageId>> = vec![None; n];

    let mut src = fixed_payloads();
    let mut ref_src = fixed_payloads();
    let mut cache =
        FrameTemplateCache::build(&program, &mut fixed_payloads()).expect("templates build");
    let mut buf = BytesMut::with_capacity(8 * 1024);
    let mut patched = BytesMut::with_capacity(8 * 1024);
    let mut expected = Vec::new();
    for t in 0..cfg.cycle {
        fill_on_air(&mut on_air, &program, t);
        buf.clear();
        encode_slot_into(&on_air, t, &mut src, &mut buf).expect("frames encode");
        expected.clear();
        for frame in frames_for_slot(&on_air, t, &mut ref_src) {
            expected.extend_from_slice(&frame.encode());
        }
        if buf[..] != expected[..] {
            divergences.push(format!("encode_slot_into bytes diverge at slot {t}"));
            break;
        }
        patched.clear();
        cache.encode_cycle_slot(t, &mut patched);
        if patched[..] != expected[..] {
            divergences.push(format!("template-patched bytes diverge at slot {t}"));
            break;
        }
    }

    let mut bytes_per_slot = 0u64;
    let mut opt_best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let mut buf = BytesMut::with_capacity(8 * 1024);
        let mut total = 0u64;
        let t0 = Instant::now();
        for t in 0..encode_slots {
            fill_on_air(&mut on_air, &program, t);
            buf.clear();
            total += encode_slot_into(&on_air, t, &mut src, &mut buf).expect("encodes") as u64;
        }
        opt_best = opt_best.min(t0.elapsed().as_secs_f64());
        bytes_per_slot = total / encode_slots;
    }

    let mut ref_best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let mut total = 0u64;
        let t0 = Instant::now();
        for t in 0..encode_slots {
            fill_on_air(&mut on_air, &program, t);
            for frame in frames_for_slot(&on_air, t, &mut ref_src) {
                total += frame.encode().len() as u64;
            }
        }
        ref_best = ref_best.min(t0.elapsed().as_secs_f64());
        let _ = total;
    }

    // The template path needs no on-air column: the cycle *is* the plan,
    // so each slot is a memcpy of cached images plus the slot-byte and
    // CRC patches.
    let mut template_best = f64::INFINITY;
    for _ in 0..cfg.reps {
        let mut buf = BytesMut::with_capacity(8 * 1024);
        let mut total = 0u64;
        let t0 = Instant::now();
        for t in 0..encode_slots {
            buf.clear();
            total += cache.encode_cycle_slot(t, &mut buf) as u64;
        }
        std::hint::black_box(&buf);
        template_best = template_best.min(t0.elapsed().as_secs_f64());
        let _ = total;
    }

    EncodeResult {
        slots: encode_slots,
        bytes_per_slot,
        templates: cache.template_count(),
        opt_bytes_per_sec: (bytes_per_slot * encode_slots) as f64 / opt_best,
        ref_bytes_per_sec: (bytes_per_slot * encode_slots) as f64 / ref_best,
        template_bytes_per_sec: (bytes_per_slot * encode_slots) as f64 / template_best,
    }
}

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let cfg = Config {
        channels: extra_num(&extra, "channels", 8u32),
        cycle: extra_num(&extra, "cycle", 1024u64),
        pages: extra_num(&extra, "pages", 1680u32),
        slots: extra_num(&extra, "slots", 4096u64),
        reps: extra_num(&extra, "reps", 3u32),
        seed: config.seed,
    };
    let max_subs = extra_num(&extra, "max-subs", 1_000_000u64);
    let out_path = extra
        .iter()
        .find(|(k, _)| k == "out")
        .map_or_else(|| "BENCH_station.json".to_string(), |(_, v)| v.clone());

    let mut scales: Vec<u64> = extra
        .iter()
        .find(|(k, _)| k == "scales")
        .map_or("10000,100000,1000000", |(_, v)| v.as_str())
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("--scales: bad value '{s}'"))
        })
        .filter(|&s| s <= max_subs)
        .collect();
    if scales.is_empty() {
        scales.push(max_subs.max(1));
    }
    // Drain settings to exercise. `1` is always present: the lockstep
    // gates sweep it as the base case and the serial timing row anchors
    // the before/after curve. `auto` is a pool behind the crossover.
    let mut pars: Vec<ParSetting> = extra
        .iter()
        .find(|(k, _)| k == "par")
        .map_or("1,2,4,auto", |(_, v)| v.as_str())
        .split(',')
        .map(|s| {
            let s = s.trim();
            if s.eq_ignore_ascii_case("auto") {
                ParSetting::Auto(AUTO_WORKERS)
            } else {
                ParSetting::Fixed(
                    s.parse()
                        .unwrap_or_else(|_| panic!("--par: bad value '{s}'")),
                )
            }
        })
        .collect();
    if !pars.contains(&ParSetting::Fixed(1)) {
        pars.push(ParSetting::Fixed(1));
    }
    pars.sort_unstable();
    pars.dedup();

    let mut divergences: Vec<String> = Vec::new();
    let par_labels = pars.iter().map(|p| p.label()).collect::<Vec<_>>().join(",");
    println!(
        "station_perf: {} channels, cycle {}, {} pages, {} serving slots, \
         subscriber scales {scales:?}, drain settings [{par_labels}]\n",
        cfg.channels, cfg.cycle, cfg.pages, cfg.slots
    );

    let mut results: Vec<ScaleResult> = Vec::new();
    for faulted in [false, true] {
        for &par in &pars {
            reference_gate(&cfg, faulted, par, &mut divergences);
            seed_gate(&cfg, faulted, par, &mut divergences);
            obs_gate(&cfg, faulted, par, &mut divergences);
            trace_gate(&cfg, faulted, par, &mut divergences);
            recovery_gate(&cfg, faulted, par, &mut divergences);
            template_gate(&cfg, faulted, par, &mut divergences);
        }
        for &scale in &scales {
            for r in time_scale(&cfg, faulted, scale, &pars, &mut divergences) {
                println!(
                    "{} subscribers ({}, par {}): {:.0} ticks/s vs seed {:.0} \
                     ({:.1}x, reference {:.0}), {:.0} vs {:.0} deliveries/s, {} delivered; \
                     full slot {:.0}/s vs fresh {:.0}/s ({:.1}x){}",
                    r.subscribers,
                    if faulted { "faulted" } else { "clean" },
                    r.parallelism,
                    r.opt_tps,
                    r.seed_tps,
                    r.speedup_vs_seed(),
                    r.ref_tps,
                    r.opt_dps,
                    r.seed_dps,
                    r.delivered,
                    r.full_slot_tps,
                    r.full_slot_fresh_tps,
                    r.full_slot_speedup(),
                    r.crossover
                        .map_or(String::new(), |(pooled, serial)| format!(
                            ", crossover {pooled} pooled / {serial} serial"
                        ))
                );
                results.push(r);
            }
        }
        println!();
    }

    // Observability tax at the acceptance operating point (100k
    // subscribers, or the largest scale allowed by --max-subs).
    let obs_scale = scales
        .iter()
        .copied()
        .filter(|&s| s <= 100_000)
        .max()
        .unwrap_or_else(|| scales[0]);
    let obs_rows: Vec<ObsOverhead> = [false, true]
        .into_iter()
        .map(|faulted| time_obs_overhead(&cfg, faulted, obs_scale))
        .collect();
    for obs in &obs_rows {
        println!(
            "obs overhead at {} subscribers ({}): {:.0} ticks/s instrumented vs {:.0} plain \
             ({:.3}x serving loop alone, {:.3}x full slot with encode)",
            obs.subscribers,
            if obs.faulted { "faulted" } else { "clean" },
            obs.instrumented_tps,
            obs.plain_tps,
            obs.overhead_ratio(),
            obs.slot_overhead_ratio()
        );
    }
    println!();

    // Tracing tax at the same operating point, in both states a deployed
    // station runs in: sampling 1/32 (enabled) and sampling off
    // (attached but dormant). Both are gated.
    let trace_rows: Vec<TraceOverhead> = [false, true]
        .into_iter()
        .map(|faulted| time_trace_overhead(&cfg, faulted, obs_scale))
        .collect();
    for t in &trace_rows {
        println!(
            "trace overhead at {} subscribers ({}): vs {:.0} plain ticks/s — \
             sampled 1/{} {:.3}x, sampling off {:.3}x, not attached {:.3}x",
            t.subscribers,
            if t.faulted { "faulted" } else { "clean" },
            t.plain_tps,
            TRACE_SAMPLE_EVERY,
            t.sampled_ratio,
            t.unsampled_ratio,
            t.disabled_ratio
        );
        // The 1.15x/1.02x ceilings are the acceptance claim at the 100k
        // operating point, where a tick is slow enough that the
        // per-sampled-slot cost amortizes cleanly. A reduced sweep
        // (smoke runs with small --max-subs) still prints and exports
        // the rows, but ticks there are a few hundred nanoseconds and
        // the sampled ratio legitimately rides the ceiling — gating it
        // would turn the smoke job into a coin flip.
        if t.subscribers < TRACE_GATE_MIN_SUBS {
            continue;
        }
        if t.sampled_ratio > TRACE_ENABLED_CEILING {
            divergences.push(format!(
                "tracing at 1/{TRACE_SAMPLE_EVERY} costs {:.3}x at {} subscribers \
                 (faulted={}) — ceiling is {TRACE_ENABLED_CEILING}x",
                t.sampled_ratio, t.subscribers, t.faulted
            ));
        }
        if t.unsampled_ratio > TRACE_ENABLED_CEILING {
            divergences.push(format!(
                "tracing with sampling off costs {:.3}x at {} subscribers \
                 (faulted={}) — ceiling is {TRACE_ENABLED_CEILING}x",
                t.unsampled_ratio, t.subscribers, t.faulted
            ));
        }
        if t.disabled_ratio > TRACE_DISABLED_CEILING {
            divergences.push(format!(
                "tracing not attached costs {:.3}x at {} subscribers \
                 (faulted={}) — ceiling is {TRACE_DISABLED_CEILING}x",
                t.disabled_ratio, t.subscribers, t.faulted
            ));
        }
    }
    println!();

    let encode = encode_phase(&cfg, &mut divergences);
    println!(
        "encode: {:.1} MB/s template-patched vs {:.1} MB/s reused buffer vs \
         {:.1} MB/s per-frame ({:.1}x over fresh), {} bytes/slot, {} templates\n",
        encode.template_bytes_per_sec / 1e6,
        encode.opt_bytes_per_sec / 1e6,
        encode.ref_bytes_per_sec / 1e6,
        encode.template_bytes_per_sec / encode.opt_bytes_per_sec,
        encode.bytes_per_slot,
        encode.templates
    );

    // Headline: the un-faulted serial serving-loop ratio at the largest
    // scale up to 100k subscribers (the acceptance operating point) —
    // pinned to parallelism 1 so the number stays comparable across runs
    // regardless of the --par sweep.
    let headline = results
        .iter()
        .rfind(|r| !r.faulted && r.parallelism == ParSetting::Fixed(1) && r.subscribers <= 110_000)
        .map_or(f64::NAN, ScaleResult::speedup_vs_seed);
    println!("headline serving-loop speedup vs seed: {headline:.1}x");

    let entries = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"subscribers\": {subs}, \"faulted\": {faulted}, ",
                    "\"parallelism\": {par}, ",
                    "\"optimized_ticks_per_sec\": {o_tps}, \"seed_ticks_per_sec\": {s_tps}, ",
                    "\"reference_ticks_per_sec\": {r_tps}, \"speedup_vs_seed\": {speed}, ",
                    "\"optimized_deliveries_per_sec\": {o_dps}, ",
                    "\"seed_deliveries_per_sec\": {s_dps}, \"delivered\": {n}, ",
                    "\"full_slot_ticks_per_sec\": {fs_tps}, ",
                    "\"full_slot_fresh_ticks_per_sec\": {fs_fresh}, ",
                    "\"full_slot_speedup\": {fs_x}, \"crossover\": {cross}}}"
                ),
                subs = r.subscribers,
                faulted = r.faulted,
                par = r.parallelism.json(),
                o_tps = json_f(r.opt_tps),
                s_tps = json_f(r.seed_tps),
                r_tps = json_f(r.ref_tps),
                speed = json_f(r.speedup_vs_seed()),
                o_dps = json_f(r.opt_dps),
                s_dps = json_f(r.seed_dps),
                n = r.delivered,
                fs_tps = json_f(r.full_slot_tps),
                fs_fresh = json_f(r.full_slot_fresh_tps),
                fs_x = json_f(r.full_slot_speedup()),
                cross = r.crossover.map_or("null".to_string(), |(pooled, serial)| {
                    format!("{{\"pooled\": {pooled}, \"serial\": {serial}}}")
                }),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"station_perf\",\n",
            "  \"config\": {{\"channels\": {ch}, \"cycle\": {cy}, \"pages\": {pg}, ",
            "\"serving_slots\": {sl}, \"reps\": {reps}, \"seed\": {seed}, ",
            "\"parallelism\": {pars}}},\n",
            "  \"scales\": [\n{entries}\n  ],\n",
            "  \"encode\": {{\"slots\": {e_n}, \"bytes_per_slot\": {e_b}, ",
            "\"channels\": {e_ch}, \"payload_bytes\": {e_pb}, \"templates\": {e_t}, ",
            "\"optimized_bytes_per_sec\": {e_o}, \"reference_bytes_per_sec\": {e_r}, ",
            "\"template_bytes_per_sec\": {e_tp}, ",
            "\"speedup\": {e_x}, \"template_speedup\": {e_tx}}},\n",
            "  \"obs\": [\n{ob_rows}\n  ],\n",
            "  \"trace\": [\n{tr_rows}\n  ],\n",
            "  \"headline_speedup_vs_seed\": {head},\n",
            "  \"divergences\": {divs}\n",
            "}}\n"
        ),
        ch = cfg.channels,
        cy = cfg.cycle,
        pg = cfg.pages,
        sl = cfg.slots,
        reps = cfg.reps,
        seed = cfg.seed,
        pars = format!(
            "[{}]",
            pars.iter().map(|p| p.json()).collect::<Vec<_>>().join(", ")
        ),
        entries = entries,
        e_n = encode.slots,
        e_b = encode.bytes_per_slot,
        e_ch = cfg.channels,
        e_pb = PAYLOAD.len(),
        e_t = encode.templates,
        e_o = json_f(encode.opt_bytes_per_sec),
        e_r = json_f(encode.ref_bytes_per_sec),
        e_tp = json_f(encode.template_bytes_per_sec),
        e_x = json_f(encode.opt_bytes_per_sec / encode.ref_bytes_per_sec),
        e_tx = json_f(encode.template_bytes_per_sec / encode.ref_bytes_per_sec),
        ob_rows = obs_rows
            .iter()
            .map(|o| {
                format!(
                    concat!(
                        "    {{\"subscribers\": {subs}, \"faulted\": {faulted}, ",
                        "\"plain_ticks_per_sec\": {plain}, ",
                        "\"instrumented_ticks_per_sec\": {instr}, ",
                        "\"overhead_ratio\": {ratio}, ",
                        "\"plain_slot_ticks_per_sec\": {plain_s}, ",
                        "\"instrumented_slot_ticks_per_sec\": {instr_s}, ",
                        "\"slot_overhead_ratio\": {ratio_s}}}"
                    ),
                    subs = o.subscribers,
                    faulted = o.faulted,
                    plain = json_f(o.plain_tps),
                    instr = json_f(o.instrumented_tps),
                    ratio = json_f(o.overhead_ratio()),
                    plain_s = json_f(o.plain_slot_tps),
                    instr_s = json_f(o.instrumented_slot_tps),
                    ratio_s = json_f(o.slot_overhead_ratio()),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
        tr_rows = trace_rows
            .iter()
            .map(|t| {
                format!(
                    concat!(
                        "    {{\"subscribers\": {subs}, \"faulted\": {faulted}, ",
                        "\"sample_every\": {every}, ",
                        "\"plain_ticks_per_sec\": {plain}, ",
                        "\"sampled_ticks_per_sec\": {sampled}, ",
                        "\"sampled_overhead_ratio\": {s_ratio}, ",
                        "\"unsampled_ticks_per_sec\": {unsampled}, ",
                        "\"unsampled_overhead_ratio\": {u_ratio}, ",
                        "\"disabled_ticks_per_sec\": {disabled}, ",
                        "\"disabled_overhead_ratio\": {d_ratio}}}"
                    ),
                    subs = t.subscribers,
                    faulted = t.faulted,
                    every = TRACE_SAMPLE_EVERY,
                    plain = json_f(t.plain_tps),
                    sampled = json_f(t.sampled_tps),
                    s_ratio = json_f(t.sampled_ratio),
                    unsampled = json_f(t.unsampled_tps),
                    u_ratio = json_f(t.unsampled_ratio),
                    disabled = json_f(t.disabled_tps),
                    d_ratio = json_f(t.disabled_ratio),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n"),
        head = json_f(headline),
        divs = if divergences.is_empty() {
            "[]".to_string()
        } else {
            format!(
                "[{}]",
                divergences
                    .iter()
                    .map(|d| format!("\"{}\"", d.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        },
    );
    std::fs::write(&out_path, &json).expect("write BENCH_station.json");
    println!("wrote {out_path}");

    if !divergences.is_empty() {
        eprintln!("DIVERGENCE:");
        for d in &divergences {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}
