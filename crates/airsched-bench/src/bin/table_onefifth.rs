//! §5's closing observation, quantified at paper scale: with about one
//! fifth of the minimally sufficient channels, PAMAD's average delay is
//! already "almost ignorable".
//!
//! Run: `cargo run --release -p airsched-bench --bin table_onefifth`

use airsched_analysis::experiment::one_fifth_summary;
use airsched_analysis::report::one_fifth_table;
use airsched_bench::parse_common_args;

fn main() {
    let (config, dists, _extra) = parse_common_args();
    let mut rows = Vec::new();
    for dist in dists {
        let config = config.clone().with_distribution(dist);
        rows.push(one_fifth_summary(&config).expect("summary runs"));
    }
    println!("The 1/5-of-minimum-channels observation (PAMAD, paper defaults)\n");
    println!("{}", one_fifth_table(&rows).render());
    println!(
        "\nreading: AvgD collapses by ~an order of magnitude between 1 \
         channel and N_min/5 channels, and is ~0 at N_min."
    );
}
