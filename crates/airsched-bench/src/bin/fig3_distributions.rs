//! Figure 3: the four group-size distributions, n = 1000 over h = 8 groups.
//!
//! The paper shows these as bar charts; this binary prints the per-group
//! page counts and an ASCII rendering of each shape.
//!
//! Run: `cargo run --release -p airsched-bench --bin fig3_distributions`

use airsched_analysis::table::Table;
use airsched_bench::parse_common_args;
use airsched_workload::distributions::GroupSizeDistribution;

fn main() {
    let (config, _dists, _extra) = parse_common_args();
    let ladder = config.ladder().expect("paper defaults build");
    let h = ladder.group_count();
    let n = ladder.total_pages();

    println!("Figure 3: group size distributions (n = {n}, h = {h})\n");

    let mut headers = vec!["distribution".to_string()];
    for i in 1..=h {
        headers.push(format!("G{i}"));
    }
    let mut table = Table::new(headers);
    for dist in GroupSizeDistribution::ALL {
        let counts = dist.page_counts(h, n);
        let mut row = vec![dist.to_string()];
        row.extend(counts.iter().map(ToString::to_string));
        table.row(row);
    }
    println!("{}", table.render());

    // ASCII bars, 50 columns at full scale.
    for dist in GroupSizeDistribution::ALL {
        let counts = dist.page_counts(h, n);
        let max = *counts.iter().max().expect("h > 0");
        println!("\n{dist}:");
        for (i, &c) in counts.iter().enumerate() {
            let width = ((c * 50) / max) as usize;
            println!("  G{} {:>4} |{}", i + 1, c, "#".repeat(width.max(1)));
        }
    }
}
