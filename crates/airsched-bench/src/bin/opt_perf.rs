//! OPT search cost: candidates evaluated and wall time vs. channel count
//! at full paper scale (the paper calls its exhaustive search
//! "unacceptably high"; the dynamic-bound structured search is not).
//!
//! Run: `cargo run --release -p airsched-bench --bin opt_perf`

use airsched_bench::parse_common_args;
use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::opt;

fn main() {
    let (config, dists, _extra) = parse_common_args();
    let config = config.with_distribution(dists[0]);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    println!(
        "OPT (r-structured, dynamic bounds) on {} — N_min = {min}\n",
        dists[0]
    );
    println!(
        "{:>8}  {:>10}  {:>10}  {:>12}  {:>10}",
        "channels", "evaluated", "pruned", "objective", "time"
    );
    let mut points: Vec<u32> = (0..).map(|k| 1u32 << k).take_while(|&n| n < min).collect();
    points.push(min);
    for n in points {
        let t0 = std::time::Instant::now();
        let r = opt::search_r_structured(&ladder, n, Weighting::PaperEq2);
        println!(
            "{n:>8}  {:>10}  {:>10}  {:>12.4}  {:>10?}",
            r.evaluated(),
            r.pruned(),
            r.objective(),
            t0.elapsed()
        );
    }
}
