//! Figure 4: the experiment parameter table, as embedded in
//! [`airsched_analysis::experiment::ExperimentConfig::paper_defaults`].
//!
//! Run: `cargo run --release -p airsched-bench --bin fig4_parameters`

use airsched_analysis::table::Table;
use airsched_bench::parse_common_args;

fn main() {
    let (config, _dists, _extra) = parse_common_args();
    let ladder = config.ladder().expect("paper defaults build");

    let mut table = Table::new(vec!["Parameter".into(), "Default value".into()]);
    table.row(vec![
        "n - total number".into(),
        ladder.total_pages().to_string(),
    ]);
    table.row(vec![
        "h - number of groups".into(),
        ladder.group_count().to_string(),
    ]);
    table.row(vec![
        "t_i - expected time".into(),
        ladder
            .times()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    table.row(vec![
        "group size distributions".into(),
        "{normal, L-skewed, S-skewed, uniform}".into(),
    ]);
    table.row(vec![
        "number of requests".into(),
        config.requests.to_string(),
    ]);
    println!("Figure 4: parameter settings\n\n{}", table.render());
}
