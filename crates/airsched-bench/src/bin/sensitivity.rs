//! Sensitivity analysis (ours, beyond the paper): how robust is the
//! "PAMAD ≈ OPT ≫ m-PB" picture to each workload parameter?
//!
//! One parameter varies at a time around the Figure 4 defaults; the channel
//! budget is held at `ceil(N_min / 5)` of each configuration's own minimum
//! (the paper's recommended operating point).
//!
//! Run: `cargo run --release -p airsched-bench --bin sensitivity`

use airsched_analysis::experiment::{sweep_channels, ExperimentConfig};
use airsched_analysis::table::{fnum, Table};
use airsched_bench::parse_common_args;
use airsched_core::bound::minimum_channels;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

fn measure(config: &ExperimentConfig) -> (u32, f64, f64, f64) {
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let n = min.div_ceil(5).max(1);
    let sweep = sweep_channels(config, [n]).expect("sweep runs");
    let p = sweep.points[0];
    (min, p.pamad, p.mpb, p.opt)
}

fn main() {
    let (base, _dists, _extra) = parse_common_args();
    let base = base.with_distribution(GroupSizeDistribution::Uniform);

    println!("Sensitivity around Figure 4 defaults (uniform dist, channels = ceil(N_min/5))\n");

    // Number of groups h.
    let mut table = Table::new(vec![
        "h".into(),
        "N_min".into(),
        "PAMAD".into(),
        "m-PB".into(),
        "OPT".into(),
    ]);
    for h in [2usize, 4, 6, 8, 10] {
        let config = ExperimentConfig {
            spec: WorkloadSpec::new(1000, h, 4, 2).distribution(GroupSizeDistribution::Uniform),
            ..base.clone()
        };
        let (min, pamad, mpb, opt) = measure(&config);
        table.row(vec![
            h.to_string(),
            min.to_string(),
            fnum(pamad, 3),
            fnum(mpb, 3),
            fnum(opt, 3),
        ]);
    }
    println!("varying h (number of groups):\n{}", table.render());

    // Total pages n.
    let mut table = Table::new(vec![
        "n".into(),
        "N_min".into(),
        "PAMAD".into(),
        "m-PB".into(),
        "OPT".into(),
    ]);
    for n in [250u64, 500, 1000, 2000] {
        let config = ExperimentConfig {
            spec: WorkloadSpec::new(n, 8, 4, 2).distribution(GroupSizeDistribution::Uniform),
            ..base.clone()
        };
        let (min, pamad, mpb, opt) = measure(&config);
        table.row(vec![
            n.to_string(),
            min.to_string(),
            fnum(pamad, 3),
            fnum(mpb, 3),
            fnum(opt, 3),
        ]);
    }
    println!("\nvarying n (total pages):\n{}", table.render());

    // Time ratio c.
    let mut table = Table::new(vec![
        "c".into(),
        "N_min".into(),
        "PAMAD".into(),
        "m-PB".into(),
        "OPT".into(),
    ]);
    for c in [2u64, 3, 4] {
        let config = ExperimentConfig {
            spec: WorkloadSpec::new(1000, 8, 4, c).distribution(GroupSizeDistribution::Uniform),
            ..base.clone()
        };
        let (min, pamad, mpb, opt) = measure(&config);
        table.row(vec![
            c.to_string(),
            min.to_string(),
            fnum(pamad, 3),
            fnum(mpb, 3),
            fnum(opt, 3),
        ]);
    }
    println!("\nvarying c (expected-time ratio):\n{}", table.render());

    // Seed stability at the default point.
    let mut table = Table::new(vec![
        "seed".into(),
        "PAMAD".into(),
        "m-PB".into(),
        "OPT".into(),
    ]);
    for seed in [1u64, 7, 42, 1234, 99999] {
        let config = ExperimentConfig {
            seed,
            ..base.clone()
        };
        let (_, pamad, mpb, opt) = measure(&config);
        table.row(vec![
            seed.to_string(),
            fnum(pamad, 3),
            fnum(mpb, 3),
            fnum(opt, 3),
        ]);
    }
    println!(
        "\nseed stability (3000-request estimates at the default point):\n{}",
        table.render()
    );
}
