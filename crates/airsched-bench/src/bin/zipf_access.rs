//! Extension experiment: access-skew-aware scheduling.
//!
//! The paper assumes uniform page access. Real broadcast workloads are
//! Zipf-skewed, and the Equation 2 objective can be re-weighted by each
//! group's Zipf access mass (`Weighting::ZipfAccess`). This binary measures
//! whether that pays off: clients draw pages from a Zipf law (page 0
//! hottest) and we compare PAMAD driven by the paper's objective against
//! PAMAD and OPT driven by the skew-aware objective.
//!
//! Run: `cargo run --release -p airsched-bench --bin zipf_access`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::{opt, pamad};
use airsched_sim::access::measure;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, RequestGenerator};

fn main() {
    let (config, _dists, extra) = parse_common_args();
    let config = config.with_distribution(GroupSizeDistribution::Uniform);
    let ladder = config.ladder().expect("workload builds");
    let min = minimum_channels(&ladder);
    let frac: u32 = extra_num(&extra, "frac", 5);
    let n = (min / frac).max(1);

    println!(
        "Zipf access vs scheduling objective (uniform sizes, N_min = {min}, \
         channels = {n})\n"
    );

    let mut table = Table::new(vec![
        "theta".into(),
        "PAMAD (paper)".into(),
        "PAMAD (zipf-aware)".into(),
        "OPT (zipf-aware)".into(),
    ]);

    for theta in [0.0f64, 0.5, 0.95, 1.2] {
        let mut gen = RequestGenerator::new(
            &ladder,
            if theta == 0.0 {
                AccessPattern::Uniform
            } else {
                AccessPattern::Zipf { theta }
            },
            config.seed,
        );
        let normalized = gen.take_normalized(config.requests);

        let mut row = vec![format!("{theta:.2}")];
        let contenders = [
            pamad::schedule_with(&ladder, n, Weighting::PaperEq2)
                .expect("pamad runs")
                .into_program(),
            pamad::schedule_with(&ladder, n, Weighting::ZipfAccess { theta })
                .expect("pamad runs")
                .into_program(),
            opt::search_r_structured(&ladder, n, Weighting::ZipfAccess { theta })
                .place(&ladder, n)
                .expect("placement runs")
                .into_program(),
        ];
        for program in &contenders {
            let requests: Vec<_> = normalized
                .iter()
                .map(|nr| nr.materialize(program.cycle_len()))
                .collect();
            let (summary, _) = measure(program, &ladder, &requests);
            row.push(fnum(summary.avg_delay(), 3));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "\nreading: under skewed access, weighting the objective by group \
         access mass lets the scheduler shift frequency toward the hot \
         (tight-deadline) groups."
    );
}
