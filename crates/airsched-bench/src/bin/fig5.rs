//! Figure 5(a–d): average delay vs. number of channels for PAMAD, m-PB and
//! OPT under the four group-size distributions, at full paper scale
//! (n = 1000, h = 8, t = 4..512, 3000 requests).
//!
//! Run: `cargo run --release -p airsched-bench --bin fig5 -- --dist all`
//! Options: `--dist normal|sskew|lskew|uniform|all`, `--step K` (sample
//! every K-th channel count), `--csv true`, `--plot true` (ASCII chart on
//! a log y-axis, like the paper's figures), `--requests N`, `--seed S`.

use airsched_analysis::experiment::sweep_channels;
use airsched_analysis::plot::{ascii_chart, Series};
use airsched_analysis::report::{sweep_headline, sweep_table};
use airsched_bench::{extra_flag, extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;

fn main() {
    let (config, dists, extra) = parse_common_args();
    let step: u32 = extra_num(&extra, "step", 1);
    let csv = extra_flag(&extra, "csv");
    let plot = extra_flag(&extra, "plot");
    assert!(step > 0, "--step must be positive");

    let labels = ["(a)", "(b)", "(c)", "(d)"];
    for (dist, label) in dists.iter().zip(labels.iter().cycle()) {
        let config = config.clone().with_distribution(*dist);
        let ladder = config.ladder().expect("workload builds");
        let min = minimum_channels(&ladder);
        let channels: Vec<u32> = (1..=min)
            .step_by(step as usize)
            .chain(std::iter::once(min)) // always include the right edge
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let sweep = sweep_channels(&config, channels).expect("sweep runs");
        println!("Figure 5{label}: {}", sweep_headline(&sweep));
        if plot {
            let to_points = |f: fn(&airsched_analysis::experiment::SweepPoint) -> f64| {
                sweep
                    .points
                    .iter()
                    .map(|p| (f64::from(p.channels), f(p)))
                    .collect::<Vec<_>>()
            };
            let series = [
                Series {
                    name: "PAMAD",
                    glyph: '*',
                    points: to_points(|p| p.pamad),
                },
                Series {
                    name: "m-PB",
                    glyph: 'o',
                    points: to_points(|p| p.mpb),
                },
                Series {
                    name: "OPT",
                    glyph: '+',
                    points: to_points(|p| p.opt),
                },
            ];
            println!("{}", ascii_chart(&series, 64, 18, true));
        }
        let table = sweep_table(&sweep);
        if csv {
            println!("{}", table.render_csv());
        } else if !plot {
            println!("{}", table.render());
        }
    }
}
