//! §4's two candidate solutions, head to head: drop pages (Solution 1) vs
//! reduce frequencies / PAMAD (Solution 2).
//!
//! The paper rejects dropping because the dropped pages' readers "are
//! forced to issue requests to the server and access data through the
//! on-demand channels", degrading the pull channel's quality of service.
//! This binary quantifies that: both schedulers face the same impatient
//! client population and a shared on-demand back-end; we report the
//! abandonment rate and on-demand congestion of each.
//!
//! Run: `cargo run --release -p airsched-bench --bin drop_vs_pamad`

use airsched_analysis::table::{fnum, Table};
use airsched_bench::{extra_num, parse_common_args};
use airsched_core::bound::minimum_channels;
use airsched_core::dropping::{program_in_original_ids, schedule_with_drops, DropPolicy};
use airsched_core::pamad;
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::requests::RequestGenerator;

fn main() {
    let (config, dists, extra) = parse_common_args();
    let horizon: u64 = extra_num(&extra, "horizon", 20_000);
    let servers: u32 = extra_num(&extra, "servers", 4);

    let sim_config = SimConfig {
        patience_factor: 2.0,
        ondemand_service_slots: 2,
        ondemand_servers: servers,
    };

    for dist in dists {
        let config = config.clone().with_distribution(dist);
        let ladder = config.ladder().expect("workload builds");
        let min = minimum_channels(&ladder);
        println!(
            "distribution {dist} (N_min = {min}, patience 2x, {servers} on-demand server(s)):"
        );
        let mut table = Table::new(vec![
            "channels".into(),
            "scheduler".into(),
            "dropped pages".into(),
            "abandon %".into(),
            "od queue wait".into(),
            "od peak backlog".into(),
            "mean latency".into(),
        ]);

        for frac in [5u32, 3, 2] {
            let n = (min / frac).max(1);
            let mut gen = RequestGenerator::new(&ladder, config.access, config.seed);
            let requests = gen.take(config.requests, horizon);

            let pamad_program = pamad::schedule(&ladder, n)
                .expect("pamad runs")
                .into_program();
            let drop_outcome = schedule_with_drops(&ladder, n, DropPolicy::TightestFirst)
                .expect("drop baseline runs");
            let drop_program = program_in_original_ids(&ladder, &drop_outcome);

            for (name, program, dropped) in [
                ("PAMAD", &pamad_program, 0usize),
                ("drop+SUSC", &drop_program, drop_outcome.dropped().len()),
            ] {
                let report = Simulation::new(program, &ladder, sim_config).run(&requests);
                table.row(vec![
                    n.to_string(),
                    name.to_string(),
                    dropped.to_string(),
                    fnum(report.abandonment_rate() * 100.0, 1),
                    fnum(report.ondemand.mean_queue_wait, 2),
                    report.ondemand.max_backlog.to_string(),
                    fnum(report.mean_total_latency, 1),
                ]);
            }
        }
        println!("{}\n", table.render());
    }
    println!(
        "reading: dropping satisfies the surviving pages' deadlines exactly, \
         but every dropped page's readers hit the pull channel immediately - \
         PAMAD keeps everyone on the air with bounded extra delay."
    );
}
