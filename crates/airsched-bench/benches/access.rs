//! Access-path micro-benchmarks: per-request wait resolution and the full
//! 3000-request AvgD measurement used by every Figure 5 point.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use airsched_core::bound::minimum_channels;
use airsched_core::pamad;
use airsched_sim::access::measure;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, RequestGenerator};
use airsched_workload::spec::WorkloadSpec;

fn bench_access(c: &mut Criterion) {
    let ladder = WorkloadSpec::paper_defaults()
        .distribution(GroupSizeDistribution::Uniform)
        .build()
        .expect("paper workload builds");
    let n = minimum_channels(&ladder).div_ceil(5);
    let program = pamad::schedule(&ladder, n)
        .expect("pamad runs")
        .into_program();
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
    let requests = gen.take(3000, program.cycle_len());

    c.bench_function("access/wait_from_single", |b| {
        let req = requests[0];
        b.iter(|| black_box(program.wait_from(black_box(req.page), black_box(req.arrival))));
    });

    let mut group = c.benchmark_group("access");
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("measure_3000_requests", |b| {
        b.iter(|| black_box(measure(&program, &ladder, black_box(&requests))));
    });
    group.finish();
}

fn bench_request_generation(c: &mut Criterion) {
    let ladder = WorkloadSpec::paper_defaults()
        .distribution(GroupSizeDistribution::Uniform)
        .build()
        .expect("paper workload builds");
    let mut group = c.benchmark_group("requests");
    group.throughput(Throughput::Elements(3000));
    group.bench_function("uniform_3000", |b| {
        b.iter(|| {
            let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
            black_box(gen.take(3000, 512))
        });
    });
    group.bench_function("zipf_3000", |b| {
        b.iter(|| {
            let mut gen = RequestGenerator::new(&ladder, AccessPattern::Zipf { theta: 0.95 }, 42);
            black_box(gen.take(3000, 512))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_access, bench_request_generation);
criterion_main!(benches);
