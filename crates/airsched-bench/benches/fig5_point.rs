//! End-to-end cost of one Figure 5 data point (all three algorithms
//! scheduled, placed, and measured with 3000 requests) per distribution —
//! the unit of work the `fig5` binary repeats across the channel axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use airsched_analysis::experiment::{sweep_channels, ExperimentConfig};
use airsched_core::bound::minimum_channels;
use airsched_workload::distributions::GroupSizeDistribution;

fn bench_fig5_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_point");
    group.sample_size(10);
    for dist in GroupSizeDistribution::ALL {
        let config = ExperimentConfig::paper_defaults().with_distribution(dist);
        let ladder = config.ladder().expect("workload builds");
        let fifth = minimum_channels(&ladder).div_ceil(5);
        group.bench_with_input(
            BenchmarkId::new("at_one_fifth", dist.to_string()),
            &fifth,
            |b, &n| b.iter(|| black_box(sweep_channels(&config, [n]).expect("sweep runs"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_point);
criterion_main!(benches);
