//! Scheduler micro-benchmarks at full paper scale (n = 1000, h = 8):
//! SUSC construction, PAMAD frequency derivation and placement, the OPT
//! structured search, and m-PB — each at a scarce, a 1/5, and the minimum
//! channel budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::{mpb, opt, pamad, susc};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

fn paper_ladder() -> airsched_core::group::GroupLadder {
    WorkloadSpec::paper_defaults()
        .distribution(GroupSizeDistribution::Uniform)
        .build()
        .expect("paper workload builds")
}

fn bench_susc(c: &mut Criterion) {
    let ladder = paper_ladder();
    let min = minimum_channels(&ladder);
    c.bench_function("susc/minimum_channels", |b| {
        b.iter(|| black_box(minimum_channels(black_box(&ladder))));
    });
    c.bench_function("susc/schedule_at_minimum", |b| {
        b.iter(|| black_box(susc::schedule(black_box(&ladder), min).expect("valid")));
    });
    c.bench_function("susc/schedule_fast_at_minimum", |b| {
        b.iter(|| black_box(susc::schedule_fast(black_box(&ladder), min).expect("valid")));
    });
}

fn bench_pamad(c: &mut Criterion) {
    let ladder = paper_ladder();
    let min = minimum_channels(&ladder);
    let budgets = [1u32, min.div_ceil(5), min - 1];
    let mut group = c.benchmark_group("pamad");
    for &n in &budgets {
        group.bench_with_input(BenchmarkId::new("derive_frequencies", n), &n, |b, &n| {
            b.iter(|| {
                black_box(pamad::derive_frequencies(
                    black_box(&ladder),
                    n,
                    Weighting::PaperEq2,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("schedule_full", n), &n, |b, &n| {
            b.iter(|| black_box(pamad::schedule(black_box(&ladder), n).expect("pamad runs")));
        });
    }
    group.finish();
}

fn bench_opt(c: &mut Criterion) {
    let ladder = paper_ladder();
    let min = minimum_channels(&ladder);
    let mut group = c.benchmark_group("opt");
    for &n in &[1u32, min.div_ceil(5), min - 1] {
        group.bench_with_input(BenchmarkId::new("search_r_structured", n), &n, |b, &n| {
            b.iter(|| {
                black_box(opt::search_r_structured(
                    black_box(&ladder),
                    n,
                    Weighting::PaperEq2,
                ))
            });
        });
    }
    group.finish();
}

fn bench_mpb(c: &mut Criterion) {
    let ladder = paper_ladder();
    let min = minimum_channels(&ladder);
    let n = min.div_ceil(5);
    c.bench_function("mpb/schedule_at_fifth", |b| {
        b.iter(|| black_box(mpb::schedule(black_box(&ladder), n).expect("mpb runs")));
    });
}

criterion_group!(benches, bench_susc, bench_pamad, bench_opt, bench_mpb);
criterion_main!(benches);
