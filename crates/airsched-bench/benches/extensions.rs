//! Micro-benchmarks of the extension modules: the drop baseline, online
//! scheduling churn, text serialization, the discrete-event simulation, and
//! lossy measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use airsched_core::bound::minimum_channels;
use airsched_core::dropping::{schedule_with_drops, DropPolicy};
use airsched_core::dynamic::OnlineScheduler;
use airsched_core::pamad;
use airsched_core::textio::{parse_program, write_program};
use airsched_core::types::PageId;
use airsched_sim::lossy::{measure_lossy, LossModel};
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, RequestGenerator};
use airsched_workload::spec::WorkloadSpec;

fn paper_ladder() -> airsched_core::group::GroupLadder {
    WorkloadSpec::paper_defaults()
        .distribution(GroupSizeDistribution::Uniform)
        .build()
        .expect("paper workload builds")
}

fn bench_dropping(c: &mut Criterion) {
    let ladder = paper_ladder();
    let n = minimum_channels(&ladder).div_ceil(5);
    c.bench_function("dropping/tightest_first_at_fifth", |b| {
        b.iter(|| {
            black_box(
                schedule_with_drops(black_box(&ladder), n, DropPolicy::TightestFirst)
                    .expect("drop baseline runs"),
            )
        });
    });
}

fn bench_online(c: &mut Criterion) {
    let ladder = paper_ladder();
    let n = minimum_channels(&ladder);
    c.bench_function("online/admit_full_paper_ladder", |b| {
        b.iter(|| {
            let mut sched = OnlineScheduler::new(n, ladder.max_time()).unwrap();
            for (page, group) in ladder.pages() {
                sched
                    .add_page(page, ladder.time_of(group).slots())
                    .expect("fits at the minimum");
            }
            black_box(sched)
        });
    });
    c.bench_function("online/remove_one_page", |b| {
        let mut sched = OnlineScheduler::new(n, ladder.max_time()).unwrap();
        for (page, group) in ladder.pages() {
            sched
                .add_page(page, ladder.time_of(group).slots())
                .expect("fits");
        }
        b.iter_batched(
            || sched.clone(),
            |mut s| {
                s.remove_page(PageId::new(0)).unwrap();
                black_box(s)
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_textio(c: &mut Criterion) {
    let ladder = paper_ladder();
    let n = minimum_channels(&ladder).div_ceil(5);
    let program = pamad::schedule(&ladder, n).unwrap().into_program();
    let text = write_program(&program);
    c.bench_function("textio/write_paper_program", |b| {
        b.iter(|| black_box(write_program(black_box(&program))));
    });
    c.bench_function("textio/parse_paper_program", |b| {
        b.iter(|| black_box(parse_program(black_box(&text)).expect("own output parses")));
    });
}

fn bench_des(c: &mut Criterion) {
    let ladder = paper_ladder();
    let n = minimum_channels(&ladder).div_ceil(5);
    let program = pamad::schedule(&ladder, n).unwrap().into_program();
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
    let requests = gen.take(3000, program.cycle_len() * 10);
    let sim = Simulation::new(&program, &ladder, SimConfig::default());
    c.bench_function("des/run_3000_requests", |b| {
        b.iter(|| black_box(sim.run(black_box(&requests))));
    });
}

fn bench_lossy(c: &mut Criterion) {
    let ladder = paper_ladder();
    let n = minimum_channels(&ladder).div_ceil(5);
    let program = pamad::schedule(&ladder, n).unwrap().into_program();
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
    let requests = gen.take(3000, program.cycle_len());
    c.bench_function("lossy/measure_3000_at_30pct", |b| {
        b.iter(|| {
            black_box(measure_lossy(
                &program,
                &ladder,
                black_box(&requests),
                LossModel::with_loss(0.3),
                7,
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_dropping,
    bench_online,
    bench_textio,
    bench_des,
    bench_lossy
);
criterion_main!(benches);
