//! System-level benchmarks: station tick throughput, wire encode/decode,
//! and the branch-and-bound OPT against the plain full search.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use airsched_core::delay::Weighting;
use airsched_core::group::GroupLadder;
use airsched_core::opt::{search_full, search_full_bnb, OptConfig};
use airsched_core::susc;
use airsched_core::types::PageId;
use airsched_proto::transmitter::{DebugPayloads, FrameStream};
use airsched_server::Station;

fn bench_station(c: &mut Criterion) {
    // A loaded station: 64 pages across four tiers on 8 channels.
    let build = || {
        let mut station = Station::new(8, 16).unwrap();
        let mut id = 0u32;
        for &(t, count) in &[(2u64, 4u32), (4, 8), (8, 16), (16, 24)] {
            for _ in 0..count {
                station.publish(PageId::new(id), t).unwrap();
                id += 1;
            }
        }
        station
    };
    let mut group = c.benchmark_group("station");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("tick_1024_with_subscribers", |b| {
        b.iter_batched(
            || {
                let mut s = build();
                for k in 0..52u32 {
                    s.subscribe(PageId::new(k)).unwrap();
                }
                s
            },
            |mut s| black_box(s.run(1024)),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
    let program = susc::schedule(&ladder, 4).unwrap();
    let frames: Vec<_> = FrameStream::new(&program, DebugPayloads)
        .take(256)
        .collect();
    let wire: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();

    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("encode_256_frames", |b| {
        b.iter(|| {
            for f in &frames {
                black_box(f.encode());
            }
        });
    });
    group.bench_function("decode_256_frames", |b| {
        b.iter(|| black_box(airsched_proto::frame::decode_stream(black_box(&wire))));
    });
    group.finish();
}

fn bench_opt_search(c: &mut Criterion) {
    let ladder = GroupLadder::geometric(2, 2, &[6, 8, 10, 4]).unwrap();
    let config = OptConfig {
        enumeration_limit: 1 << 26,
        ..OptConfig::default()
    };
    let mut group = c.benchmark_group("opt_full_space");
    group.sample_size(10);
    group.bench_function("plain_enumeration", |b| {
        b.iter(|| black_box(search_full(black_box(&ladder), 3, config).expect("fits limit")));
    });
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| black_box(search_full_bnb(black_box(&ladder), 3, config)));
    });
    let _ = Weighting::PaperEq2;
    group.finish();
}

criterion_group!(benches, bench_station, bench_wire, bench_opt_search);
criterion_main!(benches);
