//! Client request generation.
//!
//! A *request* models one client tuning in at some instant and wanting one
//! page (the paper: "every access of a client is only one data page"). The
//! generator is fully deterministic given a seed, so every figure in the
//! bench harness is reproducible bit for bit.

use airsched_core::group::GroupLadder;
use airsched_core::types::PageId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// How requests choose their page.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AccessPattern {
    /// Every page equally likely (`1/n`) — the paper's assumption.
    #[default]
    Uniform,
    /// Zipf by page id (page 0 hottest) with the given exponent.
    Zipf {
        /// The skew exponent; 0 degenerates to uniform.
        theta: f64,
    },
}

/// One client request: which page, and the slot at whose start the client
/// tunes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// The requested page.
    pub page: PageId,
    /// Tune-in instant, as a slot index (taken modulo the program cycle by
    /// consumers).
    pub arrival: u64,
}

/// A request whose tune-in instant is a cycle *phase* in `[0, 1)` rather
/// than a slot index.
///
/// Broadcast programs built by different algorithms for the same workload
/// have different cycle lengths; to compare them on *identical* client
/// behaviour, draw one normalized stream and [`materialize`] it per
/// program.
///
/// [`materialize`]: NormalizedRequest::materialize
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedRequest {
    /// The requested page.
    pub page: PageId,
    /// Tune-in phase within the cycle, in `[0, 1)`.
    pub phase: f64,
}

impl NormalizedRequest {
    /// Converts the phase into a concrete slot arrival for a cycle of
    /// `cycle_len` slots.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_len == 0`.
    #[must_use]
    pub fn materialize(self, cycle_len: u64) -> Request {
        assert!(cycle_len > 0, "cycle length must be positive");
        let slot = ((self.phase * cycle_len as f64) as u64).min(cycle_len - 1);
        Request {
            page: self.page,
            arrival: slot,
        }
    }
}

/// Deterministic request-stream generator.
///
/// # Examples
///
/// ```
/// use airsched_core::group::GroupLadder;
/// use airsched_workload::requests::{AccessPattern, RequestGenerator};
///
/// let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
/// let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
/// let reqs = gen.take(3000, 9); // 3000 requests over a 9-slot cycle
/// assert_eq!(reqs.len(), 3000);
/// assert!(reqs.iter().all(|r| r.arrival < 9));
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    total_pages: u32,
    pattern: AccessPattern,
    zipf: Option<Zipf>,
    rng: SmallRng,
    seed: u64,
}

impl RequestGenerator {
    /// Creates a generator over `ladder`'s pages with the given pattern and
    /// seed.
    ///
    /// # Panics
    ///
    /// Panics if a Zipf pattern carries a negative or non-finite `theta`.
    #[must_use]
    pub fn new(ladder: &GroupLadder, pattern: AccessPattern, seed: u64) -> Self {
        let total_pages =
            u32::try_from(ladder.total_pages()).expect("ladder page count fits in u32");
        let zipf = match pattern {
            AccessPattern::Uniform => None,
            AccessPattern::Zipf { theta } => Some(Zipf::new(total_pages as usize, theta)),
        };
        Self {
            total_pages,
            pattern,
            zipf,
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed the generator was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The access pattern in use.
    #[must_use]
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Draws the next request, with the arrival uniform over
    /// `0 .. cycle_len`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_len == 0`.
    pub fn next_request(&mut self, cycle_len: u64) -> Request {
        assert!(cycle_len > 0, "cycle length must be positive");
        let page_index = match &self.zipf {
            None => self.rng.gen_range(0..self.total_pages),
            Some(z) => u32::try_from(z.sample(&mut self.rng)).expect("page index fits in u32"),
        };
        Request {
            page: PageId::new(page_index),
            arrival: self.rng.gen_range(0..cycle_len),
        }
    }

    /// Draws `count` requests over a `cycle_len`-slot cycle.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_len == 0`.
    pub fn take(&mut self, count: usize, cycle_len: u64) -> Vec<Request> {
        (0..count).map(|_| self.next_request(cycle_len)).collect()
    }

    /// Draws `count` requests with Poisson arrivals: inter-arrival gaps
    /// are exponential with mean `1 / rate` slots, accumulated from time
    /// zero and rounded to whole slots. Arrivals are non-decreasing —
    /// the natural input for the discrete-event simulation, where arrival
    /// *rate* (not phase) drives on-demand congestion.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn take_poisson(&mut self, count: usize, rate: f64) -> Vec<Request> {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive and finite"
        );
        let mut clock = 0.0f64;
        (0..count)
            .map(|_| {
                // Inverse-transform sampling of Exp(rate).
                let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                clock += -u.ln() / rate;
                let page_index = match &self.zipf {
                    None => self.rng.gen_range(0..self.total_pages),
                    Some(z) => {
                        u32::try_from(z.sample(&mut self.rng)).expect("page index fits in u32")
                    }
                };
                Request {
                    page: PageId::new(page_index),
                    arrival: clock as u64,
                }
            })
            .collect()
    }

    /// Draws `count` requests with *bursty* (on/off) arrivals: the stream
    /// alternates between an ON state arriving at `base_rate *
    /// burst_factor` and an OFF state arriving at `base_rate`, switching
    /// state after each arrival with probability `p_switch` (geometric
    /// state durations). `burst_factor = 1` degenerates to
    /// [`RequestGenerator::take_poisson`].
    ///
    /// Flash-crowd behaviour like this is what stresses the on-demand
    /// channel in the discrete-event simulation: the mean rate matches a
    /// Poisson stream, but the peaks overload queues a mean-rate analysis
    /// would call healthy.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate` or `burst_factor` is not finite and positive,
    /// or `p_switch` is outside `[0, 1]`.
    pub fn take_bursty(
        &mut self,
        count: usize,
        base_rate: f64,
        burst_factor: f64,
        p_switch: f64,
    ) -> Vec<Request> {
        assert!(
            base_rate.is_finite() && base_rate > 0.0,
            "base rate must be positive and finite"
        );
        assert!(
            burst_factor.is_finite() && burst_factor > 0.0,
            "burst factor must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&p_switch),
            "switch probability must be in [0, 1]"
        );
        let mut clock = 0.0f64;
        let mut bursting = false;
        (0..count)
            .map(|_| {
                let rate = if bursting {
                    base_rate * burst_factor
                } else {
                    base_rate
                };
                let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                clock += -u.ln() / rate;
                if self.rng.gen::<f64>() < p_switch {
                    bursting = !bursting;
                }
                let page_index = match &self.zipf {
                    None => self.rng.gen_range(0..self.total_pages),
                    Some(z) => {
                        u32::try_from(z.sample(&mut self.rng)).expect("page index fits in u32")
                    }
                };
                Request {
                    page: PageId::new(page_index),
                    arrival: clock as u64,
                }
            })
            .collect()
    }

    /// Draws one cycle-length-agnostic request (phase in `[0, 1)`).
    pub fn next_normalized(&mut self) -> NormalizedRequest {
        let page_index = match &self.zipf {
            None => self.rng.gen_range(0..self.total_pages),
            Some(z) => u32::try_from(z.sample(&mut self.rng)).expect("page index fits in u32"),
        };
        NormalizedRequest {
            page: PageId::new(page_index),
            phase: self.rng.gen::<f64>(),
        }
    }

    /// Draws `count` normalized requests.
    pub fn take_normalized(&mut self, count: usize) -> Vec<NormalizedRequest> {
        (0..count).map(|_| self.next_normalized()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> GroupLadder {
        GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let l = ladder();
        let a = RequestGenerator::new(&l, AccessPattern::Uniform, 7).take(100, 9);
        let b = RequestGenerator::new(&l, AccessPattern::Uniform, 7).take(100, 9);
        assert_eq!(a, b);
        let c = RequestGenerator::new(&l, AccessPattern::Uniform, 8).take(100, 9);
        assert_ne!(a, c);
    }

    #[test]
    fn pages_and_arrivals_in_range() {
        let l = ladder();
        let reqs = RequestGenerator::new(&l, AccessPattern::Uniform, 1).take(2000, 13);
        assert!(reqs.iter().all(|r| r.page.index() < 11));
        assert!(reqs.iter().all(|r| r.arrival < 13));
        // All pages eventually requested.
        let mut seen = vec![false; 11];
        for r in &reqs {
            seen[r.page.index() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let l = GroupLadder::new(vec![(2, 10)]).unwrap();
        let reqs = RequestGenerator::new(&l, AccessPattern::Uniform, 3).take(50_000, 4);
        let mut counts = [0u32; 10];
        for r in &reqs {
            counts[r.page.index() as usize] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / 50_000.0;
            assert!((freq - 0.1).abs() < 0.01, "{counts:?}");
        }
    }

    #[test]
    fn zipf_concentrates_on_low_ids() {
        let l = GroupLadder::new(vec![(2, 10)]).unwrap();
        let reqs = RequestGenerator::new(&l, AccessPattern::Zipf { theta: 1.2 }, 3).take(20_000, 4);
        let mut counts = [0u32; 10];
        for r in &reqs {
            counts[r.page.index() as usize] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }

    #[test]
    fn accessors() {
        let gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 5);
        assert_eq!(gen.seed(), 5);
        assert_eq!(gen.pattern(), AccessPattern::Uniform);
        assert_eq!(AccessPattern::default(), AccessPattern::Uniform);
    }

    #[test]
    #[should_panic(expected = "cycle length")]
    fn zero_cycle_panics() {
        let mut gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 5);
        let _ = gen.next_request(0);
    }

    #[test]
    fn poisson_arrivals_are_monotone_with_right_rate() {
        let l = ladder();
        let rate = 0.25; // one arrival every 4 slots on average
        let reqs = RequestGenerator::new(&l, AccessPattern::Uniform, 21).take_poisson(20_000, rate);
        assert_eq!(reqs.len(), 20_000);
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        let span = reqs.last().unwrap().arrival as f64;
        let measured_rate = 20_000.0 / span;
        assert!(
            (measured_rate - rate).abs() < 0.01,
            "measured rate {measured_rate}"
        );
        // Pages still drawn from the workload.
        assert!(reqs.iter().all(|r| r.page.index() < 11));
    }

    #[test]
    fn bursty_arrivals_are_monotone_and_spikier_than_poisson() {
        let l = ladder();
        let count = 30_000;
        let poisson = RequestGenerator::new(&l, AccessPattern::Uniform, 8).take_poisson(count, 0.5);
        let bursty = RequestGenerator::new(&l, AccessPattern::Uniform, 8)
            .take_bursty(count, 0.25, 8.0, 0.02);
        for w in bursty.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        // Burstiness: variance of per-window arrival counts, normalized by
        // the mean (index of dispersion), is clearly higher for the bursty
        // stream.
        let dispersion = |reqs: &[Request]| -> f64 {
            let horizon = reqs.last().unwrap().arrival + 1;
            let window = (horizon / 200).max(1);
            let mut counts = vec![0f64; (horizon / window + 1) as usize];
            for r in reqs {
                counts[(r.arrival / window) as usize] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
            var / mean
        };
        let d_poisson = dispersion(&poisson);
        let d_bursty = dispersion(&bursty);
        assert!(
            d_bursty > d_poisson * 2.0,
            "bursty dispersion {d_bursty} vs poisson {d_poisson}"
        );
    }

    #[test]
    fn bursty_factor_one_is_poissonlike() {
        let l = ladder();
        let reqs =
            RequestGenerator::new(&l, AccessPattern::Uniform, 9).take_bursty(5000, 0.5, 1.0, 0.1);
        let span = reqs.last().unwrap().arrival as f64;
        let rate = 5000.0 / span;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "switch probability")]
    fn bursty_rejects_bad_switch_probability() {
        let mut gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 1);
        let _ = gen.take_bursty(10, 1.0, 2.0, 1.5);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let l = ladder();
        let a = RequestGenerator::new(&l, AccessPattern::Uniform, 3).take_poisson(100, 0.5);
        let b = RequestGenerator::new(&l, AccessPattern::Uniform, 3).take_poisson(100, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn poisson_rejects_bad_rate() {
        let mut gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 1);
        let _ = gen.take_poisson(10, 0.0);
    }

    #[test]
    fn normalized_requests_materialize_within_cycle() {
        let mut gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 9);
        let normalized = gen.take_normalized(1000);
        for cycle in [1u64, 9, 13, 512] {
            for nr in &normalized {
                let r = nr.materialize(cycle);
                assert!(r.arrival < cycle);
                assert_eq!(r.page, nr.page);
            }
        }
    }

    #[test]
    fn normalized_same_pages_across_cycles() {
        // The whole point: one stream, several programs, same page choices.
        let mut gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 10);
        let normalized = gen.take_normalized(50);
        let a: Vec<_> = normalized.iter().map(|nr| nr.materialize(9).page).collect();
        let b: Vec<_> = normalized
            .iter()
            .map(|nr| nr.materialize(25).page)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn phases_are_in_unit_interval() {
        let mut gen = RequestGenerator::new(&ladder(), AccessPattern::Uniform, 11);
        for nr in gen.take_normalized(500) {
            assert!((0.0..1.0).contains(&nr.phase));
        }
    }

    #[test]
    #[should_panic(expected = "cycle length")]
    fn materialize_zero_cycle_panics() {
        let nr = NormalizedRequest {
            page: PageId::new(0),
            phase: 0.5,
        };
        let _ = nr.materialize(0);
    }
}
