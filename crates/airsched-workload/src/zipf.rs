//! Zipf-distributed page access sampling.
//!
//! The paper's evaluation uses uniform page access (`prob = 1/n`), but real
//! broadcast workloads are famously skewed (Broadcast Disks, Acharya et
//! al.), so the request generator also supports a Zipf law:
//! `P(rank k) ∝ 1 / k^theta` for `k = 1..n`. `theta = 0` degenerates to
//! uniform.

use rand::Rng;

/// A precomputed Zipf sampler over ranks `0 .. n-1` (rank 0 hottest).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Builds a sampler for `n` items with exponent `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or `theta` is negative or not finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_workload::zipf::Zipf;
    ///
    /// let z = Zipf::new(100, 0.8);
    /// assert_eq!(z.len(), 100);
    /// assert!(z.probability(0) > z.probability(99));
    /// ```
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cumulative.last_mut().expect("n > 0") = 1.0;
        Self { cumulative, theta }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never: construction requires `n > 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent `theta`.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The probability mass of rank `rank` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn probability(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[rank] - self.cumulative[rank - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative is finite"))
        {
            Ok(idx) | Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 0.95, 2.0] {
            let z = Zipf::new(50, theta);
            let sum: f64 = (0..50).map(|k| z.probability(k)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta={theta}: {sum}");
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.probability(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mild = Zipf::new(100, 0.5);
        let harsh = Zipf::new(100, 1.5);
        assert!(harsh.probability(0) > mild.probability(0));
        assert!(harsh.probability(99) < mild.probability(99));
    }

    #[test]
    fn sampling_matches_mass_roughly() {
        let z = Zipf::new(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = f64::from(count) / f64::from(draws);
            let expect = z.probability(k);
            assert!((freq - expect).abs() < 0.01, "rank {k}: {freq} vs {expect}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 0.8);
        let a: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..32).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..32).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_item_always_rank_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_panics() {
        let _ = Zipf::new(5, -1.0);
    }
}
