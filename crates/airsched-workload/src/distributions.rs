//! Group-size distributions (the paper's Figure 3).
//!
//! The broadcast data generator assigns `n` pages to `h` groups following
//! one of four shapes: *normal*, *S-skewed*, *L-skewed*, and *uniform*. The
//! paper shows the shapes as bar charts without numbers; the parametric
//! forms here reproduce those shapes deterministically:
//!
//! * **uniform** — equal counts per group;
//! * **normal** — a discrete bell centred on the middle group;
//! * **L-skewed** — mass concentrated at the *low* end (most pages have
//!   tight expected times), decaying geometrically — the letter "L" read as
//!   the silhouette of the histogram;
//! * **S-skewed** — the mirror image: mass concentrated at the *high* end
//!   (most pages are relaxed), growing geometrically.
//!
//! Counts are apportioned by the largest-remainder method so they always
//! sum to exactly `n`, with every group receiving at least one page.

use core::fmt;

/// The four group-size shapes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupSizeDistribution {
    /// Equal page counts in every group.
    Uniform,
    /// Discrete bell centred on the middle group (sigma = h/4).
    Normal,
    /// Geometrically decaying from the first (tightest) group.
    LSkewed,
    /// Geometrically growing toward the last (most relaxed) group.
    SSkewed,
}

impl GroupSizeDistribution {
    /// All four variants, in the paper's listing order.
    pub const ALL: [Self; 4] = [Self::Normal, Self::SSkewed, Self::LSkewed, Self::Uniform];

    /// Parses the names used by the CLI and bench harness.
    ///
    /// Accepts `uniform`, `normal`, `lskew`/`l-skewed`/`lskewed`, and
    /// `sskew`/`s-skewed`/`sskewed` (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "uniform" => Some(Self::Uniform),
            "normal" => Some(Self::Normal),
            "lskew" | "l-skewed" | "lskewed" | "l" => Some(Self::LSkewed),
            "sskew" | "s-skewed" | "sskewed" | "s" => Some(Self::SSkewed),
            _ => None,
        }
    }

    /// The per-group page counts for `n` total pages over `h` groups.
    ///
    /// Counts sum to exactly `n` and every group gets at least one page.
    ///
    /// # Panics
    ///
    /// Panics if `h == 0` or `n < h` (cannot give every group a page).
    ///
    /// # Examples
    ///
    /// ```
    /// use airsched_workload::distributions::GroupSizeDistribution;
    ///
    /// let counts = GroupSizeDistribution::Uniform.page_counts(8, 1000);
    /// assert_eq!(counts, vec![125; 8]);
    ///
    /// let skew = GroupSizeDistribution::LSkewed.page_counts(8, 1000);
    /// assert_eq!(skew.iter().sum::<u64>(), 1000);
    /// assert!(skew[0] > skew[7]);
    /// ```
    #[must_use]
    pub fn page_counts(self, h: usize, n: u64) -> Vec<u64> {
        assert!(h > 0, "need at least one group");
        assert!(
            n >= h as u64,
            "need at least one page per group ({n} pages for {h} groups)"
        );
        let weights = self.weights(h);
        apportion(&weights, n)
    }

    /// The unnormalized shape weights for `h` groups.
    fn weights(self, h: usize) -> Vec<f64> {
        match self {
            Self::Uniform => vec![1.0; h],
            Self::Normal => {
                let mu = (h as f64 - 1.0) / 2.0;
                let sigma = (h as f64 / 4.0).max(0.5);
                (0..h)
                    .map(|i| {
                        let z = (i as f64 - mu) / sigma;
                        (-0.5 * z * z).exp()
                    })
                    .collect()
            }
            Self::LSkewed => (0..h).map(|i| DECAY.powi(i as i32)).collect(),
            Self::SSkewed => (0..h).map(|i| DECAY.powi((h - 1 - i) as i32)).collect(),
        }
    }
}

/// Geometric decay factor for the skewed shapes.
const DECAY: f64 = 0.6;

impl fmt::Display for GroupSizeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Uniform => write!(f, "uniform"),
            Self::Normal => write!(f, "normal"),
            Self::LSkewed => write!(f, "L-skewed"),
            Self::SSkewed => write!(f, "S-skewed"),
        }
    }
}

/// Largest-remainder apportionment of `n` units over `weights`, with a
/// one-unit floor per bucket.
fn apportion(weights: &[f64], n: u64) -> Vec<u64> {
    let h = weights.len() as u64;
    let total: f64 = weights.iter().sum();
    // Reserve the one-page floor, apportion the rest proportionally.
    let spare = n - h;
    let mut counts: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let exact = spare as f64 * w / total;
        let floor = exact.floor() as u64;
        counts.push(1 + floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    // Distribute what the floors left over to the largest remainders.
    let mut leftover = spare - assigned;
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(core::cmp::Ordering::Equal));
    let mut idx = 0;
    while leftover > 0 {
        counts[remainders[idx % remainders.len()].0] += 1;
        leftover -= 1;
        idx += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_splits_evenly() {
        assert_eq!(
            GroupSizeDistribution::Uniform.page_counts(8, 1000),
            vec![125; 8]
        );
        // Non-divisible totals still sum correctly.
        let c = GroupSizeDistribution::Uniform.page_counts(3, 10);
        assert_eq!(c.iter().sum::<u64>(), 10);
        assert!(c.iter().all(|&x| (3..=4).contains(&x)));
    }

    #[test]
    fn all_distributions_sum_to_n_with_floor() {
        for dist in GroupSizeDistribution::ALL {
            for (h, n) in [(8usize, 1000u64), (5, 17), (1, 3), (8, 8), (3, 1000)] {
                let counts = dist.page_counts(h, n);
                assert_eq!(counts.len(), h, "{dist} h={h}");
                assert_eq!(counts.iter().sum::<u64>(), n, "{dist} h={h} n={n}");
                assert!(counts.iter().all(|&c| c >= 1), "{dist}: {counts:?}");
            }
        }
    }

    #[test]
    fn normal_peaks_in_the_middle() {
        let c = GroupSizeDistribution::Normal.page_counts(8, 1000);
        let peak = c.iter().max().unwrap();
        assert!(c[3] == *peak || c[4] == *peak, "{c:?}");
        assert!(c[0] < c[3] && c[7] < c[4], "{c:?}");
        // Roughly symmetric.
        assert!((c[0] as i64 - c[7] as i64).abs() <= 2, "{c:?}");
    }

    #[test]
    fn l_skew_decreases_s_skew_increases() {
        let l = GroupSizeDistribution::LSkewed.page_counts(8, 1000);
        for w in l.windows(2) {
            assert!(w[0] >= w[1], "{l:?}");
        }
        let s = GroupSizeDistribution::SSkewed.page_counts(8, 1000);
        for w in s.windows(2) {
            assert!(w[0] <= w[1], "{s:?}");
        }
        // The two skews are mirror images.
        let mut rev = s.clone();
        rev.reverse();
        assert_eq!(l, rev);
    }

    #[test]
    fn parse_accepts_cli_names() {
        use GroupSizeDistribution::*;
        assert_eq!(GroupSizeDistribution::parse("uniform"), Some(Uniform));
        assert_eq!(GroupSizeDistribution::parse("NORMAL"), Some(Normal));
        assert_eq!(GroupSizeDistribution::parse("lskew"), Some(LSkewed));
        assert_eq!(GroupSizeDistribution::parse("L-Skewed"), Some(LSkewed));
        assert_eq!(GroupSizeDistribution::parse("sskew"), Some(SSkewed));
        assert_eq!(GroupSizeDistribution::parse("bogus"), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(GroupSizeDistribution::LSkewed.to_string(), "L-skewed");
        assert_eq!(GroupSizeDistribution::Uniform.to_string(), "uniform");
    }

    #[test]
    #[should_panic(expected = "at least one page per group")]
    fn too_few_pages_panics() {
        let _ = GroupSizeDistribution::Uniform.page_counts(10, 5);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        let _ = GroupSizeDistribution::Uniform.page_counts(0, 5);
    }

    #[test]
    fn single_group_takes_everything() {
        for dist in GroupSizeDistribution::ALL {
            assert_eq!(dist.page_counts(1, 42), vec![42]);
        }
    }

    #[test]
    fn deterministic() {
        for dist in GroupSizeDistribution::ALL {
            assert_eq!(dist.page_counts(8, 1000), dist.page_counts(8, 1000));
        }
    }
}
