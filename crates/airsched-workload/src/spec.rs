//! Workload specifications: the paper's Figure 4 parameter table as a
//! builder.

use airsched_core::error::ScheduleError;
use airsched_core::group::GroupLadder;

use crate::distributions::GroupSizeDistribution;

/// A declarative workload description that builds a [`GroupLadder`].
///
/// Defaults mirror the paper's Figure 4: `n = 1000` pages, `h = 8` groups,
/// expected times `4, 8, ..., 512` (base 4, ratio 2), and a selectable group
/// size distribution.
///
/// # Examples
///
/// ```
/// use airsched_workload::distributions::GroupSizeDistribution;
/// use airsched_workload::spec::WorkloadSpec;
///
/// // The paper's defaults with the uniform distribution.
/// let ladder = WorkloadSpec::paper_defaults()
///     .distribution(GroupSizeDistribution::Uniform)
///     .build()?;
/// assert_eq!(ladder.times(), &[4, 8, 16, 32, 64, 128, 256, 512]);
/// assert_eq!(ladder.total_pages(), 1000);
/// # Ok::<(), airsched_core::error::ScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    total_pages: u64,
    groups: usize,
    base_time: u64,
    time_ratio: u64,
    distribution: GroupSizeDistribution,
}

impl WorkloadSpec {
    /// The paper's Figure 4 defaults (normal distribution preselected; use
    /// [`WorkloadSpec::distribution`] to switch).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            total_pages: 1000,
            groups: 8,
            base_time: 4,
            time_ratio: 2,
            distribution: GroupSizeDistribution::Normal,
        }
    }

    /// Starts a spec with explicit structure.
    #[must_use]
    pub fn new(total_pages: u64, groups: usize, base_time: u64, time_ratio: u64) -> Self {
        Self {
            total_pages,
            groups,
            base_time,
            time_ratio,
            distribution: GroupSizeDistribution::Uniform,
        }
    }

    /// Sets the number of pages `n`.
    #[must_use]
    pub fn total_pages(mut self, n: u64) -> Self {
        self.total_pages = n;
        self
    }

    /// Sets the number of groups `h`.
    #[must_use]
    pub fn groups(mut self, h: usize) -> Self {
        self.groups = h;
        self
    }

    /// Sets the base expected time `t_1`.
    #[must_use]
    pub fn base_time(mut self, t1: u64) -> Self {
        self.base_time = t1;
        self
    }

    /// Sets the time ratio `c`.
    #[must_use]
    pub fn time_ratio(mut self, c: u64) -> Self {
        self.time_ratio = c;
        self
    }

    /// Sets the group-size distribution.
    #[must_use]
    pub fn distribution(mut self, d: GroupSizeDistribution) -> Self {
        self.distribution = d;
        self
    }

    /// The configured distribution.
    #[must_use]
    pub fn current_distribution(&self) -> GroupSizeDistribution {
        self.distribution
    }

    /// Materializes the [`GroupLadder`].
    ///
    /// # Errors
    ///
    /// Propagates ladder validation errors (e.g. a zero base time).
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0` or `total_pages < groups` (cannot give every
    /// group a page) — the same contract as
    /// [`GroupSizeDistribution::page_counts`].
    pub fn build(&self) -> Result<GroupLadder, ScheduleError> {
        let counts = self.distribution.page_counts(self.groups, self.total_pages);
        GroupLadder::geometric(self.base_time, self.time_ratio, &counts)
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airsched_core::bound::minimum_channels;

    #[test]
    fn paper_defaults_shape() {
        let spec = WorkloadSpec::paper_defaults();
        let ladder = spec.build().unwrap();
        assert_eq!(ladder.group_count(), 8);
        assert_eq!(ladder.times(), &[4, 8, 16, 32, 64, 128, 256, 512]);
        assert_eq!(ladder.total_pages(), 1000);
    }

    #[test]
    fn all_four_distributions_build_and_need_tens_of_channels() {
        for dist in GroupSizeDistribution::ALL {
            let ladder = WorkloadSpec::paper_defaults()
                .distribution(dist)
                .build()
                .unwrap();
            let n = minimum_channels(&ladder);
            // The paper's Figure 5 x-axes end between ~40 and ~130 channels
            // depending on the distribution; sanity-check the magnitude.
            assert!((10..=250).contains(&n), "{dist}: {n}");
        }
    }

    #[test]
    fn builder_methods_chain() {
        let ladder = WorkloadSpec::new(100, 4, 2, 2)
            .total_pages(200)
            .groups(5)
            .base_time(3)
            .time_ratio(3)
            .distribution(GroupSizeDistribution::LSkewed)
            .build()
            .unwrap();
        assert_eq!(ladder.group_count(), 5);
        assert_eq!(ladder.times(), &[3, 9, 27, 81, 243]);
        assert_eq!(ladder.total_pages(), 200);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(WorkloadSpec::default(), WorkloadSpec::paper_defaults());
    }

    #[test]
    fn distribution_accessor() {
        let spec = WorkloadSpec::paper_defaults().distribution(GroupSizeDistribution::SSkewed);
        assert_eq!(spec.current_distribution(), GroupSizeDistribution::SSkewed);
    }
}
