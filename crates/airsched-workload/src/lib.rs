//! # airsched-workload
//!
//! Workload generation for time-constrained broadcast scheduling — the
//! *broadcast data generator* of the paper's §5 evaluation.
//!
//! * [`distributions`] — the four group-size shapes of Figure 3 (normal,
//!   S-skewed, L-skewed, uniform), deterministic and exact-sum.
//! * [`spec`] — [`spec::WorkloadSpec`], a builder embedding the Figure 4
//!   parameter defaults (`n = 1000`, `h = 8`, `t = 4 .. 512`).
//! * [`requests`] — seeded client request streams (page choice + tune-in
//!   instant), uniform or Zipf access.
//! * [`zipf`] — the Zipf sampler backing skewed access.
//!
//! ```
//! use airsched_workload::distributions::GroupSizeDistribution;
//! use airsched_workload::requests::{AccessPattern, RequestGenerator};
//! use airsched_workload::spec::WorkloadSpec;
//!
//! let ladder = WorkloadSpec::paper_defaults()
//!     .distribution(GroupSizeDistribution::LSkewed)
//!     .build()?;
//! let mut requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
//! let batch = requests.take(3000, 512);
//! assert_eq!(batch.len(), 3000);
//! # Ok::<(), airsched_core::error::ScheduleError>(())
//! ```

pub mod distributions;
pub mod requests;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use distributions::GroupSizeDistribution;
pub use requests::{AccessPattern, NormalizedRequest, Request, RequestGenerator};
pub use spec::WorkloadSpec;
pub use trace::{parse_trace, write_trace};
