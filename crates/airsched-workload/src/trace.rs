//! Request-trace serialization: record and replay client request streams.
//!
//! The paper's evaluation draws 3000 synthetic requests; real deployments
//! measure against recorded traces. The format is one request per line,
//! `arrival page`, with `#` comments and blank lines ignored:
//!
//! ```text
//! # arrival page
//! 0 4
//! 3 17
//! ```

use core::fmt;

use airsched_core::types::PageId;

use crate::requests::Request;

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes requests to the trace format.
///
/// # Examples
///
/// ```
/// use airsched_core::types::PageId;
/// use airsched_workload::requests::Request;
/// use airsched_workload::trace::{parse_trace, write_trace};
///
/// let requests = vec![Request { page: PageId::new(4), arrival: 0 }];
/// let text = write_trace(&requests);
/// assert_eq!(parse_trace(&text).unwrap(), requests);
/// ```
#[must_use]
pub fn write_trace(requests: &[Request]) -> String {
    let mut out = String::from("# arrival page\n");
    for r in requests {
        out.push_str(&format!("{} {}\n", r.arrival, r.page.index()));
    }
    out
}

/// Parses the trace format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] describing the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<Request>, ParseTraceError> {
    let mut out = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(arrival), Some(page), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(ParseTraceError {
                line: line_no + 1,
                message: "expected 'arrival page'".into(),
            });
        };
        let arrival: u64 = arrival.parse().map_err(|_| ParseTraceError {
            line: line_no + 1,
            message: format!("bad arrival '{arrival}'"),
        })?;
        let page: u32 = page.parse().map_err(|_| ParseTraceError {
            line: line_no + 1,
            message: format!("bad page id '{page}'"),
        })?;
        out.push(Request {
            page: PageId::new(page),
            arrival,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::{AccessPattern, RequestGenerator};
    use airsched_core::group::GroupLadder;

    #[test]
    fn round_trips_generated_traces() {
        let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
        let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, 4).take(500, 9);
        let text = write_trace(&requests);
        assert_eq!(parse_trace(&text).unwrap(), requests);
    }

    #[test]
    fn tolerates_comments_and_blanks() {
        let text = "# header\n\n 0 1 \n# mid\n5 2\n";
        let requests = parse_trace(text).unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[1].arrival, 5);
        assert_eq!(requests[1].page, PageId::new(2));
    }

    #[test]
    fn reports_malformed_lines() {
        let err = parse_trace("0\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("expected"));
        let err = parse_trace("0 1\nx 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad arrival"));
        let err = parse_trace("0 zz\n").unwrap_err();
        assert!(err.message.contains("bad page id"));
        let err = parse_trace("1 2 3\n").unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn empty_trace_is_empty() {
        assert!(parse_trace("").unwrap().is_empty());
        assert!(parse_trace("# only comments\n").unwrap().is_empty());
    }
}
