//! Cross-algorithm and cross-crate consistency checks.

use airsched_core::bound::minimum_channels;
use airsched_core::delay::{expected_program_delay, Weighting};
use airsched_core::dynamic::OnlineScheduler;
use airsched_core::group::GroupLadder;
use airsched_core::{mpb, opt, pamad, susc, validity};
use airsched_sim::access::{exact_avg_delay, reference};
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::requests::{AccessPattern, RequestGenerator};

use proptest::prelude::*;

fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=4, 2u64..=3, prop::collection::vec(1u64..=25, 2..=5))
        .prop_map(|(t1, c, counts)| GroupLadder::geometric(t1, c, &counts).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The continuous analytic model and the exact discrete expectation
    /// agree closely on any PAMAD program (they differ only by sub-slot
    /// integration granularity).
    #[test]
    fn analytic_and_discrete_delay_agree(ladder in arb_ladder(), n in 1u32..5) {
        let program = pamad::schedule(&ladder, n).unwrap().into_program();
        let analytic = expected_program_delay(&program, &ladder).unwrap();
        let discrete = exact_avg_delay(&program, &ladder).unwrap();
        // Discrete waits round up to whole slots; the continuous model can
        // differ by at most one slot.
        prop_assert!(
            (analytic - discrete).abs() <= 1.0,
            "analytic {analytic} vs discrete {discrete}"
        );
    }

    /// At the minimum channel count SUSC is exactly zero-delay; PAMAD's
    /// even-spread placement stays small *relative to the workload's
    /// deadlines* (its Equation 8 cycle can be shorter than t_h and 100%
    /// full, so it cannot guarantee validity there — which is exactly why
    /// the paper, and our facade, use SUSC in the sufficient regime).
    #[test]
    fn susc_and_pamad_agree_at_minimum(ladder in arb_ladder()) {
        let min = minimum_channels(&ladder);
        let susc_program = susc::schedule(&ladder, min).unwrap();
        prop_assert_eq!(exact_avg_delay(&susc_program, &ladder), Some(0.0));
        let pamad_program = pamad::schedule(&ladder, min).unwrap().into_program();
        let d = exact_avg_delay(&pamad_program, &ladder).unwrap();
        let mean_t: f64 = ladder
            .times()
            .iter()
            .zip(ladder.page_counts())
            .map(|(&t, &p)| (t * p) as f64)
            .sum::<f64>()
            / ladder.total_pages() as f64;
        prop_assert!(
            d <= mean_t,
            "PAMAD at minimum: AvgD {d} vs mean expected time {mean_t}"
        );
    }

    /// The facade's SUSC region and PAMAD region partition the channel
    /// axis, and the boundary program is valid.
    #[test]
    fn facade_partitions_channel_axis(ladder in arb_ladder()) {
        let min = minimum_channels(&ladder);
        if min > 1 {
            let below = airsched_core::build_program(&ladder, min - 1).unwrap();
            prop_assert_eq!(below.algorithm(), airsched_core::Algorithm::Pamad);
        }
        let at = airsched_core::build_program(&ladder, min).unwrap();
        prop_assert_eq!(at.algorithm(), airsched_core::Algorithm::Susc);
        prop_assert!(validity::check(at.program(), &ladder).is_valid());
    }

    /// OPT's placed program never measures much worse than PAMAD's (they
    /// share the placement; only frequencies differ, and OPT's minimize the
    /// shared objective).
    #[test]
    fn opt_program_tracks_pamad_measured(ladder in arb_ladder(), n in 1u32..5) {
        let pamad_program = pamad::schedule(&ladder, n).unwrap().into_program();
        let opt_program = opt::search_r_structured(&ladder, n, Weighting::PaperEq2)
            .place(&ladder, n)
            .unwrap()
            .into_program();
        let d_pamad = exact_avg_delay(&pamad_program, &ladder).unwrap();
        let d_opt = exact_avg_delay(&opt_program, &ladder).unwrap();
        // Measured delay of OPT's frequencies should not be wildly above
        // PAMAD's. The analytic objective and the measured value diverge
        // through Algorithm 4 placement artifacts, so allow a couple of
        // slots of absolute slack on top of the relative band (both values
        // are typically a small fraction of the expected times).
        prop_assert!(
            d_opt <= d_pamad * 1.5 + 2.5,
            "OPT measured {d_opt} vs PAMAD {d_pamad}"
        );
    }

    /// Closed-form exact AvgD equals the brute-force per-arrival scan
    /// *bit-for-bit* on arbitrary valid programs — both accumulate the same
    /// integer delay total, so the f64 quotients are identical, not merely
    /// close.
    #[test]
    fn closed_form_exact_delay_matches_scan_on_programs(
        ladder in arb_ladder(),
        n in 1u32..5,
    ) {
        let program = pamad::schedule(&ladder, n).unwrap().into_program();
        prop_assert_eq!(
            exact_avg_delay(&program, &ladder),
            reference::exact_avg_delay_scan(&program, &ladder)
        );
    }

    /// Same equality on arbitrary *hand-mutilated* programs: random subsets
    /// of a page's occurrences (including dropping pages entirely, where
    /// both paths must return None) exercise invalid gap structures the
    /// schedulers never produce.
    #[test]
    fn closed_form_exact_delay_matches_scan_on_invalid_programs(
        ladder in arb_ladder(),
        keep_mask in prop::collection::vec(0u8..4, 1..64),
        drop_page in any::<bool>(),
    ) {
        use airsched_core::program::BroadcastProgram;
        use airsched_core::types::{ChannelId, GridPos, SlotIndex};

        // Rebuild a single-channel program keeping a pseudo-random subset of
        // each page's SUSC occurrences (kept ≡ keep_mask says so), possibly
        // dropping the last page entirely.
        let min = minimum_channels(&ladder);
        let source = susc::schedule(&ladder, min).unwrap();
        let cycle = source.cycle_len();
        let mut program = BroadcastProgram::new(1, cycle);
        let last_page = ladder.pages().last().unwrap().0;
        let mut placed_any = false;
        let mut dropped = false;
        for (idx, (page, _)) in ladder.pages().enumerate() {
            if drop_page && page == last_page && placed_any {
                dropped = true;
                continue;
            }
            let cols = source.occurrence_columns(page);
            for (k, &col) in cols.iter().enumerate() {
                let keep = keep_mask[(idx + k) % keep_mask.len()] != 0;
                // Always keep the first occurrence so the page stays
                // broadcast (unless deliberately dropped above).
                if !keep && k > 0 {
                    continue;
                }
                let pos = GridPos::new(ChannelId::new(0), SlotIndex::new(col));
                if program.page_at(pos).is_none() {
                    program.place(pos, page).unwrap();
                    placed_any = true;
                }
            }
        }
        let fast = exact_avg_delay(&program, &ladder);
        let slow = reference::exact_avg_delay_scan(&program, &ladder);
        prop_assert_eq!(fast, slow);
        if dropped {
            // A never-broadcast ladder page makes both paths bail.
            prop_assert_eq!(fast, None);
        }
    }

    /// Determinism: the parallel OPT search returns bit-identical
    /// frequencies and objective to the serial one for any thread count.
    #[test]
    fn parallel_and_serial_opt_agree(
        ladder in arb_ladder(),
        n in 1u32..6,
        threads in 2usize..9,
    ) {
        let serial = opt::search_r_structured(&ladder, n, Weighting::PaperEq2);
        let parallel = opt::search_r_structured_parallel(&ladder, n, Weighting::PaperEq2, threads);
        prop_assert_eq!(parallel.frequencies(), serial.frequencies());
        prop_assert!(parallel.objective() == serial.objective());
    }

    /// Robustness: the station's failover rung is a SUSC re-pack of the
    /// live catalogue onto the survivors. For any ladder and any
    /// surviving-channel count at or above the Theorem 3.1 minimum, the
    /// rebuild must succeed and the resulting program must still pass the
    /// validity checker.
    #[test]
    fn failover_rebuild_stays_valid_above_minimum(ladder in arb_ladder(), extra in 1u32..4) {
        let min = minimum_channels(&ladder);
        let configured = min + extra;
        let catalogue: Vec<_> = ladder
            .pages()
            .map(|(page, group)| (page, ladder.time_of(group).slots()))
            .collect();
        let mut sched = OnlineScheduler::new(configured, ladder.max_time()).unwrap();
        sched.rebuild_with(&catalogue).unwrap();
        for survivors in min..configured {
            let mut probe = sched.clone();
            prop_assert!(
                probe.rebuild_on_channels(survivors).is_ok(),
                "re-pack onto {survivors} of {configured} channels (minimum {min}) failed"
            );
            let report = validity::check(probe.program(), &ladder);
            prop_assert!(
                report.is_valid(),
                "re-packed program invalid on {survivors} survivors: {:?}",
                report.violations()
            );
            // Climbing back to the full complement restores validity too.
            prop_assert!(probe.rebuild_on_channels(configured).is_ok());
            prop_assert!(validity::check(probe.program(), &ladder).is_valid());
        }
    }
}

/// The DES and the closed-form path agree when patience is unlimited:
/// every request is served by broadcast with the same waits.
#[test]
fn des_matches_access_path_with_infinite_patience() {
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
    let program = pamad::schedule(&ladder, 2).unwrap().into_program();
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 3);
    let requests = gen.take(2000, program.cycle_len());

    let (summary, _) = airsched_sim::access::measure(&program, &ladder, &requests);

    let config = SimConfig {
        patience_factor: 1e6, // effectively infinite
        ..SimConfig::default()
    };
    let report = Simulation::new(&program, &ladder, config).run(&requests);
    assert_eq!(report.abandoned, 0);
    assert_eq!(report.broadcast.requests(), 2000);
    assert!((report.broadcast.avg_delay() - summary.avg_delay()).abs() < 1e-12);
    assert!((report.broadcast.avg_wait() - summary.avg_wait()).abs() < 1e-12);
}

/// m-PB and SUSC coincide when channels are sufficient: same frequencies,
/// both valid.
#[test]
fn mpb_matches_susc_frequencies_when_sufficient() {
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
    let min = minimum_channels(&ladder);
    let mpb_placement = mpb::schedule(&ladder, min).unwrap();
    assert!(validity::check(mpb_placement.program(), &ladder).is_valid());
    let susc_freqs: Vec<u64> = ladder
        .times()
        .iter()
        .map(|&t| ladder.max_time() / t)
        .collect();
    assert_eq!(mpb::frequencies(&ladder), susc_freqs);
}

/// Determinism across the whole stack: identical seeds produce identical
/// sweeps, reports, and programs.
#[test]
fn whole_stack_is_deterministic() {
    use airsched_analysis::experiment::{sweep_channels, ExperimentConfig};
    use airsched_workload::distributions::GroupSizeDistribution;
    use airsched_workload::spec::WorkloadSpec;

    let config = ExperimentConfig {
        spec: WorkloadSpec::new(80, 4, 2, 2).distribution(GroupSizeDistribution::Normal),
        requests: 500,
        ..ExperimentConfig::paper_defaults()
    };
    let a = sweep_channels(&config, [1u32, 3, 5]).unwrap();
    let b = sweep_channels(&config, [1u32, 3, 5]).unwrap();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Lint-vs-scheduler contracts: every program our schedulers emit in their
// supported regime must pass the static analyzer, and targeted mutilations
// must fire exactly the rule they were built to provoke.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SUSC in the sufficient regime (Theorem 3.1 and above) is lint-clean
    /// under the *default* strict config: no gaps, no late first
    /// appearances, no deficits — the analyzer agrees with the theorem.
    #[test]
    fn susc_programs_are_lint_clean(ladder in arb_ladder(), extra in 0u32..3) {
        use airsched_lint::{lint, LintConfig, LintInput};
        let program = susc::schedule(&ladder, minimum_channels(&ladder) + extra).unwrap();
        let report = lint(&LintInput::for_program(&program, &ladder), &LintConfig::default());
        prop_assert!(report.is_clean(), "SUSC should lint clean:\n{report}");
    }

    /// PAMAD at any channel count passes the *structural* config — the one
    /// the station's swap gate applies to best-effort candidates. Deadline
    /// rules are allowed there (PAMAD's Eq. 8 cycle can be shorter than
    /// t_h, so deadline misses are by design), but structural integrity
    /// (missing pages, duplicated columns, absurd times) must hold.
    #[test]
    fn pamad_programs_are_structurally_clean(ladder in arb_ladder(), n in 1u32..6) {
        use airsched_lint::{lint, LintConfig, LintInput};
        let program = pamad::schedule(&ladder, n).unwrap().into_program();
        let report = lint(&LintInput::for_program(&program, &ladder), &LintConfig::structural());
        prop_assert!(report.is_clean(), "PAMAD should pass the structural gate:\n{report}");
    }

    /// Each `mutilate` corruptor fires its primary rule on an otherwise
    /// clean SUSC program, and nothing fires beyond the documented
    /// cause/symptom companions (AP02's late appearance implies AP01's
    /// doubled gap; removing occurrences implies AP06's deficit; an
    /// oversized gap can push a group's delay factor over AL04's stretch
    /// threshold).
    #[test]
    fn mutilations_fire_their_documented_rules(ladder in arb_ladder()) {
        use airsched_core::program::BroadcastProgram;
        use airsched_lint::{lint, LintConfig, LintInput, RuleId};
        use airsched_sim::mutilate;

        let clean = susc::schedule(&ladder, minimum_channels(&ladder)).unwrap();
        // A group-1 page repeats every t1 < cycle slots, so every
        // corruptor below has occurrences to remove.
        let victim = ladder.pages().next().unwrap().0;
        prop_assert!(clean.occurrence_columns(victim).len() >= 2);

        let cases: [(BroadcastProgram, RuleId, &[RuleId]); 3] = [
            (
                mutilate::drop_page(&clean, victim),
                RuleId::NeverBroadcast,
                &[],
            ),
            (
                mutilate::thin_to_first_occurrence(&clean, victim),
                RuleId::ExpectedTimeGap,
                &[RuleId::FrequencyDeficit, RuleId::StretchExceeded],
            ),
            (
                mutilate::delay_first_appearance(&clean, victim),
                RuleId::FirstAppearanceLate,
                &[
                    RuleId::ExpectedTimeGap,
                    RuleId::FrequencyDeficit,
                    RuleId::StretchExceeded,
                ],
            ),
        ];
        for (program, expected, companions) in cases {
            let report = lint(&LintInput::for_program(&program, &ladder), &LintConfig::default());
            prop_assert!(
                report.fired(expected),
                "{} should fire:\n{report}",
                expected.code()
            );
            prop_assert!(report.has_deny(), "mutilations must not pass the gate");
            for rule in report.rules_fired() {
                prop_assert!(
                    rule == expected || companions.contains(&rule),
                    "unexpected companion {} for {}:\n{report}",
                    rule.code(),
                    expected.code()
                );
            }
        }
    }

    /// The duplicate-copy corruptor is surgical: with a spare channel to
    /// host the parallel copy, AP05 fires and *only* AP05 — the program
    /// stays otherwise valid, which is exactly why the waste needs a lint
    /// rule rather than the validity checker.
    #[test]
    fn duplicate_mutilation_fires_only_ap05(ladder in arb_ladder()) {
        use airsched_lint::{lint, LintConfig, LintInput, RuleId};
        use airsched_sim::mutilate;

        let clean = susc::schedule(&ladder, minimum_channels(&ladder) + 1).unwrap();
        let victim = ladder.pages().next().unwrap().0;
        let doubled = mutilate::duplicate_in_column(&clean, victim)
            .expect("a spare channel always leaves a free cell in the victim's columns");
        prop_assert!(validity::check(&doubled, &ladder).is_valid());
        let report = lint(&LintInput::for_program(&doubled, &ladder), &LintConfig::default());
        prop_assert_eq!(report.rules_fired(), vec![RuleId::DuplicateInColumn], "{}", report);
        prop_assert!(!report.has_deny(), "AP05 warns; it alone must not block a swap");
    }
}
