//! End-to-end reproduction checks at (scaled) paper scale: the qualitative
//! claims of Figure 5 must hold on every distribution.

use airsched_analysis::experiment::{sweep_channels, ExperimentConfig};
use airsched_core::bound::minimum_channels;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

/// A reduced paper workload (n = 250, h = 6) keeping the full pipeline but
/// fast enough for CI; the bench binaries run the n = 1000 original.
fn reduced_config(dist: GroupSizeDistribution) -> ExperimentConfig {
    ExperimentConfig {
        spec: WorkloadSpec::new(250, 6, 4, 2).distribution(dist),
        requests: 3000,
        ..ExperimentConfig::paper_defaults()
    }
}

/// The three Figure 5 observations, per distribution:
/// 1. PAMAD ~= OPT everywhere;
/// 2. m-PB is clearly worse in the scarce region;
/// 3. AvgD at ~N/5 channels is a tiny fraction of the 1-channel delay.
#[test]
fn figure5_shape_holds_on_all_distributions() {
    for dist in GroupSizeDistribution::ALL {
        let config = reduced_config(dist);
        let ladder = config.ladder().unwrap();
        let min = minimum_channels(&ladder);
        let sweep = sweep_channels(&config, 1..=min).unwrap();

        // (1) PAMAD tracks OPT: summed across the sweep, PAMAD is within
        // 25% of OPT (the paper: "almost overlaps").
        let sum_pamad: f64 = sweep.points.iter().map(|p| p.pamad).sum();
        let sum_opt: f64 = sweep.points.iter().map(|p| p.opt).sum();
        assert!(
            sum_pamad <= sum_opt * 1.25 + 1.0,
            "{dist}: PAMAD {sum_pamad:.2} vs OPT {sum_opt:.2}"
        );

        // (2) m-PB is much worse where channels are scarce (between 10%
        // and 60% of the minimum; at the edges all methods converge).
        let lo = (min / 10).max(2);
        let hi = (min * 6 / 10).max(3);
        let mut pamad_mid = 0.0;
        let mut mpb_mid = 0.0;
        for p in sweep
            .points
            .iter()
            .filter(|p| p.channels >= lo && p.channels <= hi)
        {
            pamad_mid += p.pamad;
            mpb_mid += p.mpb;
        }
        assert!(
            mpb_mid > pamad_mid * 1.5,
            "{dist}: m-PB ({mpb_mid:.2}) should clearly lose to PAMAD \
             ({pamad_mid:.2}) in the scarce region"
        );

        // (3) the 1/5 rule: delay at ceil(min/5) is a small fraction of the
        // single-channel delay (under 20% at this reduced scale; the full
        // n=1000 workload lands near 2-5%, see EXPERIMENTS.md).
        let at_1 = sweep.at(1).unwrap().pamad;
        let fifth = min.div_ceil(5).max(1);
        let at_fifth = sweep.at(fifth).unwrap().pamad;
        // The collapse sharpens as N_min grows; with a tiny N_min/5 (a
        // couple of channels) allow a looser factor.
        let threshold = if fifth >= 5 { 0.20 } else { 0.35 };
        assert!(
            at_fifth < at_1 * threshold,
            "{dist}: AvgD {at_fifth:.2} at {fifth} channels vs {at_1:.2} at 1"
        );

        // (4) monotone-ish decline: each point is at most 1.5x the previous
        // (sampling noise allowance) and the last point is near zero.
        for w in sweep.points.windows(2) {
            assert!(
                w[1].pamad <= w[0].pamad * 1.5 + 0.5,
                "{dist}: AvgD rose sharply from {} ch ({:.3}) to {} ch ({:.3})",
                w[0].channels,
                w[0].pamad,
                w[1].channels,
                w[1].pamad
            );
        }
        let last = sweep.points.last().unwrap();
        assert!(
            last.pamad < 1.0,
            "{dist}: AvgD at minimum {:.3}",
            last.pamad
        );
    }
}

/// The facade delivers a zero-delay program whenever channels suffice,
/// for every distribution at reduced paper scale.
#[test]
fn sufficient_channels_meet_every_deadline_end_to_end() {
    use airsched_sim::access::measure;
    use airsched_workload::requests::{AccessPattern, RequestGenerator};

    for dist in GroupSizeDistribution::ALL {
        let ladder = reduced_config(dist).ladder().unwrap();
        let min = minimum_channels(&ladder);
        let outcome = airsched_core::build_program(&ladder, min).unwrap();
        assert_eq!(outcome.algorithm(), airsched_core::Algorithm::Susc);
        let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 11);
        let requests = gen.take(3000, outcome.program().cycle_len());
        let (summary, misses) = measure(outcome.program(), &ladder, &requests);
        assert_eq!(misses, 0, "{dist}");
        assert_eq!(summary.avg_delay(), 0.0, "{dist}");
        assert_eq!(summary.hit_rate(), 1.0, "{dist}");
    }
}

/// Zipf access does not break anything: sweeps still decline and PAMAD
/// still beats m-PB (the paper assumes uniform; this guards the extension).
#[test]
fn zipf_access_preserves_ordering() {
    use airsched_workload::requests::AccessPattern;
    let config = ExperimentConfig {
        access: AccessPattern::Zipf { theta: 0.9 },
        ..reduced_config(GroupSizeDistribution::Uniform)
    };
    let ladder = config.ladder().unwrap();
    let min = minimum_channels(&ladder);
    let sweep = sweep_channels(&config, [1, min / 4, min / 2, min]).unwrap();
    let first = sweep.points.first().unwrap();
    let last = sweep.points.last().unwrap();
    assert!(first.pamad > last.pamad);
    let mid = sweep.at(min / 2).unwrap();
    assert!(mid.mpb >= mid.pamad * 0.9);
}
