//! Property tests for the zero-allocation serving path.
//!
//! Two families of properties pin the fast paths to their slow, obviously
//! correct counterparts:
//!
//! * [`Occurrences::next_broadcast`] through an [`OccurrenceIndex`] (and
//!   its amortized cursor) must be **bit-identical** to a naive forward
//!   column scan — on scheduler-produced valid programs and on arbitrary
//!   hand-mutilated grids the schedulers would never emit;
//! * [`Station::tick_into`] driving one reused [`TickBuf`] must produce
//!   exactly the same outcome stream, deliveries, events and statistics
//!   as the allocating [`Station::tick`] and the retained seed-shaped
//!   [`Station::tick_reference`], across randomized chaos fault scripts;
//! * sharded drains behind [`Station::parallelism`] are execution
//!   configuration, not behavior: across a shard-count sweep
//!   `k ∈ {1, 2, 4, 7}` under the same chaos scripts, every count yields
//!   the serial outcome stream bit-identically.

use airsched_core::group::GroupLadder;
use airsched_core::program::{BroadcastProgram, Occurrences};
use airsched_core::types::{ChannelId, GridPos, PageId, SlotIndex};
use airsched_core::{pamad, susc};
use airsched_server::{FaultEvent, FaultPlan, Station, TickBuf};

use proptest::prelude::*;

/// The page universe for mutilated grids: small enough that pages collide
/// across channels, pages with zero occurrences stay common, and the
/// dense index's never-broadcast path gets exercised.
const PAGE_UNIVERSE: u32 = 7;

/// First slot `s >= from` whose column carries `page`, by scanning every
/// cell of every column forward — the obviously correct reference.
fn naive_next_broadcast(program: &BroadcastProgram, page: PageId, from: u64) -> Option<u64> {
    let cycle = program.cycle_len();
    (from..from + cycle).find(|&s| {
        let column = SlotIndex::new(s % cycle);
        (0..program.channels())
            .any(|ch| program.page_at(GridPos::new(ChannelId::new(ch), column)) == Some(page))
    })
}

fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=4, 2u64..=3, prop::collection::vec(1u64..=20, 2..=4))
        .prop_map(|(t1, c, counts)| GroupLadder::geometric(t1, c, &counts).unwrap())
}

/// An arbitrary grid the schedulers would never produce: random placements
/// (first write wins per cell), so occurrence structures include bunched
/// columns, absent pages and single-occurrence pages.
fn arb_mutilated_program() -> impl Strategy<Value = BroadcastProgram> {
    (
        1u32..=3,
        4u64..=16,
        prop::collection::vec((0u64..48, 0u32..PAGE_UNIVERSE), 0..=24),
    )
        .prop_map(|(channels, cycle, placements)| {
            let mut program = BroadcastProgram::new(channels, cycle);
            for (cell, page) in placements {
                let ch = ChannelId::new(u32::try_from(cell % u64::from(channels)).unwrap());
                let col = SlotIndex::new((cell / u64::from(channels)) % cycle);
                // Occupied cells keep their first page: collisions are part
                // of the mutilation, not a failure.
                let _ = program.place(GridPos::new(ch, col), PageId::new(page));
            }
            program
        })
}

/// One randomized chaos configuration for the station lockstep.
#[derive(Debug, Clone)]
struct Chaos {
    seed: u64,
    outage: f64,
    recovery: f64,
    stalls: f64,
    corruption: f64,
    script: Vec<(u64, u32, bool)>,
    churn: u64,
}

fn arb_chaos() -> impl Strategy<Value = Chaos> {
    (
        any::<u64>(),
        0.0..0.1f64,
        0.05..0.4f64,
        0.0..0.15f64,
        0.0..0.15f64,
        prop::collection::vec((0u64..240, 0u32..4, any::<bool>()), 0..=6),
        1u64..=5,
    )
        .prop_map(
            |(seed, outage, recovery, stalls, corruption, script, churn)| Chaos {
                seed,
                outage,
                recovery,
                stalls,
                corruption,
                script,
                churn,
            },
        )
}

/// Four channels, 16-slot cycle, harmonic catalogue (as the chaos
/// integration tests use) so every rung of the ladder is reachable.
fn chaos_station(chaos: &Chaos) -> Station {
    let script = chaos
        .script
        .iter()
        .map(|&(at, ch, down)| {
            let channel = ChannelId::new(ch);
            if down {
                FaultEvent::Down { at, channel }
            } else {
                FaultEvent::Up { at, channel }
            }
        })
        .collect();
    let plan = FaultPlan::seeded(chaos.seed)
        .with_script(script)
        .with_outage(chaos.outage)
        .with_recovery(chaos.recovery)
        .with_stalls(chaos.stalls)
        .with_corruption(chaos.corruption);
    let mut station = Station::with_faults(4, 16, &plan).unwrap();
    for (p, t) in [(0, 2), (1, 4), (2, 8), (3, 16), (4, 4), (5, 8)] {
        station.publish(PageId::new(p), t).unwrap();
    }
    station
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On scheduler-produced valid programs (both SUSC and PAMAD), the
    /// index answers `next_broadcast` bit-identically to the naive
    /// forward scan, for every page at every phase of the cycle.
    #[test]
    fn index_matches_naive_scan_on_valid_programs(
        ladder in arb_ladder(),
        extra in 0u32..3,
        use_susc in any::<bool>(),
    ) {
        let n = airsched_core::bound::minimum_channels(&ladder) + extra;
        let program = if use_susc {
            susc::schedule(&ladder, n).unwrap()
        } else {
            pamad::schedule(&ladder, n).unwrap().into_program()
        };
        let index = program.occurrence_index();
        prop_assert_eq!(index.cycle_len(), program.cycle_len());
        let cycle = program.cycle_len();
        for p in 0..u32::try_from(ladder.total_pages()).unwrap() {
            let page = PageId::new(p);
            for from in (0..cycle).chain([cycle, 3 * cycle + 1]) {
                prop_assert_eq!(
                    index.next_broadcast(page, from),
                    naive_next_broadcast(&program, page, from),
                    "page {} from {}", p, from
                );
            }
        }
    }

    /// Same bit-identity on mutilated grids: arbitrary occurrence
    /// structures, absent pages, and queries far past the first cycle.
    /// The program's own trait impl, the prebuilt index and the
    /// amortized cursor must all agree with the scan.
    #[test]
    fn index_matches_naive_scan_on_mutilated_programs(
        program in arb_mutilated_program(),
        phase in 0u64..64,
    ) {
        let index = program.occurrence_index();
        let cycle = program.cycle_len();
        for p in 0..PAGE_UNIVERSE {
            let page = PageId::new(p);
            let mut cursor = index.cursor(page);
            prop_assert_eq!(
                cursor.is_some(),
                !index.occurrence_columns(page).is_empty()
            );
            for step in 0..2 * cycle {
                let from = phase + step;
                let naive = naive_next_broadcast(&program, page, from);
                prop_assert_eq!(
                    Occurrences::next_broadcast(&program, page, from),
                    naive,
                    "program trait: page {} from {}", p, from
                );
                prop_assert_eq!(
                    index.next_broadcast(page, from),
                    naive,
                    "index: page {} from {}", p, from
                );
                if let Some(cursor) = cursor.as_mut() {
                    // The cursor consumes a monotone query stream.
                    prop_assert_eq!(
                        Some(cursor.next_after(from)),
                        naive,
                        "cursor: page {} from {}", p, from
                    );
                }
            }
        }
    }

    /// One `TickBuf` reused across an entire chaos run yields exactly the
    /// slot outcomes of the allocating `tick` and of the retained seed
    /// reference — deliveries, events, modes and final statistics all
    /// included. Subscription churn keeps waiting lists hot so delivery
    /// batching, capacity reuse and the dense expected-time cache are all
    /// on the line.
    #[test]
    fn tick_into_matches_tick_under_chaos(chaos in arb_chaos()) {
        let mut fresh = chaos_station(&chaos);
        let mut reused = chaos_station(&chaos);
        let mut seed_shaped = chaos_station(&chaos);
        let mut buf = TickBuf::new();
        for t in 0..260u64 {
            if t % chaos.churn == 0 {
                let page = PageId::new(u32::try_from(t % 6).unwrap());
                let a = fresh.subscribe(page).unwrap();
                let b = reused.subscribe(page).unwrap();
                let c = seed_shaped.subscribe(page).unwrap();
                prop_assert_eq!(a, b);
                prop_assert_eq!(a, c);
            }
            let want = fresh.tick();
            reused.tick_into(&mut buf);
            prop_assert_eq!(&buf.to_outcome(), &want, "slot {}", t);
            prop_assert_eq!(&seed_shaped.tick_reference(), &want, "slot {}", t);
        }
        prop_assert_eq!(fresh.stats(), reused.stats());
        prop_assert_eq!(fresh.stats(), seed_shaped.stats());
        prop_assert_eq!(fresh.mode(), reused.mode());
        prop_assert_eq!(fresh.mode(), seed_shaped.mode());
    }

    /// Partitioned-SoA ticks are bit-identical across the shard-count
    /// sweep: under the same chaos script and churn, a station draining
    /// on `k` scoped workers produces exactly the serial outcome stream
    /// — and the retained `tick_reference` agrees — for every `k`, with
    /// final statistics and ladder mode to match. `parallelism` trades
    /// latency for cores, never behavior.
    #[test]
    fn sharded_tick_matches_serial_for_every_k(chaos in arb_chaos()) {
        let mut serial = chaos_station(&chaos);
        serial.parallelism(1);
        let mut seed_shaped = chaos_station(&chaos);
        let mut sharded: Vec<(u32, Station, TickBuf)> = [2u32, 4, 7]
            .into_iter()
            .map(|k| {
                let mut s = chaos_station(&chaos);
                s.parallelism(k);
                (k, s, TickBuf::new())
            })
            .collect();
        let mut buf = TickBuf::new();
        for t in 0..260u64 {
            if t % chaos.churn == 0 {
                let page = PageId::new(u32::try_from(t % 6).unwrap());
                let a = serial.subscribe(page).unwrap();
                prop_assert_eq!(a, seed_shaped.subscribe(page).unwrap());
                for (_, s, _) in &mut sharded {
                    prop_assert_eq!(a, s.subscribe(page).unwrap());
                }
            }
            serial.tick_into(&mut buf);
            let want = buf.to_outcome();
            prop_assert_eq!(
                &seed_shaped.tick_reference(), &want,
                "tick_reference diverges at slot {}", t
            );
            for (k, s, kbuf) in &mut sharded {
                s.tick_into(kbuf);
                prop_assert_eq!(&kbuf.to_outcome(), &want, "k={} slot {}", k, t);
            }
        }
        for (k, s, _) in &sharded {
            prop_assert_eq!(serial.stats(), s.stats(), "stats diverge at k={}", k);
            prop_assert_eq!(serial.mode(), s.mode(), "mode diverges at k={}", k);
        }
        prop_assert_eq!(serial.stats(), seed_shaped.stats());
    }
}
