//! Crash-recovery integration suite: kill the station at every slot (and
//! half-way through a checkpoint write), restore it, and require the
//! recovered continuation — every `TickOutcome` and the final stats — to
//! be bit-identical to a twin that never crashed.

use std::fs;
use std::path::PathBuf;

use airsched_core::types::{ChannelId, PageId};
use airsched_obs::events::Event;
use airsched_obs::Obs;
use airsched_recover::{
    CrashInjector, RecoverError, RecoverableStation, RecoveryOptions, CHECKPOINT_FILE,
    CHECKPOINT_SHADOW, JOURNAL_FILE,
};
use airsched_server::faults::{FaultEvent, FaultPlan};
use airsched_server::{Station, StationStats, TickOutcome};

const CHANNELS: u32 = 3;
const CYCLE: u64 = 8;
const SLOTS: u64 = 96;
/// The paper-example flavour of catalogue: a small ladder of expected
/// times on a few pages.
const TIMES: [(u32, u64); 4] = [(0, 2), (1, 4), (2, 8), (3, 8)];

fn plan() -> FaultPlan {
    FaultPlan::seeded(0xC4A5)
        .with_outage(0.04)
        .with_recovery(0.2)
        .with_stalls(0.02)
        .with_corruption(0.06)
        .with_script(vec![
            FaultEvent::Down {
                at: 24,
                channel: ChannelId::new(0),
            },
            FaultEvent::Up {
                at: 48,
                channel: ChannelId::new(0),
            },
        ])
}

fn fresh_station() -> Station {
    let mut s = Station::with_faults(CHANNELS, CYCLE, &plan()).expect("station builds");
    for (page, expected) in TIMES {
        s.publish(PageId::new(page), expected).expect("publishes");
    }
    s
}

/// The deterministic subscription schedule both twins follow.
fn sub_page(t: u64) -> Option<PageId> {
    t.is_multiple_of(3)
        .then(|| PageId::new(u32::try_from(t % 4).expect("small")))
}

/// Drives an uninterrupted station through all `SLOTS`, returning every
/// outcome and the final stats — the ground truth every crashed-and-
/// recovered run must match exactly.
fn twin_outcomes() -> (Vec<TickOutcome>, StationStats) {
    let mut s = fresh_station();
    let mut out = Vec::with_capacity(usize::try_from(SLOTS).expect("small"));
    for t in 0..SLOTS {
        if let Some(p) = sub_page(t) {
            s.subscribe(p).expect("subscribes");
        }
        out.push(s.tick());
    }
    (out, s.stats())
}

fn state_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("airsched-crashsweep-{tag}-{}", std::process::id()))
}

/// Runs a recoverable station until its scripted crash fires, returning
/// the crash slot.
fn run_until_crash(run: &mut RecoverableStation) -> u64 {
    let mut t = run.now();
    loop {
        if let Some(p) = sub_page(t) {
            run.subscribe(p).expect("subscribes");
        }
        match run.tick() {
            Ok(_) => t = run.now(),
            Err(RecoverError::Crashed { slot }) => return slot,
            Err(e) => panic!("unexpected recovery error: {e}"),
        }
    }
}

#[test]
fn crash_at_every_slot_recovers_bit_identically() {
    let (twin, twin_stats) = twin_outcomes();
    for crash_at in 1..SLOTS {
        let dir = state_dir(&format!("slot{crash_at}"));
        let opts = RecoveryOptions::new()
            .checkpoint_every(8)
            .with_crash(CrashInjector::at_slot(crash_at));
        let mut run = RecoverableStation::create(&dir, fresh_station(), Some(plan()), opts)
            .expect("create succeeds");
        let crashed = run_until_crash(&mut run);
        assert_eq!(crashed, crash_at);
        drop(run); // the "process" dies; only the state directory survives

        let (mut resumed, report) =
            RecoverableStation::resume(&dir, RecoveryOptions::new().checkpoint_every(8), None)
                .unwrap_or_else(|e| panic!("crash at {crash_at}: resume failed: {e}"));
        assert_eq!(resumed.now(), crash_at, "recovery lost or invented slots");
        assert_eq!(report.resumed_at, crash_at);

        for t in crash_at..SLOTS {
            // The crash fired *before* ticking `crash_at`, but after that
            // slot's subscription was journaled — replay already applied
            // it, so only later slots subscribe afresh.
            if t != crash_at {
                if let Some(p) = sub_page(t) {
                    resumed.subscribe(p).expect("subscribes");
                }
            }
            let got = resumed.tick().expect("post-recovery ticks");
            assert_eq!(
                got,
                twin[usize::try_from(t).expect("small")],
                "crash at {crash_at}: outcome diverged at slot {t}"
            );
        }
        assert_eq!(
            resumed.stats(),
            twin_stats,
            "crash at {crash_at}: final stats diverged"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

/// A station draining on scoped workers persists exactly the bytes its
/// serial twin does — checkpoint and journal formats carry no trace of
/// the shard count — and its crashed state resumes bit-identical to the
/// never-crashed serial twin even when the resumed process picks yet
/// another shard count. `Station::parallelism` is execution
/// configuration, invisible to the durability layer.
#[test]
fn partitioned_station_checkpoints_and_recovers_like_its_serial_twin() {
    let (twin, twin_stats) = twin_outcomes();
    // Off the 8-slot checkpoint cadence so recovery replays a non-empty
    // journal tail on top of the slot-40 checkpoint.
    let crash_at = 43;
    let doomed_run = |tag: &str, par: u32| {
        let dir = state_dir(&format!("par-{tag}"));
        let opts = RecoveryOptions::new()
            .checkpoint_every(8)
            .with_crash(CrashInjector::at_slot(crash_at));
        let mut station = fresh_station();
        station.parallelism(par);
        let mut run =
            RecoverableStation::create(&dir, station, Some(plan()), opts).expect("create succeeds");
        assert_eq!(run_until_crash(&mut run), crash_at);
        drop(run); // the "process" dies; only the state directory survives
        dir
    };
    let serial_dir = doomed_run("serial", 1);
    let sharded_dir = doomed_run("sharded", 4);

    for file in [CHECKPOINT_FILE, JOURNAL_FILE] {
        assert_eq!(
            fs::read(serial_dir.join(file)).expect("serial state file"),
            fs::read(sharded_dir.join(file)).expect("sharded state file"),
            "{file} differs between a serial and a sharded run"
        );
    }

    let (mut resumed, report) = RecoverableStation::resume(
        &sharded_dir,
        RecoveryOptions::new().checkpoint_every(8),
        None,
    )
    .expect("resume succeeds");
    assert_eq!(report.resumed_at, crash_at);
    resumed.parallelism(3);
    for t in crash_at..SLOTS {
        // As in the crash sweep: slot `crash_at`'s subscription was
        // journaled before the crash, so replay already applied it.
        if t != crash_at {
            if let Some(p) = sub_page(t) {
                resumed.subscribe(p).expect("subscribes");
            }
        }
        let got = resumed.tick().expect("post-recovery ticks");
        assert_eq!(
            got,
            twin[usize::try_from(t).expect("small")],
            "sharded recovery diverged from the serial twin at slot {t}"
        );
    }
    assert_eq!(resumed.stats(), twin_stats);
    fs::remove_dir_all(&serial_dir).ok();
    fs::remove_dir_all(&sharded_dir).ok();
}

#[test]
fn crash_mid_checkpoint_write_recovers_from_the_previous_checkpoint() {
    let (twin, twin_stats) = twin_outcomes();
    let dir = state_dir("midckpt");
    // Checkpoint #1 is the creation one; #2 lands at slot 8; #3 at slot
    // 16 is torn half-way through its shadow write.
    let opts = RecoveryOptions::new()
        .checkpoint_every(8)
        .with_crash(CrashInjector::mid_checkpoint(3));
    let mut run =
        RecoverableStation::create(&dir, fresh_station(), Some(plan()), opts).expect("create");
    let crashed = run_until_crash(&mut run);
    assert_eq!(crashed, 16);
    drop(run);
    assert!(
        dir.join(CHECKPOINT_SHADOW).exists(),
        "the torn shadow should be left on disk"
    );

    let (mut resumed, report) =
        RecoverableStation::resume(&dir, RecoveryOptions::new().checkpoint_every(8), None)
            .expect("resume survives a torn shadow");
    // Unlike an inter-slot crash, the tick that triggered the torn
    // checkpoint had already completed, so nothing is lost at all.
    assert_eq!(resumed.now(), 16);
    assert!(
        report.replayed > 0,
        "the slot-8 checkpoint plus journal replay should carry slots 8..16"
    );
    for t in 16..SLOTS {
        if let Some(p) = sub_page(t) {
            resumed.subscribe(p).expect("subscribes");
        }
        let got = resumed.tick().expect("post-recovery ticks");
        assert_eq!(
            got,
            twin[usize::try_from(t).expect("small")],
            "outcome diverged at slot {t}"
        );
    }
    assert_eq!(resumed.stats(), twin_stats);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_journal_tail_recovers_to_the_last_valid_record() {
    let dir = state_dir("tail");
    let mut run =
        RecoverableStation::create(&dir, fresh_station(), Some(plan()), RecoveryOptions::new())
            .expect("create");
    for t in 0..20 {
        if let Some(p) = sub_page(t) {
            run.subscribe(p).expect("subscribes");
        }
        run.tick().expect("ticks");
    }
    drop(run);

    // Bit-rot the journal's final bytes on disk.
    let journal_path = dir.join(JOURNAL_FILE);
    let mut bytes = fs::read(&journal_path).expect("journal exists");
    let n = bytes.len();
    for b in &mut bytes[n - 6..] {
        *b ^= 0xFF;
    }
    fs::write(&journal_path, &bytes).expect("rewrite");

    let (resumed, report) = RecoverableStation::resume(&dir, RecoveryOptions::new(), None)
        .expect("a corrupt tail must not refuse recovery");
    assert!(report.dropped_bytes > 0, "the clobbered tail was dropped");
    // Only the final record (or two, if the clobber straddled a frame
    // boundary) can be lost.
    assert!(
        resumed.now() >= 18 && resumed.now() <= 20,
        "{}",
        resumed.now()
    );
    drop(resumed);

    // Resume truncated the garbage and re-anchored with a fresh
    // checkpoint, so a second recovery is clean.
    let (second, report2) =
        RecoverableStation::resume(&dir, RecoveryOptions::new(), None).expect("second resume");
    assert_eq!(report2.dropped_bytes, 0);
    assert_eq!(
        report2.replayed, 0,
        "the re-anchor checkpoint covers everything"
    );
    assert!(second.now() >= 18);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_postmortem_carries_the_pre_crash_causal_history() {
    let dir = state_dir("postmortem");
    // The scripted blackout at slot 24 precedes the crash at slot 30, so
    // the mode change and channel-health transitions it caused are part
    // of the history the crash destroyed.
    let opts = RecoveryOptions::new()
        .checkpoint_every(16)
        .with_crash(CrashInjector::at_slot(30));
    let mut run =
        RecoverableStation::create(&dir, fresh_station(), Some(plan()), opts).expect("create");
    let crashed = run_until_crash(&mut run);
    assert_eq!(crashed, 30);
    drop(run);

    let obs = Obs::new();
    let (_resumed, report) =
        RecoverableStation::resume(&dir, RecoveryOptions::new(), Some(&obs)).expect("resume");
    assert!(report.replayed > 0);

    // The replayed ticks regenerated the flight-recorder stream, so the
    // recovery postmortem shows what led up to the crash.
    let pms = obs.take_postmortems();
    let pm = pms
        .iter()
        .find(|p| p.trigger == "recovery")
        .expect("a recovery postmortem was captured");
    assert_eq!(pm.slot, 30);
    assert!(
        pm.events
            .iter()
            .any(|e| matches!(e, Event::ModeChange { .. })),
        "the pre-crash mode change is part of the causal history"
    );
    assert!(
        pm.events
            .iter()
            .any(|e| matches!(e, Event::ChannelHealth { .. })),
        "the pre-crash channel loss is part of the causal history"
    );
    assert!(
        pm.events
            .iter()
            .any(|e| matches!(e, Event::RecoveryCompleted { .. })),
        "the recovery itself closes the postmortem"
    );
    let prom = obs.render_prometheus();
    assert!(prom.contains("airsched_recover_recovery_duration_us"));
    assert!(prom.contains("airsched_recover_checkpoints_total"));
    fs::remove_dir_all(&dir).ok();
}
