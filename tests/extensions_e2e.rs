//! End-to-end tests of the extension surfaces working together at
//! (reduced) paper scale: the live station, program transitions, lossy
//! reception, indexing energy, multi-page retrieval, and the capacity
//! planner.

use airsched_core::bound::minimum_channels;
use airsched_core::types::PageId;
use airsched_core::{pamad, susc};
use airsched_server::Station;
use airsched_sim::energy::{measure_energy, TuningScheme};
use airsched_sim::lossy::{measure_lossy, LossModel};
use airsched_sim::multiget::{retrieve_greedy, MultiRequest};
use airsched_sim::transition::measure_transition;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::requests::{AccessPattern, RequestGenerator};
use airsched_workload::spec::WorkloadSpec;

fn reduced_ladder() -> airsched_core::group::GroupLadder {
    WorkloadSpec::new(120, 5, 4, 2)
        .distribution(GroupSizeDistribution::Normal)
        .build()
        .unwrap()
}

/// A station built from a generated workload serves a realistic session
/// with a 100% on-time rate at the Theorem 3.1 budget.
#[test]
fn station_serves_generated_workload_on_time() {
    let ladder = reduced_ladder();
    let n = minimum_channels(&ladder);
    let mut station = Station::new(n, ladder.max_time()).unwrap();
    for (page, group) in ladder.pages() {
        station
            .publish(page, ladder.time_of(group).slots())
            .unwrap();
    }
    // Poisson arrivals of subscriptions, interleaved with ticks.
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 9);
    let arrivals = gen.take_poisson(500, 0.8);
    let mut cursor = 0usize;
    let horizon = arrivals.last().unwrap().arrival + ladder.max_time() * 2;
    for _ in 0..horizon {
        while cursor < arrivals.len() && arrivals[cursor].arrival <= station.now() {
            station.subscribe(arrivals[cursor].page).unwrap();
            cursor += 1;
        }
        station.tick();
    }
    let stats = station.stats();
    assert_eq!(stats.waiting, 0);
    assert_eq!(stats.delivered, 500);
    assert_eq!(stats.on_time, stats.delivered, "late deliveries");
}

/// Upgrading a starved system mid-flight clears the backlog within one
/// new-program deadline.
#[test]
fn transition_upgrade_clears_backlog() {
    let ladder = reduced_ladder();
    let n = minimum_channels(&ladder);
    let starved = pamad::schedule(&ladder, (n / 6).max(1))
        .unwrap()
        .into_program();
    let healthy = susc::schedule(&ladder, n).unwrap();
    let switch_at = 200;
    let requests =
        RequestGenerator::new(&ladder, AccessPattern::Uniform, 10).take(2000, switch_at + 400);
    let (summary, unserved) = measure_transition(&starved, &healthy, switch_at, &ladder, &requests);
    assert_eq!(unserved, 0);
    assert!(summary.max_delay() <= switch_at + ladder.max_time());
    // Requests arriving well after the switch see zero delay.
    let late_only: Vec<_> = requests
        .iter()
        .filter(|r| r.arrival >= switch_at)
        .copied()
        .collect();
    let (late_summary, _) = measure_transition(&starved, &healthy, switch_at, &ladder, &late_only);
    assert_eq!(late_summary.avg_delay(), 0.0);
}

/// Loss, energy, and deadline metrics compose on one program: indexing
/// saves energy at bounded latency cost, loss degrades both gracefully.
#[test]
fn energy_and_loss_compose() {
    let ladder = reduced_ladder();
    let n = (minimum_channels(&ladder) / 3).max(1);
    let program = pamad::schedule(&ladder, n).unwrap().into_program();
    let requests =
        RequestGenerator::new(&ladder, AccessPattern::Uniform, 11).take(3000, program.cycle_len());

    let (cont, _) = measure_energy(&program, &ladder, &requests, TuningScheme::Continuous);
    let (idx, _) = measure_energy(
        &program,
        &ladder,
        &requests,
        TuningScheme::Indexed { segments: 8 },
    );
    assert!(idx.mean_active_slots < cont.mean_active_slots / 2.0);
    assert!(idx.delays.avg_wait() < cont.delays.avg_wait() * 2.0 + program.cycle_len() as f64);

    let (clean, _) = measure_lossy(&program, &ladder, &requests, LossModel::lossless(), 12);
    let (noisy, failed) =
        measure_lossy(&program, &ladder, &requests, LossModel::with_loss(0.25), 12);
    assert!(noisy.avg_wait() > clean.avg_wait());
    assert_eq!(failed, 0, "attempt budget should cover 25% loss");
}

/// Composite retrieval on the real workload: greedy beats naive on average
/// and single-page requests agree with the scalar path.
#[test]
fn multiget_on_generated_workload() {
    let ladder = reduced_ladder();
    let n = (minimum_channels(&ladder) / 2).max(1);
    let program = pamad::schedule(&ladder, n).unwrap().into_program();
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 13);
    let mut greedy_total = 0u64;
    let mut single_checked = 0u32;
    for _ in 0..200 {
        let batch = gen.take(3, program.cycle_len());
        let req = MultiRequest {
            pages: batch.iter().map(|r| r.page).collect(),
            arrival: batch[0].arrival,
        };
        let access = retrieve_greedy(&program, &req, 1).unwrap();
        greedy_total += access.completion_wait;
        // Cross-check the single-page case against wait_from.
        let single = MultiRequest {
            pages: vec![req.pages[0]],
            arrival: req.arrival,
        };
        let sa = retrieve_greedy(&program, &single, 0).unwrap();
        assert_eq!(
            Some(sa.completion_wait),
            program.wait_from(req.pages[0], req.arrival)
        );
        single_checked += 1;
    }
    assert_eq!(single_checked, 200);
    assert!(greedy_total > 0);
}

/// The capacity planner and the sweep agree: the planned operating point
/// meets the budget and its predecessor does not (when distinct).
#[test]
fn planner_consistent_with_sweep() {
    use airsched_analysis::experiment::{
        channels_for_delay_budget, sweep_channels, ExperimentConfig,
    };
    let config = ExperimentConfig {
        spec: WorkloadSpec::new(120, 5, 4, 2).distribution(GroupSizeDistribution::Normal),
        requests: 2000,
        ..ExperimentConfig::paper_defaults()
    };
    let budget = 2.0;
    let n = channels_for_delay_budget(&config, budget).unwrap().unwrap();
    let sweep = sweep_channels(&config, [n]).unwrap();
    assert!(sweep.points[0].pamad <= budget + 1e-9);
}

/// The drop baseline integrates with the station idea: its kept program
/// serves survivors perfectly, and dropped pages are absent end to end.
#[test]
fn drop_baseline_end_to_end() {
    use airsched_core::dropping::{program_in_original_ids, schedule_with_drops, DropPolicy};
    use airsched_sim::access::measure;
    let ladder = reduced_ladder();
    let n = (minimum_channels(&ladder) / 2).max(1);
    let outcome = schedule_with_drops(&ladder, n, DropPolicy::TightestFirst).unwrap();
    let relabeled = program_in_original_ids(&ladder, &outcome);
    let requests = RequestGenerator::new(&ladder, AccessPattern::Uniform, 14)
        .take(3000, relabeled.cycle_len());
    let (summary, misses) = measure(&relabeled, &ladder, &requests);
    // Misses correspond exactly to requests for dropped pages.
    let dropped: std::collections::BTreeSet<PageId> = outcome.dropped().iter().copied().collect();
    let expect_misses = requests
        .iter()
        .filter(|r| dropped.contains(&r.page))
        .count() as u64;
    assert_eq!(misses, expect_misses);
    // Survivors are served on time (their hit rate is 1; the summary's
    // overall hit rate is diluted only by the miss penalties).
    assert!(summary.hit_rate() >= 1.0 - (expect_misses as f64 / 3000.0) - 1e-9);
}
