//! The solver-vs-analyzer oracle: on any program — pristine or
//! deliberately mutilated — the difference-constraint solver's verdict
//! must agree *exactly* with `airsched_core::validity::check` and with
//! the deadline half of the lint rule set, and every `Infeasible`
//! verdict must carry a certificate that replays under an independent
//! checker implemented here (not the solver's own `Certificate::replay`).

use airsched_core::bound::minimum_channels;
use airsched_core::group::GroupLadder;
use airsched_core::program::BroadcastProgram;
use airsched_core::types::PageId;
use airsched_core::{susc, validity};
use airsched_lint::{lint, LintConfig, LintInput, RuleId, Severity};
use airsched_sim::mutilate;
use airsched_solve::{check_ladder, check_program, minimal_feasible_channels, Certificate};

use proptest::prelude::*;

fn arb_ladder() -> impl Strategy<Value = GroupLadder> {
    (1u64..=4, 2u64..=3, prop::collection::vec(1u64..=12, 2..=4))
        .prop_map(|(t1, c, counts)| GroupLadder::geometric(t1, c, &counts).unwrap())
}

/// Replays a certificate from scratch: walks the public edge list,
/// checks that consecutive edges chain (each edge's minuend is the next
/// edge's subtrahend, cyclically), and that the bounds telescope to a
/// negative sum. Deliberately re-implemented here — sharing none of the
/// solver's code — so a bug in `Certificate::replay` cannot vouch for
/// itself.
fn independent_replay(cert: &Certificate) -> Result<i64, String> {
    let edges = cert.edges();
    if edges.is_empty() {
        return Err("empty certificate".into());
    }
    let mut sum: i64 = 0;
    for (i, edge) in edges.iter().enumerate() {
        let next = &edges[(i + 1) % edges.len()];
        // Chaining by *name*: the variables' display strings are the
        // cross-tool identity (the JSON renderer and CI's python
        // replayer use the same strings).
        if edge.minuend.display() != next.subtrahend.display() {
            return Err(format!(
                "edge {i} ends at {} but edge {} starts at {}",
                edge.minuend.display(),
                (i + 1) % edges.len(),
                next.subtrahend.display()
            ));
        }
        sum = sum.checked_add(edge.bound).ok_or("bound sum overflow")?;
    }
    if sum >= 0 {
        return Err(format!("bounds telescope to {sum} >= 0"));
    }
    Ok(sum)
}

/// Whether the full lint rule set denies the program for a *deadline*
/// reason — the half of the analyzer whose semantics the solver
/// re-derives (structural rules like AP05 have no feasibility content).
fn lint_denies_deadlines(program: &BroadcastProgram, ladder: &GroupLadder) -> bool {
    let report = lint(
        &LintInput::for_program(program, ladder),
        &LintConfig::default(),
    );
    report.diagnostics().iter().any(|d| {
        d.severity == Severity::Deny
            && matches!(
                d.rule,
                RuleId::ExpectedTimeGap
                    | RuleId::FirstAppearanceLate
                    | RuleId::NeverBroadcast
                    | RuleId::ChannelsBelowMinimum
            )
    })
}

/// Asserts the three-way agreement on one program, independently
/// replaying the certificate when the verdict is infeasible.
fn assert_verdicts_agree(program: &BroadcastProgram, ladder: &GroupLadder, context: &str) {
    let verdict = check_program(program, ladder);
    let valid = validity::check(program, ladder).is_valid();
    assert_eq!(
        verdict.is_feasible(),
        valid,
        "{context}: solver {} but validity {valid}",
        verdict.is_feasible(),
    );
    let lint_deny = lint_denies_deadlines(program, ladder);
    assert_eq!(
        verdict.is_feasible(),
        !lint_deny,
        "{context}: solver {} but lint deadline-deny {lint_deny}",
        verdict.is_feasible(),
    );
    if let Some(cert) = verdict.certificate() {
        let sum =
            independent_replay(cert).unwrap_or_else(|e| panic!("{context}: replay failed: {e}"));
        assert!(sum < 0, "{context}: replayed sum {sum} not negative");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.1's closed form and the solver's binary search over
    /// actual negative-cycle probes find the same minimum on any ladder.
    #[test]
    fn solver_minimum_matches_theorem_bound(ladder in arb_ladder()) {
        let solver_min = minimal_feasible_channels(&ladder).unwrap();
        prop_assert_eq!(solver_min, minimum_channels(&ladder));
    }

    /// Ladder-mode verdicts flip from infeasible (with a replayable
    /// certificate) to feasible (with a validity-clean witness) exactly
    /// at the minimum.
    #[test]
    fn ladder_verdicts_bracket_the_minimum(ladder in arb_ladder()) {
        let min = minimum_channels(&ladder);
        for n in min.saturating_sub(2)..=min + 1 {
            let verdict = check_ladder(&ladder, n).unwrap();
            prop_assert_eq!(verdict.is_feasible(), n >= min, "n = {}", n);
            match (verdict.witness(), verdict.certificate()) {
                (Some(witness), None) => {
                    prop_assert!(validity::check(witness, &ladder).is_valid());
                }
                (None, Some(cert)) => {
                    prop_assert!(independent_replay(cert).unwrap() < 0);
                }
                _ => prop_assert!(false, "verdict is neither witness nor certificate"),
            }
        }
    }

    /// A pristine SUSC program at the minimum passes all three judges.
    #[test]
    fn pristine_programs_agree_feasible(ladder in arb_ladder()) {
        let min = minimum_channels(&ladder);
        let program = susc::schedule(&ladder, min).unwrap();
        assert_verdicts_agree(&program, &ladder, "pristine");
        prop_assert!(check_program(&program, &ladder).is_feasible());
    }

    /// Every mutilation helper's output gets the same verdict from the
    /// solver, `validity::check`, and the lint deadline rules — and
    /// every infeasibility certificate replays independently.
    #[test]
    fn mutilated_programs_agree_exactly(
        ladder in arb_ladder(),
        victim_seed in 0u64..1000,
    ) {
        let min = minimum_channels(&ladder);
        let program = susc::schedule(&ladder, min).unwrap();
        let victim = PageId::new(
            u32::try_from(victim_seed % ladder.total_pages()).unwrap(),
        );
        let mutations: Vec<(&str, BroadcastProgram)> = vec![
            ("drop_page", mutilate::drop_page(&program, victim)),
            (
                "thin_to_first_occurrence",
                mutilate::thin_to_first_occurrence(&program, victim),
            ),
            (
                "delay_first_appearance",
                mutilate::delay_first_appearance(&program, victim),
            ),
        ];
        for (name, mutated) in &mutations {
            assert_verdicts_agree(mutated, &ladder, name);
        }
        // Duplication wastes capacity but breaks no deadline: all three
        // judges must keep calling the program feasible.
        if let Some(duplicated) = mutilate::duplicate_in_column(&program, victim) {
            assert_verdicts_agree(&duplicated, &ladder, "duplicate_in_column");
            prop_assert!(check_program(&duplicated, &ladder).is_feasible());
        }
    }
}

/// The irregular-ladder regime (divisibility without a uniform ratio):
/// the same exact agreement holds where the geometric rearrangement
/// machinery does not apply.
#[test]
fn irregular_ladder_verdicts_agree() {
    let ladder = GroupLadder::new(vec![(2, 1), (4, 2), (12, 6)]).unwrap();
    assert!(ladder.uniform_ratio().is_none());
    let min = minimum_channels(&ladder);
    assert_eq!(minimal_feasible_channels(&ladder).unwrap(), min);
    for n in 1..=min + 1 {
        let verdict = check_ladder(&ladder, n).unwrap();
        assert_eq!(verdict.is_feasible(), n >= min, "n = {n}");
        if let Some(cert) = verdict.certificate() {
            assert!(independent_replay(cert).unwrap() < 0);
        }
        if let Some(witness) = verdict.witness() {
            assert!(validity::check(witness, &ladder).is_valid());
            let report = lint(
                &LintInput::for_program(witness, &ladder),
                &LintConfig::default(),
            );
            // The only acceptable finding is the ladder-shape warning —
            // irregular ladders are non-geometric by construction; the
            // *program* must draw no diagnostics at all.
            assert!(
                report
                    .diagnostics()
                    .iter()
                    .all(|d| d.rule == RuleId::NonGeometricLadder),
                "{report}"
            );
        }
    }
}
