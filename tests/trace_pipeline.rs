//! Cross-crate integration tests for the intra-slot tracing pipeline.
//!
//! These pin the three contracts the tracer makes to its consumers:
//!
//! * **Transparency** — attaching a tracer never changes the broadcast:
//!   a traced chaos run produces the same `TickOutcome` stream and
//!   statistics as an untraced twin, slot for slot;
//! * **Determinism** — with normalized timestamps, equal seeds render
//!   byte-identical Chrome trace JSON, for any seed and sampling period
//!   (checked by property);
//! * **Alerting** — a blackout that blows the deadline budget raises an
//!   `SloBurn` flight-recorder event and captures a postmortem, visible
//!   from outside the server crate exactly as `airsched top` sees it.

use airsched_core::types::{ChannelId, PageId};
use airsched_obs::events::Event as ObsEvent;
use airsched_obs::Obs;
use airsched_server::{FaultPlan, Station};
use airsched_trace::{SloConfig, Trace, TraceConfig};
use proptest::prelude::*;

fn ch(n: u32) -> ChannelId {
    ChannelId::new(n)
}

fn page(n: u32) -> PageId {
    PageId::new(n)
}

/// Four channels and a harmonic six-page catalogue — the same storm rig
/// the chaos suite uses, so fault behaviour here matches `chaos_station`.
const CATALOGUE: [(u32, u64); 6] = [(0, 2), (1, 4), (2, 8), (3, 16), (4, 4), (5, 8)];

fn storm_station(plan: &FaultPlan) -> Station {
    let mut station = Station::with_faults(4, 16, plan).unwrap();
    for (p, t) in CATALOGUE {
        station.publish(page(p), t).unwrap();
    }
    station
}

fn seeded_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_outage(0.03)
        .with_recovery(0.2)
        .with_stalls(0.05)
        .with_corruption(0.05)
}

fn tracer(sample_every: u64) -> Trace {
    Trace::new(TraceConfig {
        sample_every,
        ring_capacity: 64,
        slo: SloConfig::default(),
    })
}

/// Drive a seeded chaos run with the given tracer attached and return
/// the normalized Chrome trace.
fn traced_chaos_render(seed: u64, sample_every: u64, slots: u64) -> String {
    let mut station = storm_station(&seeded_plan(seed));
    let trace = tracer(sample_every);
    station.attach_trace(&trace);
    for t in 0..slots {
        if t % 5 == 0 {
            station.subscribe(page((t % 6) as u32)).unwrap();
        }
        station.tick();
    }
    trace.render_chrome(true)
}

/// Transparency: the tracer observes the slot pipeline without bending
/// it. A traced station under a seeded storm stays bit-identical to an
/// untraced twin across outcomes, stats and mode.
#[test]
fn traced_chaos_run_matches_plain_run() {
    let plan = seeded_plan(0x7A8CE);
    let mut plain = storm_station(&plan);
    let mut traced = storm_station(&plan);
    let trace = tracer(1);
    traced.attach_trace(&trace);
    for t in 0..600u64 {
        if t % 5 == 0 {
            assert_eq!(
                plain.subscribe(page((t % 6) as u32)).unwrap(),
                traced.subscribe(page((t % 6) as u32)).unwrap()
            );
        }
        assert_eq!(plain.tick(), traced.tick(), "diverged at slot {t}");
    }
    assert_eq!(plain.stats(), traced.stats());
    assert_eq!(plain.mode(), traced.mode());
    let snap = trace.snapshot();
    assert_eq!(snap.slots, 600);
    assert_eq!(snap.sampled, 600, "sampling 1/1 captures every slot");
}

/// The rendered Chrome trace is structurally sound: every span that
/// opens closes, pipeline and drain-chunk lanes are named, and the
/// metadata footer echoes the sampling period.
#[test]
fn chrome_trace_is_well_formed() {
    let doc = traced_chaos_render(42, 4, 256);
    assert!(doc.starts_with("{\"traceEvents\":["), "doc: {doc:.>40}");
    assert!(doc.trim_end().ends_with('}'), "JSON object closes");
    let begins = doc.matches("\"ph\":\"B\"").count();
    let ends = doc.matches("\"ph\":\"E\"").count();
    assert!(begins > 0, "sampled slots produce spans");
    assert_eq!(begins, ends, "every span that opens closes");
    assert!(doc.contains("\"slot-pipeline\""), "pipeline lane is named");
    assert!(doc.contains("\"name\":\"slot\""), "root span present");
    assert!(doc.contains("\"sampleEvery\":4"));
    assert!(doc.contains("\"normalized\":true"));
}

/// Alerting end to end: a full blackout parks a crowd past its
/// deadline; restoration serves them all late, burning both SLO
/// windows. The alert must land in the flight recorder and trip a
/// postmortem capture — the cross-crate view a dashboard relies on.
#[test]
fn slo_burn_alert_reaches_the_flight_recorder() {
    let mut station = Station::new(2, 8).unwrap();
    station.publish(page(0), 2).unwrap();
    station.publish(page(1), 4).unwrap();
    station.publish(page(2), 8).unwrap();
    let obs = Obs::new();
    station.attach_obs(&obs);
    let trace = tracer(1);
    station.attach_trace(&trace);

    for _ in 0..8 {
        station.subscribe(page(0)).unwrap();
    }
    station.fail_channel(ch(0));
    station.fail_channel(ch(1));
    station.run(80);
    assert_eq!(
        trace.snapshot().slo_burns,
        0,
        "a dark station delivers nothing, so nothing misses"
    );

    station.restore_channel(ch(0));
    station.restore_channel(ch(1));
    station.run(8);

    let snap = trace.snapshot();
    assert!(snap.slo_burns >= 1, "burn alert fires: {snap:?}");
    assert!(snap.fast_hit_milli < 1000, "fast window saw the misses");
    let events = obs.recent_events(256);
    let burn = events
        .iter()
        .find(|e| matches!(e, ObsEvent::SloBurn { .. }))
        .expect("SloBurn event in the flight recorder");
    if let ObsEvent::SloBurn {
        fast_burn_milli,
        threshold_milli,
        ..
    } = burn
    {
        assert!(fast_burn_milli >= threshold_milli);
    }
    assert!(
        obs.take_postmortems()
            .iter()
            .any(|p| p.trigger == "slo_burn"),
        "burn captures a postmortem"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Determinism by property: for any seed and sampling period, two
    /// identically-driven chaos runs render byte-identical normalized
    /// Chrome traces. This is the contract that makes the checked-in
    /// golden (`tests/golden/trace_slot.json`) meaningful.
    #[test]
    fn normalized_trace_is_seed_deterministic(
        seed in 0u64..1_000_000,
        sample_every in 1u64..=16,
    ) {
        let a = traced_chaos_render(seed, sample_every, 192);
        let b = traced_chaos_render(seed, sample_every, 192);
        prop_assert_eq!(a, b);
    }

    /// Different sampling periods agree on what they saw: the sampled
    /// counter is exactly `ceil(slots / sample_every)` regardless of
    /// the storm raging around the tracer.
    #[test]
    fn sampling_period_is_honoured_under_chaos(
        seed in 0u64..1_000_000,
        sample_every in 1u64..=16,
    ) {
        let mut station = storm_station(&seeded_plan(seed));
        let trace = tracer(sample_every);
        station.attach_trace(&trace);
        let slots = 100u64;
        for t in 0..slots {
            if t % 5 == 0 {
                station.subscribe(page((t % 6) as u32)).unwrap();
            }
            station.tick();
        }
        let snap = trace.snapshot();
        // The snapshot's slot counter rides the SLO mirror, which the
        // station refreshes every 8th slot — at most 7 slots stale.
        prop_assert!(snap.slots <= slots && snap.slots + 8 > slots);
        prop_assert_eq!(snap.sampled, slots.div_ceil(sample_every));
    }
}
