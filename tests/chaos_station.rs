//! Chaos-style integration tests for the fault-tolerant broadcast station.
//!
//! A scripted outage storm walks the station down the whole degradation
//! ladder (Valid → Repacked → BestEffort → Offline) and back up, while
//! clients keep subscribing. The tests pin the ladder's contract:
//!
//! * the station claims a *valid* mode (`Valid` or `Repacked`) only while
//!   every delivery whose wait is fully contained in the current plan
//!   epoch meets its deadline;
//! * failover to PAMAD best-effort happens exactly when the survivor
//!   count drops below the catalogue's Theorem 3.1 minimum;
//! * SUSC service (`Mode::Valid`) is restored after recovery, and no
//!   in-flight subscription is lost anywhere along the way;
//! * the fault injector is fully deterministic: equal seeds give equal
//!   `TickOutcome` streams.

use airsched_core::bound::minimum_channels_for_times;
use airsched_core::types::{ChannelId, PageId};
use airsched_obs::events::{Event, HealthTransition};
use airsched_obs::Obs;
use airsched_server::{ChannelEvent, FaultEvent, FaultPlan, Mode, Station};

fn ch(n: u32) -> ChannelId {
    ChannelId::new(n)
}

fn page(n: u32) -> PageId {
    PageId::new(n)
}

/// Four channels, a 16-slot cycle, and a harmonic catalogue whose demand
/// fraction is 1.3125 — so Theorem 3.1 says two survivors still suffice.
const CATALOGUE: [(u32, u64); 6] = [(0, 2), (1, 4), (2, 8), (3, 16), (4, 4), (5, 8)];

fn storm_station(plan: &FaultPlan) -> Station {
    let mut station = Station::with_faults(4, 16, plan).unwrap();
    for (p, t) in CATALOGUE {
        station.publish(page(p), t).unwrap();
    }
    station
}

fn catalogue_minimum(station: &Station) -> u32 {
    let times: Vec<u64> = station.catalogue().values().copied().collect();
    minimum_channels_for_times(&times).unwrap()
}

/// The mode the ladder promises for a given survivor count, for a
/// harmonic catalogue (where the SUSC re-pack always succeeds at or
/// above the minimum).
fn expected_mode(survivors: u32, configured: u32, minimum: u32) -> Mode {
    if survivors == 0 {
        Mode::Offline
    } else if survivors == configured {
        Mode::Valid
    } else if survivors >= minimum {
        Mode::Repacked
    } else {
        Mode::BestEffort
    }
}

/// The full storm: channels die one by one until the station is dark,
/// then recover one by one. Checks mode-vs-survivor agreement on every
/// tick, the valid-mode deadline guarantee for epoch-contained waits,
/// the stats counters, and that every subscription survives.
#[test]
fn scripted_storm_walks_the_ladder_and_keeps_promises() {
    let script = vec![
        FaultEvent::Down {
            at: 20,
            channel: ch(3),
        },
        FaultEvent::Down {
            at: 40,
            channel: ch(2),
        },
        FaultEvent::Down {
            at: 60,
            channel: ch(1),
        },
        FaultEvent::Down {
            at: 80,
            channel: ch(0),
        },
        FaultEvent::Up {
            at: 90,
            channel: ch(0),
        },
        FaultEvent::Up {
            at: 100,
            channel: ch(1),
        },
        FaultEvent::Up {
            at: 120,
            channel: ch(2),
        },
        FaultEvent::Up {
            at: 140,
            channel: ch(3),
        },
    ];
    let mut station = storm_station(&FaultPlan::scripted(script));
    let minimum = catalogue_minimum(&station);
    assert_eq!(
        minimum, 2,
        "harmonic catalogue chosen so two survivors suffice"
    );

    // The plan epoch starts whenever the on-air plan is re-derived — on
    // any channel transition, even one that does not change the mode
    // (e.g. Repacked on 3 survivors -> Repacked on 2). A wait contained
    // in one epoch ran entirely under a single plan.
    let mut epoch_start = 0u64;
    let mut next_page = 0u32;
    let mut subscribed = 0u64;
    let mut delivered = 0u64;
    let mut late_in_valid_epoch = 0u64;

    for t in 0..200u64 {
        if t < 180 && t % 3 == 0 {
            station.subscribe(page(next_page % 6)).unwrap();
            next_page += 1;
            subscribed += 1;
        }
        let out = station.tick();
        assert_eq!(out.time, t);
        assert_eq!(out.on_air.len(), 4);

        if out
            .events
            .iter()
            .any(|e| matches!(e, ChannelEvent::Down { .. } | ChannelEvent::Up { .. }))
        {
            epoch_start = t;
        }

        let survivors = station.channels_up();
        assert_eq!(
            out.mode,
            expected_mode(survivors, 4, minimum),
            "slot {t}: {survivors} survivors"
        );

        // Down channels never transmit.
        for (c, slot) in out.on_air.iter().enumerate() {
            if !station.is_channel_up(ch(u32::try_from(c).unwrap())) {
                assert_eq!(*slot, None, "slot {t} channel {c}");
            }
        }

        for d in &out.deliveries {
            delivered += 1;
            let since = t + 1 - d.wait;
            if since >= epoch_start && out.mode.is_valid() && !d.within_deadline {
                late_in_valid_epoch += 1;
            }
        }
    }

    // The core robustness promise: while the station claimed a valid
    // mode, no wait that ran under a single plan missed its deadline.
    assert_eq!(late_in_valid_epoch, 0);

    // SUSC restored after the last recovery, nobody left behind.
    assert_eq!(station.mode(), Mode::Valid);
    assert_eq!(station.channels_up(), 4);
    assert_eq!(
        delivered, subscribed,
        "every subscription is eventually served"
    );
    assert_eq!(station.stats().waiting, 0);

    let stats = station.stats();
    // Into BestEffort twice: going down past the minimum, and climbing
    // back up out of Offline.
    assert_eq!(stats.failovers, 2);
    // Into Repacked twice: first channel loss, and the climb back from
    // BestEffort (further losses within the Repacked rung don't count).
    assert_eq!(stats.repacks, 2);
    assert_eq!(stats.recoveries, 1);
    // Slots 20..140 ran in a non-Valid mode.
    assert_eq!(stats.degraded_slots, 120);

    // Per-mode tallies partition the global counters.
    let modes = [Mode::Valid, Mode::Repacked, Mode::BestEffort, Mode::Offline];
    let per_mode_delivered: u64 = modes.iter().map(|&m| stats.per_mode(m).delivered).sum();
    let per_mode_on_time: u64 = modes.iter().map(|&m| stats.per_mode(m).on_time).sum();
    assert_eq!(per_mode_delivered, stats.delivered);
    assert_eq!(per_mode_on_time, stats.on_time);
    assert!(stats.per_mode(Mode::Repacked).delivered > 0);
    assert!(stats.per_mode(Mode::BestEffort).delivered > 0);
}

/// Failover to PAMAD happens *exactly* when the survivors drop below the
/// Theorem 3.1 minimum: one channel above the line stays Repacked, one
/// below goes BestEffort, and recovery steps straight back.
#[test]
fn pamad_failover_triggers_exactly_below_the_minimum() {
    let mut station = storm_station(&FaultPlan::scripted(vec![]));
    let minimum = catalogue_minimum(&station);

    // Walk down manually so each rung is observable between ticks.
    let mut expected = Vec::new();
    for c in (0..4u32).rev() {
        let mode = station.fail_channel(ch(c));
        expected.push((station.channels_up(), mode));
    }
    for (survivors, mode) in expected {
        assert_eq!(
            mode,
            expected_mode(survivors, 4, minimum),
            "{survivors} survivors"
        );
        // The boundary itself: BestEffort if and only if below minimum.
        assert_eq!(
            mode == Mode::BestEffort,
            survivors > 0 && survivors < minimum
        );
    }

    for c in 0..4u32 {
        let mode = station.restore_channel(ch(c));
        assert_eq!(mode, expected_mode(station.channels_up(), 4, minimum));
    }
    assert_eq!(station.mode(), Mode::Valid);
}

/// A subscription made while the station is completely dark is not lost:
/// it is served after recovery, with the outage time counted against its
/// (necessarily missed) deadline.
#[test]
fn subscriptions_survive_a_total_outage() {
    let mut station = storm_station(&FaultPlan::scripted(vec![]));
    for c in 0..4u32 {
        station.fail_channel(ch(c));
    }
    assert_eq!(station.mode(), Mode::Offline);

    let client = station.subscribe(page(0)).unwrap();
    let dark = station.run(30);
    assert!(dark.is_empty(), "a dark station delivers nothing");

    for c in 0..4u32 {
        station.restore_channel(ch(c));
    }
    let after = station.run(16);
    let served = after.iter().find(|d| d.client == client).expect("served");
    assert!(served.wait > 30, "the outage counts toward the wait");
    assert!(!served.within_deadline);
    assert_eq!(station.stats().waiting, 0);
}

/// A seeded random storm (outage-prone but recovery-dominant, with
/// stalls and corruption mixed in) never strands a subscriber: once the
/// faults stop and the channels are restored, the backlog drains within
/// one cycle.
#[test]
fn random_storm_drains_once_faults_stop() {
    let plan = FaultPlan::seeded(0xC4A05)
        .with_outage(0.02)
        .with_recovery(0.25)
        .with_stalls(0.05)
        .with_corruption(0.05);
    let mut station = storm_station(&plan);

    let mut subscribed = 0u64;
    for t in 0..900u64 {
        if t % 5 == 0 {
            station.subscribe(page((t % 6) as u32)).unwrap();
            subscribed += 1;
        }
        let out = station.tick();
        assert_eq!(out.on_air.len(), 4);
        assert_eq!(out.corrupted.len(), 4);
        for (corrupt, slot) in out.corrupted.iter().zip(&out.on_air) {
            if *corrupt {
                assert!(slot.is_some(), "corruption implies a transmission");
            }
        }
    }
    assert!(subscribed > 0);

    // Stop the weather, restore everything, and give the station one
    // full cycle of calm air.
    station.set_fault_plan(&FaultPlan::scripted(vec![]));
    for c in 0..4u32 {
        station.restore_channel(ch(c));
    }
    station.run(16);
    assert_eq!(station.mode(), Mode::Valid);
    assert_eq!(
        station.stats().waiting,
        0,
        "the backlog drains under calm air"
    );
    assert_eq!(station.stats().delivered, subscribed);
}

/// The acceptance criterion for the injector: two stations built from
/// the same seed, catalogue and client schedule produce bit-identical
/// `TickOutcome` streams and statistics.
#[test]
fn equal_seeds_give_identical_chaos_runs() {
    let plan = FaultPlan::seeded(77)
        .with_outage(0.04)
        .with_recovery(0.2)
        .with_stalls(0.08)
        .with_corruption(0.1);
    let mut a = storm_station(&plan);
    let mut b = storm_station(&plan);
    for t in 0..400u64 {
        if t % 7 == 0 {
            a.subscribe(page((t % 6) as u32)).unwrap();
            b.subscribe(page((t % 6) as u32)).unwrap();
        }
        assert_eq!(a.tick(), b.tick(), "slot {t}");
    }
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.mode(), b.mode());
}

/// A corrupted replan pipeline: every candidate the ladder produces has
/// page 0 (the tightest deadline) stripped out before the lint gate.
fn strip_page0(
    program: &airsched_core::program::BroadcastProgram,
) -> airsched_core::program::BroadcastProgram {
    use airsched_core::types::{GridPos, SlotIndex};
    let mut out =
        airsched_core::program::BroadcastProgram::new(program.channels(), program.cycle_len());
    for channel in 0..program.channels() {
        for slot in 0..program.cycle_len() {
            let pos = GridPos::new(ch(channel), SlotIndex::new(slot));
            if let Some(p) = program.page_at(pos) {
                if p != page(0) {
                    out.place(pos, p).unwrap();
                }
            }
        }
    }
    out
}

/// The acceptance scenario for the pre-swap lint gate: an outage forces a
/// replan, the replan pipeline is corrupted (a page vanishes), and the
/// station must refuse the swap and keep serving the previous, vetted
/// program instead of airing the corrupt one.
#[test]
fn corrupted_replan_is_rejected_and_previous_program_keeps_serving() {
    let plan = FaultPlan::scripted(vec![FaultEvent::Down {
        at: 8,
        channel: ch(3),
    }]);
    let mut station = storm_station(&plan);
    station.set_plan_corruptor(Some(strip_page0));

    // Healthy spell: the full plan airs, page 0 included.
    let client = station.subscribe(page(0)).unwrap();
    let outcome = station.run(8);
    assert!(outcome
        .iter()
        .any(|d| d.client == client && d.within_deadline));

    // Slot 8: channel 3 dies. Three survivors meet the minimum, so the
    // ladder proposes a re-pack — which the corruptor mutilates and the
    // gate must refuse; the PAMAD fallback is mutilated and refused too.
    let tick = station.tick();
    assert_eq!(
        tick.events,
        vec![ChannelEvent::Down {
            channel: ch(3),
            at: 8
        }]
    );
    assert_eq!(station.mode(), Mode::Valid, "corrupt plan was installed");
    assert_eq!(station.stats().plan_rejections, 2);
    assert_eq!(station.stats().repacks, 0);
    assert_eq!(station.stats().failovers, 0);

    // The previous program keeps serving: page 0 still airs on the
    // survivors and new subscribers to it are still delivered on time.
    let client = station.subscribe(page(0)).unwrap();
    let mut served = false;
    for _ in 0..4 {
        let tick = station.tick();
        assert_eq!(tick.on_air[3], None, "down channel aired");
        for d in &tick.deliveries {
            if d.client == client {
                assert!(d.within_deadline, "{d:?}");
                served = true;
            }
        }
    }
    assert!(served, "previous program stopped serving page 0");

    // Fixing the pipeline and re-running the ladder installs the re-pack.
    station.set_plan_corruptor(None);
    station.restore_channel(ch(3));
    assert_eq!(station.mode(), Mode::Valid);
    assert_eq!(station.fail_channel(ch(3)), Mode::Repacked);
    assert_eq!(station.stats().plan_rejections, 2, "clean replan refused");
}

/// The storm script shared by the observability tests: the same walk down
/// the ladder and back as `scripted_storm_walks_the_ladder_and_keeps_promises`.
fn storm_script() -> Vec<FaultEvent> {
    let down = [(20, 3), (40, 2), (60, 1), (80, 0)];
    let up = [(90, 0), (100, 1), (120, 2), (140, 3)];
    down.iter()
        .map(|&(at, c)| FaultEvent::Down { at, channel: ch(c) })
        .chain(
            up.iter()
                .map(|&(at, c)| FaultEvent::Up { at, channel: ch(c) }),
        )
        .collect()
}

/// Drives the scripted storm with an `Obs` handle attached and hands back
/// the station and handle for inspection.
fn observed_storm() -> (Station, Obs) {
    let mut station = storm_station(&FaultPlan::scripted(storm_script()));
    let obs = Obs::with_recorder_capacity(4096);
    station.attach_obs(&obs);
    for t in 0..200u64 {
        if t < 180 && t % 3 == 0 {
            station.subscribe(page((t % 6) as u32)).unwrap();
        }
        station.tick();
    }
    (station, obs)
}

/// The flight recorder and metrics registry tell the same story as the
/// station's own statistics, end to end through the full storm: counters
/// mirror stats exactly, and the `ModeChange` event stream is precisely
/// the ladder walk (with `ChannelHealth` events at the scripted slots).
#[test]
fn flight_recorder_mirrors_the_storm() {
    let (station, obs) = observed_storm();
    let stats = station.stats();
    let snap = obs.snapshot();

    for (metric, want) in [
        ("airsched_station_slots_total", stats.slots_elapsed),
        ("airsched_station_delivered_total", stats.delivered),
        ("airsched_station_on_time_total", stats.on_time),
        (
            "airsched_station_deadline_miss_total",
            stats.delivered - stats.on_time,
        ),
        (
            "airsched_station_degraded_slots_total",
            stats.degraded_slots,
        ),
        ("airsched_station_mode_changes_total", stats.mode_changes),
        ("airsched_station_wait_slots", stats.delivered),
    ] {
        assert_eq!(snap.scalar_total(metric), want, "{metric}");
    }

    let events = obs.recent_events(4096);
    let changes: Vec<(String, String, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::ModeChange { from, to, slot, .. } => Some((from.clone(), to.clone(), *slot)),
            _ => None,
        })
        .collect();
    let ladder = [
        ("valid", "repacked", 20),
        ("repacked", "best-effort", 60),
        ("best-effort", "offline", 80),
        ("offline", "best-effort", 90),
        ("best-effort", "repacked", 100),
        ("repacked", "valid", 140),
    ];
    assert_eq!(changes.len(), ladder.len());
    assert_eq!(changes.len() as u64, stats.mode_changes);
    for ((from, to, slot), want) in changes.iter().zip(ladder) {
        assert_eq!(
            (from.as_str(), to.as_str(), *slot),
            want,
            "ladder walk diverges"
        );
    }

    // One ChannelHealth event per scripted transition, at its slot.
    let health: Vec<(u32, u64, HealthTransition)> = events
        .iter()
        .filter_map(|e| match e {
            Event::ChannelHealth {
                ch,
                slot,
                transition,
            } => Some((*ch, *slot, *transition)),
            _ => None,
        })
        .collect();
    let downs = [(3, 20), (2, 40), (1, 60), (0, 80)];
    let ups = [(0, 90), (1, 100), (2, 120), (3, 140)];
    for (c, at) in downs {
        assert!(
            health.contains(&(c, at, HealthTransition::Down)),
            "missing Down for channel {c} at {at}"
        );
    }
    for (c, at) in ups {
        assert!(
            health.contains(&(c, at, HealthTransition::Up)),
            "missing Up for channel {c} at {at}"
        );
    }

    // The Prometheus exposition carries the same numbers: the unlabelled
    // slot counter verbatim, and the per-mode delivered series by label.
    let prom = obs.render_prometheus();
    assert!(prom.contains(&format!(
        "airsched_station_slots_total {}",
        stats.slots_elapsed
    )));
    assert!(prom.contains("airsched_station_delivered_total{mode=\"best-effort\"}"));
}

/// Dropping onto a non-valid rung auto-captures a black-box postmortem
/// whose trailing event window contains the cause: the `ChannelHealth`
/// transition that triggered the drop, then the `ModeChange` itself.
#[test]
fn best_effort_degradation_dumps_a_postmortem() {
    let (_station, obs) = observed_storm();
    let dumps = obs.take_postmortems();

    // BestEffort at 60, Offline at 80, and BestEffort again at 90 while
    // climbing back out — three black-box moments.
    let triggers: Vec<(&str, u64)> = dumps
        .iter()
        .map(|pm| (pm.trigger.as_str(), pm.slot))
        .collect();
    assert_eq!(
        triggers,
        [("best-effort", 60), ("offline", 80), ("best-effort", 90)]
    );

    let first = &dumps[0];
    assert!(!first.events.is_empty(), "postmortem carries history");
    // The last event in the window is the ModeChange that triggered the
    // dump, and the causal ChannelHealth Down precedes it.
    assert!(
        matches!(
            first.events.last(),
            Some(Event::ModeChange { to, slot: 60, .. }) if to == "best-effort"
        ),
        "postmortem ends with its trigger: {:?}",
        first.events.last()
    );
    let cause = first.events.iter().position(|e| {
        matches!(
            e,
            Event::ChannelHealth {
                ch: 1,
                slot: 60,
                transition: HealthTransition::Down
            }
        )
    });
    assert!(
        cause.is_some_and(|i| i < first.events.len() - 1),
        "causal ChannelHealth Down missing from the window"
    );

    // The dumps drain exactly once.
    assert!(obs.take_postmortems().is_empty());
}

/// Attaching observability never perturbs the broadcast: a plain station
/// and an instrumented one driven through the same seeded random storm
/// produce bit-identical `TickOutcome` streams and statistics.
#[test]
fn instrumented_chaos_run_is_bit_identical_to_plain() {
    let plan = FaultPlan::seeded(0x0B5)
        .with_outage(0.03)
        .with_recovery(0.2)
        .with_stalls(0.05)
        .with_corruption(0.08);
    let mut plain = storm_station(&plan);
    let mut observed = storm_station(&plan);
    let obs = Obs::with_recorder_capacity(4096);
    observed.attach_obs(&obs);

    for t in 0..600u64 {
        if t % 5 == 0 {
            let p = page((t % 6) as u32);
            assert_eq!(plain.subscribe(p).unwrap(), observed.subscribe(p).unwrap());
        }
        assert_eq!(plain.tick(), observed.tick(), "obs perturbed slot {t}");
    }
    assert_eq!(plain.stats(), observed.stats());
    assert_eq!(plain.mode(), observed.mode());
    // And the mirror still agrees with the (identical) stats.
    assert_eq!(
        obs.snapshot()
            .scalar_total("airsched_station_delivered_total"),
        plain.stats().delivered
    );
}
