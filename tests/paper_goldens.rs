//! Golden tests pinning every concrete number the paper states, across
//! crate boundaries.

use airsched_core::bound::{minimum_channels, minimum_channels_per_group};
use airsched_core::delay::{group_objective, major_cycle, Weighting};
use airsched_core::group::GroupLadder;
use airsched_core::pamad;
use airsched_core::rearrange::Rearrangement;
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

/// §3.1's example: P = (2, 3), t = (2, 4) needs `ceil(1.75) = 2` channels.
#[test]
fn theorem_31_example() {
    let ladder = GroupLadder::new(vec![(2, 2), (4, 3)]).unwrap();
    assert_eq!(minimum_channels(&ladder), 2);
    assert_eq!(minimum_channels_per_group(&ladder), 2);
}

/// §2's rearrangement example: times 2, 3, 4, 6, 9 -> 2, 2, 4, 4, 8 with
/// three groups t = (2, 4, 8) and c = 2.
#[test]
fn section_2_rearrangement_example() {
    let r = Rearrangement::with_ratio(&[2, 3, 4, 6, 9], 2).unwrap();
    assert_eq!(r.ladder().times(), &[2, 4, 8]);
    assert_eq!(r.ladder().page_counts(), &[2, 2, 1]);
    assert_eq!(r.ladder().uniform_ratio(), Some(2));
    let assigned: Vec<u64> = r.assignments().iter().map(|a| a.assigned_time).collect();
    assert_eq!(assigned, vec![2, 2, 4, 4, 8]);
}

/// Figure 2's complete walk-through: the stage objectives, the chosen
/// ratios, the final frequencies and the 9-slot cycle.
#[test]
fn figure_2_walkthrough() {
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)]).unwrap();
    // "From Equation (1) we know that four channels are minimally required".
    assert_eq!(minimum_channels(&ladder), 4);

    // Step 2: D'_2 = 0.12 at r1 = 1, D'_2 = 0 at r1 = 2.
    let d = group_objective(&[2, 4], &[3, 5], &[1, 1], 3, Weighting::PaperEq2);
    assert!((d - 0.125).abs() < 1e-9);
    let d = group_objective(&[2, 4], &[3, 5], &[2, 1], 3, Weighting::PaperEq2);
    assert_eq!(d, 0.0);

    // Step 3: D'_3 = 0.15 at r2 = 1, 0.04 at r2 = 2.
    let d = group_objective(&[2, 4, 8], &[3, 5, 3], &[2, 1, 1], 3, Weighting::PaperEq2);
    assert!((d - 0.15476190476).abs() < 1e-9);
    let d = group_objective(&[2, 4, 8], &[3, 5, 3], &[4, 2, 1], 3, Weighting::PaperEq2);
    assert!((d - 0.04166666667).abs() < 1e-8);

    // "S1 = 4, S2 = 2, S3 = 1" and "the cycle length is ceil(25/3) = 9".
    let outcome = pamad::schedule(&ladder, 3).unwrap();
    assert_eq!(outcome.plan().ratios(), &[2, 2]);
    assert_eq!(outcome.plan().frequencies(), &[4, 2, 1]);
    assert_eq!(major_cycle(&[3, 5, 3], &[4, 2, 1], 3), 9);
    assert_eq!(outcome.program().cycle_len(), 9);
    assert_eq!(outcome.program().occupied_slots(), 25);
}

/// Figure 4's parameter table is the library's default configuration.
#[test]
fn figure_4_defaults() {
    let ladder = WorkloadSpec::paper_defaults().build().unwrap();
    assert_eq!(ladder.total_pages(), 1000);
    assert_eq!(ladder.group_count(), 8);
    assert_eq!(ladder.times(), &[4, 8, 16, 32, 64, 128, 256, 512]);
    assert_eq!(ladder.uniform_ratio(), Some(2));
    let config = airsched_analysis::experiment::ExperimentConfig::paper_defaults();
    assert_eq!(config.requests, 3000);
}

/// Figure 3: every distribution produces exactly n pages over h groups
/// with its characteristic shape.
#[test]
fn figure_3_distribution_shapes() {
    for dist in GroupSizeDistribution::ALL {
        let counts = dist.page_counts(8, 1000);
        assert_eq!(counts.iter().sum::<u64>(), 1000, "{dist}");
    }
    let normal = GroupSizeDistribution::Normal.page_counts(8, 1000);
    assert!(normal[3] > normal[0] && normal[4] > normal[7]);
    let l = GroupSizeDistribution::LSkewed.page_counts(8, 1000);
    assert!(l.windows(2).all(|w| w[0] >= w[1]));
    let s = GroupSizeDistribution::SSkewed.page_counts(8, 1000);
    assert!(s.windows(2).all(|w| w[0] <= w[1]));
    let u = GroupSizeDistribution::Uniform.page_counts(8, 1000);
    assert_eq!(u, vec![125; 8]);
}

/// The tight bound differs from the typeset per-group formula exactly when
/// fractional parts pack; the paper's own example uses the tight one.
#[test]
fn bound_variants_disagree_where_expected() {
    let ladder = GroupLadder::new(vec![(2, 1), (4, 1)]).unwrap();
    assert_eq!(minimum_channels(&ladder), 1);
    assert_eq!(minimum_channels_per_group(&ladder), 2);
    // SUSC really does succeed at the tight bound here.
    let program = airsched_core::susc::schedule(&ladder, 1).unwrap();
    assert!(airsched_core::validity::check(&program, &ladder).is_valid());
}
