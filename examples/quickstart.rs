//! Quickstart: the whole pipeline on a small workload.
//!
//! Run with: `cargo run -p airsched-cli --example quickstart`

use airsched_core::bound::minimum_channels;
use airsched_core::group::GroupLadder;
use airsched_core::schedule::build_program;
use airsched_core::validity;
use airsched_sim::access::measure;
use airsched_workload::requests::{AccessPattern, RequestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A broadcast workload: 3 pages the clients expect within 2 slots,
    // 5 within 4 slots, 3 within 8 slots (the paper's Figure 2 data set).
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
    println!("workload: {ladder}");

    // Theorem 3.1: how many channels would satisfy everyone?
    let min = minimum_channels(&ladder);
    println!("minimum channels for zero delay: {min}");

    // With enough channels the facade picks SUSC and the program is valid:
    // no client ever waits past its expected time, whenever it tunes in.
    let outcome = build_program(&ladder, min)?;
    println!("\nwith {min} channels -> {}", outcome.algorithm());
    println!("{}", outcome.program().render_grid());
    let report = validity::check(outcome.program(), &ladder);
    println!("validity: {report}");

    // With fewer channels it switches to PAMAD and minimizes average delay.
    let scarce = build_program(&ladder, min - 1)?;
    println!(
        "\nwith {} channels -> {} (frequencies {:?})",
        min - 1,
        scarce.algorithm(),
        scarce.frequencies()
    );
    println!("{}", scarce.program().render_grid());

    // Measure what clients actually experience.
    let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 42);
    let requests = gen.take(3000, scarce.program().cycle_len());
    let (summary, _) = measure(scarce.program(), &ladder, &requests);
    println!("measured: {summary}");
    Ok(())
}
