//! A day in the life of a broadcast station.
//!
//! Runs the full `airsched-server` stack: a catalogue with tiered
//! freshness, a stream of subscribing clients, mid-day publishes and
//! expiries, and the live statistics an operator would watch — all on an
//! always-valid schedule.
//!
//! Run with: `cargo run -p airsched-cli --example broadcast_station`

use airsched_core::types::PageId;
use airsched_server::Station;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3 transmitters, 16-slot schedule.
    let mut station = Station::new(3, 16)?;

    // Opening catalogue: one breaking item, a few updates, background data.
    station.publish(PageId::new(0), 2)?;
    for i in 1..=4 {
        station.publish(PageId::new(i), 4)?;
    }
    for i in 5..=9 {
        station.publish(PageId::new(i), 8)?;
    }
    for i in 10..=15 {
        station.publish(PageId::new(i), 16)?;
    }
    println!(
        "catalogue: {} pages on {} channels",
        station.catalogue().len(),
        3
    );

    // Clients subscribe throughout the morning (a deterministic pattern
    // standing in for arrivals).
    for step in 0..64u32 {
        let page = PageId::new(step % 16);
        station.subscribe(page)?;
        let tick = station.tick();
        for d in &tick.deliveries {
            assert!(d.within_deadline, "late delivery: {d:?}");
        }
    }
    // Drain.
    station.run(16);
    let morning = station.stats();
    println!(
        "morning: {} deliveries, mean wait {:.2} slots, on-time {:.0}%",
        morning.delivered,
        morning.mean_wait(),
        morning.on_time_rate() * 100.0
    );

    // Midday reshuffle: the breaking item expires, two new urgent ones land.
    station.expire(PageId::new(0))?;
    station.publish(PageId::new(100), 2)?;
    station.publish(PageId::new(101), 2)?;
    println!(
        "midday reshuffle done; catalogue now {} pages",
        station.catalogue().len()
    );

    for step in 0..64u32 {
        let page = if step % 4 == 0 {
            PageId::new(100 + (step / 4) % 2)
        } else {
            PageId::new(1 + step % 15)
        };
        if station.catalogue().contains_key(&page) {
            station.subscribe(page)?;
        }
        station.tick();
    }
    station.run(16);

    let evening = station.stats();
    println!(
        "close of day: {} slots aired, {} deliveries, mean wait {:.2} \
         slots, on-time {:.0}%, {} still waiting",
        evening.slots_elapsed,
        evening.delivered,
        evening.mean_wait(),
        evening.on_time_rate() * 100.0,
        evening.waiting
    );
    Ok(())
}
