//! Chaos walkthrough: a broadcast station riding out an outage storm.
//!
//! Builds a four-transmitter station whose catalogue needs only two
//! channels in principle (Theorem 3.1), then feeds it a seeded storm of
//! outages, recoveries, stalls and corrupted frames on top of a scripted
//! total blackout. Watch the degradation ladder work:
//!
//! ```text
//! Valid ──channel loss──▶ Repacked ──below minimum──▶ BestEffort ──all dark──▶ Offline
//!   ▲                        │  ▲                        │  ▲                     │
//!   └────full complement─────┘  └──────≥ minimum─────────┘  └────any channel─────┘
//! ```
//!
//! The example prints every mode transition, then verifies the two
//! fault-tolerance promises end to end: the run is bit-identical under
//! the same seed, and no subscriber is stranded once calm air returns.
//!
//! The storm runs with a flight recorder attached
//! ([`airsched_obs::Obs`]): after the weather clears, the example replays
//! the outage from the recorder's point of view — the exported metrics,
//! the mode-change event stream, and the black-box postmortems captured
//! at each drop onto a non-valid rung. Attaching the recorder does not
//! change a single tick (the twin runs uninstrumented, and the streams
//! still compare equal).
//!
//! Run with: `cargo run -p airsched-cli --example chaos_station [seed]`

use airsched_core::types::{ChannelId, PageId};
use airsched_obs::events::Event;
use airsched_obs::Obs;
use airsched_server::{FaultEvent, FaultPlan, Mode, Station, TickOutcome};

/// Six pages on a 16-slot cycle: demand fraction 1.3125, so two of the
/// four transmitters are enough to keep the schedule valid.
const CATALOGUE: [(u32, u64); 6] = [(0, 2), (1, 4), (2, 8), (3, 16), (4, 4), (5, 8)];

const SLOTS: u64 = 600;

fn build_station(seed: u64) -> Result<Station, Box<dyn std::error::Error>> {
    // Random weather (seeded, so reruns are identical) plus a scripted
    // mid-run blackout that takes every transmitter down at once.
    let blackout: Vec<FaultEvent> = (0..4)
        .map(|c| FaultEvent::Down {
            at: 300,
            channel: ChannelId::new(c),
        })
        .chain((0..4).map(|c| FaultEvent::Up {
            at: 320 + 10 * u64::from(c),
            channel: ChannelId::new(c),
        }))
        .collect();
    let plan = FaultPlan::seeded(seed)
        .with_outage(0.01)
        .with_recovery(0.15)
        .with_stalls(0.03)
        .with_corruption(0.05)
        .with_script(blackout);

    let mut station = Station::with_faults(4, 16, &plan)?;
    for (p, t) in CATALOGUE {
        station.publish(PageId::new(p), t)?;
    }
    Ok(station)
}

/// One storm: subscribe steadily, tick, and report every mode change.
fn run_storm(station: &mut Station, verbose: bool) -> Vec<TickOutcome> {
    let mut outcomes = Vec::with_capacity(SLOTS as usize);
    let mut mode = station.mode();
    for t in 0..SLOTS {
        if t % 5 == 0 {
            let page = PageId::new(u32::try_from(t % 6).expect("small"));
            station.subscribe(page).expect("page is in the catalogue");
        }
        let out = station.tick();
        if out.mode != mode {
            if verbose {
                println!(
                    "slot {t:4}: {mode:>11} -> {next:<11} ({up}/4 transmitters up)",
                    mode = mode.to_string(),
                    next = out.mode.to_string(),
                    up = station.channels_up()
                );
            }
            mode = out.mode;
        }
        outcomes.push(out);
    }
    outcomes
}

/// Accepts decimal or `0x`-prefixed hex.
fn parse_seed(arg: &str) -> Result<u64, std::num::ParseIntError> {
    match arg.strip_prefix("0x").or_else(|| arg.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => arg.parse(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = match std::env::args().nth(1) {
        Some(arg) => parse_seed(&arg)?,
        None => 0xC4A05,
    };
    println!("chaos storm, seed {seed:#x}: {SLOTS} slots, 4 transmitters, 6 pages\n");

    let mut station = build_station(seed)?;
    let obs = Obs::with_recorder_capacity(4096);
    station.attach_obs(&obs);
    let outcomes = run_storm(&mut station, true);

    // Promise 1: determinism — and the flight recorder rides along for
    // free. The twin runs *uninstrumented*; equal streams prove the
    // recorder never perturbs the broadcast.
    let mut twin = build_station(seed)?;
    let twin_outcomes = run_storm(&mut twin, false);
    assert_eq!(outcomes, twin_outcomes, "equal seeds must give equal runs");
    println!("\ndeterminism: uninstrumented twin run with the same seed is bit-identical");

    // Promise 2: nobody is stranded. Stop the weather, restore all
    // transmitters, and the backlog drains within one cycle.
    station.set_fault_plan(&FaultPlan::scripted(vec![]));
    for c in 0..4 {
        station.restore_channel(ChannelId::new(c));
    }
    station.run(16);
    assert_eq!(
        station.mode(),
        Mode::Valid,
        "calm air restores SUSC service"
    );
    assert_eq!(station.stats().waiting, 0, "no subscriber left behind");

    let stats = station.stats();
    println!(
        "drained: {} deliveries for {} subscriptions, 0 waiting\n",
        stats.delivered,
        stats.delivered + stats.waiting
    );
    println!("mode        deliveries  on-time");
    for mode in [Mode::Valid, Mode::Repacked, Mode::BestEffort, Mode::Offline] {
        let tally = stats.per_mode(mode);
        println!(
            "{mode:<11} {delivered:>10}  {rate:>6.1}%",
            mode = mode.to_string(),
            delivered = tally.delivered,
            rate = tally.on_time_rate() * 100.0
        );
    }
    println!(
        "\nladder traffic: {} failovers to best-effort, {} SUSC re-packs, \
         {} full recoveries, {} of {} slots degraded",
        stats.failovers, stats.repacks, stats.recoveries, stats.degraded_slots, stats.slots_elapsed
    );

    // ------------------------------------------------------------------
    // The same storm, replayed from the flight recorder.
    // ------------------------------------------------------------------

    // The metrics registry mirrors the station's statistics exactly —
    // what a Prometheus scrape (or `airsched obs`) would show. Replan
    // timings carry wall-clock durations, so they are skipped here to
    // keep the walkthrough's output stable run to run.
    println!("\nexported metrics (excerpt):");
    for line in obs.snapshot().render_table().lines() {
        if line.starts_with("airsched_station_") && !line.contains("replan") {
            println!("  {line}");
        }
    }
    let snap = obs.snapshot();
    assert_eq!(
        snap.scalar_total("airsched_station_delivered_total"),
        stats.delivered,
        "the registry mirrors the station's own statistics"
    );

    // The typed event stream: every mode change the storm caused, in
    // order, with its cause — the printed ladder above, recovered from
    // the black box instead of the live run.
    println!("\nflight-recorder event stream (mode changes):");
    for event in obs.recent_events(4096) {
        if let Event::ModeChange {
            from,
            to,
            slot,
            cause,
        } = event
        {
            println!("  slot {slot:4}: {from} -> {to} ({cause})");
        }
    }

    // Every drop onto a non-valid rung captured a postmortem: the events
    // leading up to the drop, ready to be dumped when nobody was
    // watching the console. The last event in each window is the trigger
    // itself; the causal channel-health transitions precede it.
    let dumps = obs.take_postmortems();
    assert!(
        !dumps.is_empty(),
        "the blackout must have tripped at least one postmortem"
    );
    println!("\npostmortems captured at degradation points:");
    for pm in &dumps {
        println!(
            "  slot {:4} -> {} ({} events of history), tail:",
            pm.slot,
            pm.trigger,
            pm.events.len()
        );
        for event in pm.events.iter().rev().take(3).rev() {
            if !matches!(event, Event::ReplanTiming { .. }) {
                println!("    {}", event.to_jsonl());
            }
        }
    }
    Ok(())
}
