//! Online updates: a broadcast server whose catalogue changes live.
//!
//! News items are published with tight freshness requirements, served for a
//! while, then expire — without ever rebuilding the whole program. The
//! `OnlineScheduler` keeps the program valid through every add/remove, and
//! compacts (`rebuild_with`) when fragmentation blocks an admission.
//!
//! Run with: `cargo run -p airsched-cli --example online_updates`

use airsched_core::dynamic::OnlineScheduler;
use airsched_core::types::PageId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3 channels, 16-slot cycle: room for a mix of breaking news (t = 2),
    // updates (t = 4..8) and background content (t = 16).
    let mut sched = OnlineScheduler::new(3, 16)?;
    let mut next_id = 0u32;
    let mut publish = |sched: &mut OnlineScheduler, t: u64| -> PageId {
        let page = PageId::new(next_id);
        next_id += 1;
        match sched.add_page(page, t) {
            Ok(()) => println!("published {page} (t={t})"),
            Err(_) => {
                // Fragmented: compact together with the newcomer.
                sched
                    .rebuild_with(&[(page, t)])
                    .expect("capacity available after compaction");
                println!("published {page} (t={t}) after compaction");
            }
        }
        page
    };

    println!("-- morning: initial catalogue --");
    let breaking = publish(&mut sched, 2);
    for _ in 0..3 {
        publish(&mut sched, 4);
    }
    for _ in 0..4 {
        publish(&mut sched, 8);
    }
    for _ in 0..6 {
        publish(&mut sched, 16);
    }
    println!(
        "utilization {:.0}%\n{}",
        sched.utilization() * 100.0,
        sched.program().render_grid()
    );

    println!("-- noon: breaking story expires, two updates roll in --");
    sched.remove_page(breaking)?;
    publish(&mut sched, 2);
    publish(&mut sched, 4);
    println!(
        "utilization {:.0}%\n{}",
        sched.utilization() * 100.0,
        sched.program().render_grid()
    );

    // The invariant held throughout: every live page's gaps fit its
    // expected time.
    for (&page, &t) in sched.pages() {
        let gaps = sched.program().cyclic_gaps(page);
        assert!(gaps.iter().all(|&g| g <= t), "{page} violated t={t}");
    }
    println!(
        "all {} live pages meet their deadlines",
        sched.pages().len()
    );
    Ok(())
}
