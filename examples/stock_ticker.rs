//! Stock ticker scenario: arbitrary freshness requirements, impatient
//! clients, and the on-demand fallback channel.
//!
//! The paper's §1 motivating example: stock quotes lose their value if they
//! arrive late, and clients who give up on the broadcast hammer the pull
//! channel. This example starts from *raw* per-symbol freshness
//! requirements (not yet on a geometric ladder), rearranges them (§2),
//! schedules under a channel shortage, and runs the full discrete-event
//! simulation to see how much pull-channel congestion each scheduler
//! causes.
//!
//! Run with: `cargo run -p airsched-cli --example stock_ticker`

use airsched_core::bound::minimum_channels;
use airsched_core::rearrange::Rearrangement;
use airsched_core::{mpb, pamad};
use airsched_sim::sim::{SimConfig, Simulation};
use airsched_workload::requests::{AccessPattern, RequestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Freshness requirements (slots) for 40 symbols across tiers: hot
    // tech stocks want data within ~3 slots, blue chips within ~10,
    // bonds/ETFs are relaxed.
    let mut raw_times = Vec::new();
    raw_times.extend(std::iter::repeat_n(3, 8)); // hot movers
    raw_times.extend(std::iter::repeat_n(5, 6));
    raw_times.extend(std::iter::repeat_n(10, 10)); // blue chips
    raw_times.extend(std::iter::repeat_n(26, 10));
    raw_times.extend(std::iter::repeat_n(50, 6)); // slow instruments

    // Rearrange onto a geometric ladder (times round *down*, so every
    // original requirement still holds).
    let r = Rearrangement::with_ratio(&raw_times, 2)?;
    let ladder = r.ladder().clone();
    println!("rearranged workload: {ladder}");
    println!(
        "bandwidth slack from rounding: {:.2} (relative)",
        r.relative_slack()
    );

    let min = minimum_channels(&ladder);
    let available = (min / 2).max(1); // budget crunch: half the channels
    println!("minimum channels {min}, available {available}\n");

    // Clients: 4000 requests over a fixed horizon (same arrival rate for
    // every scheduler, so the on-demand comparison is apples to apples).
    let config = SimConfig {
        patience_factor: 1.5,
        ondemand_service_slots: 2,
        ondemand_servers: 2,
    };
    let horizon = 4000;

    for (name, program) in [
        ("PAMAD", pamad::schedule(&ladder, available)?.into_program()),
        ("m-PB ", mpb::schedule(&ladder, available)?.into_program()),
    ] {
        let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 2024);
        let requests = gen.take(4000, horizon);
        let report = Simulation::new(&program, &ladder, config).run(&requests);
        println!("== {name} (cycle {} slots) ==", program.cycle_len());
        println!("{report}\n");
    }

    println!(
        "note: the better the broadcast schedule, the fewer clients abandon \
         to the pull channel - the paper's core motivation."
    );
    Ok(())
}
