//! Capacity planning: how many channels does a deployment really need?
//!
//! Reproduces the paper's §5 headline observation on a mid-sized workload:
//! the average delay collapses long before the channel budget reaches the
//! Theorem 3.1 minimum — about one fifth of it is already "almost as good".
//!
//! Run with: `cargo run -p airsched-cli --example capacity_planning`

use airsched_analysis::experiment::{one_fifth_summary, sweep_channels, ExperimentConfig};
use airsched_analysis::report::{one_fifth_table, sweep_table};
use airsched_workload::distributions::GroupSizeDistribution;
use airsched_workload::spec::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized deployment so the example runs in a couple of seconds;
    // the bench harness runs the full n=1000 paper configuration.
    let config = ExperimentConfig {
        spec: WorkloadSpec::new(200, 6, 4, 2).distribution(GroupSizeDistribution::Normal),
        requests: 3000,
        ..ExperimentConfig::paper_defaults()
    };

    let ladder = config.ladder()?;
    let min = airsched_core::bound::minimum_channels(&ladder);
    println!("workload: {ladder}");
    println!("minimum channels: {min}\n");

    let sweep = sweep_channels(&config, 1..=min)?;
    println!("{}", sweep_table(&sweep).render());

    println!("\nthe 1/5 rule across all four distributions:");
    let mut rows = Vec::new();
    for dist in GroupSizeDistribution::ALL {
        rows.push(one_fifth_summary(&config.clone().with_distribution(dist))?);
    }
    println!("{}", one_fifth_table(&rows).render());

    println!(
        "\nreading: at N_min/5 channels the residual AvgD is already tiny \
         compared to the single-channel case - a fifth of the spectrum buys \
         nearly all of the service quality."
    );
    Ok(())
}
