//! Broadcast over a real socket: the frame stream transmitted via UDP on
//! loopback, received and decoded by a client that wants a few pages.
//!
//! The transmitter thread plays the schedule in (accelerated) real time,
//! one datagram per channel per slot; the receiver listens, verifies
//! checksums, and reports when its want-set is satisfied — demonstrating
//! `airsched-proto` end to end over an actual network path.
//!
//! Run with: `cargo run -p airsched-cli --example udp_broadcast`

use std::net::UdpSocket;
use std::time::Duration;

use airsched_core::group::GroupLadder;
use airsched_core::susc;
use airsched_core::types::PageId;
use airsched_proto::frame::Frame;
use airsched_proto::receiver::Receiver;
use airsched_proto::transmitter::{DebugPayloads, FrameStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
    let program = susc::schedule(&ladder, 4)?;
    println!(
        "transmitting {} channels x {}-slot cycle over UDP loopback",
        program.channels(),
        program.cycle_len()
    );

    // Receiver socket on an ephemeral loopback port.
    let rx_socket = UdpSocket::bind("127.0.0.1:0")?;
    rx_socket.set_read_timeout(Some(Duration::from_millis(500)))?;
    let addr = rx_socket.local_addr()?;

    // Transmitter: two full cycles, 1 ms per slot.
    let tx_program = program.clone();
    let tx = std::thread::spawn(move || -> std::io::Result<u64> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        let slots = tx_program.cycle_len() * 2;
        let frames = slots * u64::from(tx_program.channels());
        let mut sent = 0u64;
        let mut last_slot = u64::MAX;
        for frame in FrameStream::new(&tx_program, DebugPayloads).take(frames as usize) {
            if frame.slot_time != last_slot {
                last_slot = frame.slot_time;
                std::thread::sleep(Duration::from_millis(1));
            }
            socket.send_to(&frame.encode(), addr)?;
            sent += 1;
        }
        Ok(sent)
    });

    // Client: wants one page from each group.
    let mut rx = Receiver::new([PageId::new(0), PageId::new(4), PageId::new(9)]);
    let mut buf = [0u8; 2048];
    while !rx.is_satisfied() {
        let (len, _) = rx_socket.recv_from(&mut buf)?;
        match Frame::decode(&buf[..len]) {
            Ok(frame) => {
                if let Some(reception) = rx.consume(&frame) {
                    println!(
                        "received {} at slot {} (payload {:?})",
                        reception.page,
                        reception.slot_time,
                        String::from_utf8_lossy(&reception.payload)
                    );
                }
            }
            Err(e) => eprintln!("corrupt datagram: {e}"),
        }
    }

    let sent = tx.join().expect("transmitter thread")?;
    let stats = rx.stats();
    println!(
        "satisfied after {} frames ({} hits); transmitter sent {} datagrams",
        stats.frames, stats.hits, sent
    );
    Ok(())
}
