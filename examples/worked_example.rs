//! The paper's Figure 2 walk-through, step by step.
//!
//! Reproduces §4's worked example: 11 pages in three groups on 3 channels
//! (one fewer than the minimum), deriving r1 = r2 = 2, S = (4, 2, 1) and a
//! 9-slot cycle.
//!
//! Run with: `cargo run -p airsched-cli --example worked_example`

use airsched_core::bound::minimum_channels;
use airsched_core::group::GroupLadder;
use airsched_core::pamad;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ladder = GroupLadder::new(vec![(2, 3), (4, 5), (8, 3)])?;
    println!("Figure 2(a): {ladder}");
    println!(
        "minimum channels: {} - but only 3 are available\n",
        minimum_channels(&ladder)
    );

    let outcome = pamad::schedule(&ladder, 3)?;

    println!("Figure 2(b): deriving broadcast frequencies (Algorithm 3)");
    for stage in outcome.plan().stages() {
        println!("  stage for {}:", stage.group);
        for c in &stage.candidates {
            let marker = if c.r == stage.chosen {
                "  <= chosen"
            } else {
                ""
            };
            println!("    r = {}: D' = {:.4}{marker}", c.r, c.objective);
        }
    }
    println!(
        "  frequencies S = {:?} (paper: S1=4, S2=2, S3=1)\n",
        outcome.plan().frequencies()
    );

    println!(
        "Figure 2(d): the broadcast program ({} channels x {} slots)",
        outcome.program().channels(),
        outcome.program().cycle_len()
    );
    println!("{}", outcome.program().render_grid());

    println!(
        "placement: {:?} of {} instances in their ideal window",
        outcome.placement_stats().in_window,
        outcome.placement_stats().total()
    );
    Ok(())
}
