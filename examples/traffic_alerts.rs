//! Traffic alert scenario: a sudden channel shortage and how PAMAD
//! degrades gracefully where m-PB does not.
//!
//! Motivated by the paper's §1 example: accident warnings must reach
//! drivers heading toward the site quickly; other road data (congestion
//! maps, parking, weather) tolerates more staleness. A base station loses
//! transmitters one by one and we watch the average delay of each policy.
//!
//! Run with: `cargo run -p airsched-cli --example traffic_alerts`

use airsched_core::bound::minimum_channels;
use airsched_core::delay::Weighting;
use airsched_core::group::GroupLadder;
use airsched_core::{mpb, opt, pamad};
use airsched_sim::access::measure;
use airsched_workload::requests::{AccessPattern, RequestGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Alert tiers: 6 urgent accident/closure alerts (8 slots), 20
    // congestion segments (32 slots), 40 slower feeds (128 slots).
    let ladder = GroupLadder::new(vec![(8, 6), (32, 20), (128, 40)])?;
    let min = minimum_channels(&ladder);
    println!("workload: {ladder}");
    println!("minimum channels: {min}\n");

    println!(
        "{:>8}  {:>9} {:>9} {:>9}   (measured AvgD, slots)",
        "channels", "PAMAD", "m-PB", "OPT"
    );
    for channels in (1..=min).rev() {
        let pamad_p = pamad::schedule(&ladder, channels)?.into_program();
        let mpb_p = mpb::schedule(&ladder, channels)?.into_program();
        let opt_p = opt::search_r_structured(&ladder, channels, Weighting::PaperEq2)
            .place(&ladder, channels)?
            .into_program();

        let mut row = Vec::new();
        for program in [&pamad_p, &mpb_p, &opt_p] {
            let mut gen = RequestGenerator::new(&ladder, AccessPattern::Uniform, 7);
            let requests = gen.take(3000, program.cycle_len());
            let (summary, _) = measure(program, &ladder, &requests);
            row.push(summary.avg_delay());
        }
        println!(
            "{channels:>8}  {:>9.3} {:>9.3} {:>9.3}",
            row[0], row[1], row[2]
        );
    }

    println!(
        "\nPAMAD hugs OPT at every shortage level; m-PB, which keeps full \
         per-page frequency and just stretches its cycle, falls behind as \
         channels disappear."
    );
    Ok(())
}
