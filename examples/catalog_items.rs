//! Variable-length items end to end: a catalogue of multi-slot documents
//! lowered onto unit pages, scheduled, and reassembled by a single-tuner
//! client using greedy multi-page retrieval.
//!
//! Run with: `cargo run -p airsched-cli --example catalog_items`

use airsched_core::bound::minimum_channels;
use airsched_core::items::{ItemCatalogue, ItemId, ItemSpec};
use airsched_core::susc;
use airsched_sim::multiget::{retrieve_greedy, MultiRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small content catalogue: lengths in slots, freshness requirements.
    let items = [
        ItemSpec {
            length: 1,
            expected_time: 4,
        }, // breaking headline
        ItemSpec {
            length: 3,
            expected_time: 8,
        }, // article with photos
        ItemSpec {
            length: 2,
            expected_time: 8,
        }, // market summary
        ItemSpec {
            length: 4,
            expected_time: 16,
        }, // weather maps
        ItemSpec {
            length: 6,
            expected_time: 32,
        }, // long-form feature
    ];
    let catalogue = ItemCatalogue::build(&items, 2)?;
    println!(
        "catalogue: {} items -> {} unit pages, ladder {}",
        catalogue.len(),
        catalogue.ladder().total_pages(),
        catalogue.ladder()
    );

    let n = minimum_channels(catalogue.ladder());
    let program = susc::schedule(catalogue.ladder(), n)?;
    println!(
        "scheduled on {n} channels, cycle {} slots\n",
        program.cycle_len()
    );

    // A single-tuner client assembles each item from several arrival
    // instants; channel switches cost one slot.
    for idx in 0..catalogue.len() {
        let item = ItemId::new(u32::try_from(idx)?);
        let spec = catalogue.spec(item);
        let bound = catalogue.worst_case_assembly(item);
        let mut worst = 0;
        for arrival in 0..program.cycle_len() {
            let req = MultiRequest {
                pages: catalogue.pages_of(item).to_vec(),
                arrival,
            };
            let access = retrieve_greedy(&program, &req, 1).expect("every part airs under SUSC");
            worst = worst.max(access.completion_wait);
        }
        println!(
            "{item}: {} slot(s), wanted within {:>2} -> worst single-tuner \
             assembly {worst:>2} slots (analytic bound {bound})",
            spec.length, spec.expected_time
        );
    }
    println!(
        "\nnote: single-tuner assembly can exceed the per-part expected time \
         when parts collide in one column — the multi-channel guarantee is \
         per page, and the switch cost adds on top (the trade-off the \
         paper's reference [5] studies)."
    );
    Ok(())
}
