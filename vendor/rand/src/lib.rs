//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no network access and no crates.io cache, so the
//! workspace vendors the tiny slice of `rand` it actually uses: a seedable
//! small PRNG ([`rngs::SmallRng`]), the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom::shuffle`]. The
//! generator is SplitMix64 — deterministic, fast, and statistically adequate
//! for simulation workloads; it is **not** cryptographically secure.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`.
///
/// Stands in for `rand::distributions::Standard` sampling.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits mapped onto [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that support uniform sampling of a single value.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` uniformly from `[0, bound)` via Lemire-style rejection-free
/// widening multiply (bias is negligible for simulation use).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_u64(rng, span) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + uniform_u64(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing extension trait: `gen`, `gen_range`, `gen_bool`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (SplitMix64).
    ///
    /// Matches the `rand::rngs::SmallRng` API surface used in this workspace;
    /// the output stream differs from upstream `rand` but is stable across
    /// runs and platforms for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl SmallRng {
        /// The generator's current internal state.
        ///
        /// Feeding the returned value back through
        /// [`SeedableRng::seed_from_u64`] reconstructs a generator that
        /// continues the exact same stream — the hook checkpoint/restore
        /// machinery relies on.
        #[must_use]
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    /// Alias of [`SmallRng`]; the stub has a single generator.
    pub type StdRng = SmallRng;
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unsized_rng_is_usable() {
        fn takes_unsized<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let x = takes_unsized(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
