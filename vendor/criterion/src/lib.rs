//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! benchmark API surface it uses. This stub keeps every bench target
//! compiling and runnable, but does **no statistical sampling**: each
//! benchmark body executes once and its wall-clock time is printed. That is
//! enough for CI's `cargo bench --no-run` compile check and for smoke-running
//! benches by hand; real measurements need upstream criterion.

use std::fmt;
use std::time::Instant;

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost upstream; ignored by the stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Throughput annotation for a benchmark group; recorded but unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs `routine` once and discards the result.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }

    /// Runs `setup` then `routine` once; the stub ignores `size`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = size;
        black_box(routine(setup()));
    }
}

fn run_one(id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher::default();
    let start = Instant::now();
    f(&mut bencher);
    println!(
        "bench {id}: {:.3} ms (single pass, vendored criterion stub)",
        start.elapsed().as_secs_f64() * 1e3
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl fmt::Debug for BenchmarkGroup<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BenchmarkGroup")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the upstream sample count; a no-op here.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let _ = n;
        self
    }

    /// Sets the upstream measurement time; a no-op here.
    pub fn measurement_time(&mut self, d: std::time::Duration) -> &mut Self {
        let _ = d;
        self
    }

    /// Records the group throughput; a no-op here.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        let _ = throughput;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one top-level benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_smoke() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("unit", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);

        let mut group = c.benchmark_group("grp");
        group
            .sample_size(10)
            .throughput(Throughput::Elements(4))
            .bench_function("inner", |b| {
                b.iter_batched(|| 2u32, |x| x * 2, BatchSize::SmallInput);
            });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &n| {
            b.iter(|| n + 1);
        });
        group.finish();
    }
}
