//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Vendored because the build container has no crates.io access. Implements
//! only the surface this workspace uses: [`Bytes`] (cheap-to-clone immutable
//! buffer), [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`]
//! cursor traits with big-endian integer accessors. Backed by `Arc<[u8]>` /
//! `Vec<u8>` instead of upstream's refcounted vtable machinery; semantics
//! (not performance) match upstream for this subset.

use core::fmt;
use core::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Returns the number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in core::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

/// Owning byte iterator for [`Bytes`] (upstream iterates `u8` by value).
#[derive(Debug, Clone)]
pub struct IntoIter {
    data: Arc<[u8]>,
    pos: usize,
}

impl Iterator for IntoIter {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        let b = self.data.get(self.pos).copied()?;
        self.pos += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.data.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for IntoIter {}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        IntoIter {
            data: self.data,
            pos: 0,
        }
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = core::slice::Iter<'a, u8>;

    fn into_iter(self) -> core::slice::Iter<'a, u8> {
        self.data.iter()
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

/// A growable byte buffer used to assemble frames before freezing.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with at least `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Returns the number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of bytes the builder can hold without reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Empties the builder, retaining its allocation — upstream-compatible
    /// and the key primitive for reusing one buffer across many frames.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Shortens the buffer to `len` bytes, keeping the front — upstream
    /// compatible; a no-op when `len` exceeds the current length.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Converts the builder into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl core::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source; integer accessors are big-endian.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// Returns the current readable slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Returns `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; integer writers are big-endian.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, n: u8);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, n: u8) {
        self.data.push(n);
    }

    fn put_u16(&mut self, n: u16) {
        self.data.extend_from_slice(&n.to_be_bytes());
    }

    fn put_u32(&mut self, n: u32) {
        self.data.extend_from_slice(&n.to_be_bytes());
    }

    fn put_u64(&mut self, n: u64) {
        self.data.extend_from_slice(&n.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, n: u8) {
        self.push(n);
    }

    fn put_u16(&mut self, n: u16) {
        self.extend_from_slice(&n.to_be_bytes());
    }

    fn put_u32(&mut self, n: u32) {
        self.extend_from_slice(&n.to_be_bytes());
    }

    fn put_u64(&mut self, n: u64) {
        self.extend_from_slice(&n.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0102_0304_0506_0708);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut buf = BytesMut::with_capacity(64);
        buf.extend_from_slice(&[7u8; 48]);
        let cap = buf.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn bytes_clone_is_cheap_and_equal() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*b, b"hello");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn debug_escapes_binary() {
        let b = Bytes::copy_from_slice(&[0x00, b'a']);
        assert_eq!(format!("{b:?}"), "b\"\\x00a\"");
    }

    #[test]
    fn bytes_iterate_by_value_and_by_ref() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let by_ref: Vec<u8> = (&b).into_iter().copied().collect();
        assert_eq!(by_ref, vec![1, 2, 3]);
        let owned = b.into_iter();
        assert_eq!(owned.len(), 3);
        assert_eq!(owned.collect::<Vec<u8>>(), vec![1, 2, 3]);
    }
}
