//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro family, composable
//! [`strategy::Strategy`] values (ranges, tuples, vectors, options, regex-ish
//! string patterns, `prop_oneof!`, `prop_map`/`prop_flat_map`), and a
//! deterministic test runner.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the ordinary assertion
//!   message; the run is fully deterministic (the seed is derived from the
//!   test name), so failures reproduce exactly.
//! * **Regex strategies** support the subset used in this workspace:
//!   `.`, character classes like `[0-9 .x\n]`, literals, and `{m,n}` /
//!   `{n}` / `*` / `+` / `?` repetition.
//! * `prop_assert*!` delegate to `assert*!` (panic instead of returning a
//!   `TestCaseError`), which is equivalent under this runner.

/// Deterministic runner: configuration, PRNG, and the case loop.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Returns a config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` when a case must be discarded.
    #[derive(Debug, Clone, Copy)]
    pub struct Reject;

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns the next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Draws uniformly from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Draws uniformly from the inclusive range `[lo, hi]`.
        pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo <= hi, "cannot sample an empty range");
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            lo + self.below(span + 1)
        }
    }

    /// Stable FNV-1a hash of the test name, used to derive per-test seeds.
    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Runs `case` until `config.cases` cases have been accepted.
    ///
    /// The seed is derived from `name` alone, so every run of the same test
    /// binary explores the same inputs. A panicking case reports its index
    /// and seed on stderr before propagating, for reproduction by eye.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), Reject>,
    {
        let seed = fnv1a(name) ^ 0xA076_1D64_78BD_642F;
        let mut rng = TestRng::from_seed(seed);
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = u64::from(config.cases) * 20 + 100;
        while accepted < config.cases && attempts < max_attempts {
            attempts += 1;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
            match result {
                Ok(Ok(())) => accepted += 1,
                Ok(Err(Reject)) => {}
                Err(panic) => {
                    eprintln!(
                        "proptest (vendored stub): test `{name}` failed on \
                         case #{accepted} (attempt {attempts}, seed {seed:#x})"
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        if accepted < config.cases {
            eprintln!(
                "proptest (vendored stub): test `{name}` accepted only \
                 {accepted}/{} cases before the rejection cap",
                config.cases
            );
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and core combinators.
pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Mirrors upstream's trait minus shrinking: `generate` replaces
    /// `new_tree` and yields the value directly.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing `f` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let value = self.inner.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter({}) rejected 1000 candidates", self.whence);
        }
    }

    /// A reference-counted, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> core::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("BoxedStrategy(..)")
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among boxed strategies; built by `prop_oneof!`.
    #[derive(Debug)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; must be non-empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.between(self.start as u64, self.end as u64 - 1) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.between(*self.start() as u64, *self.end() as u64) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
    impl_tuple_strategy!(A, B, C, D, E, G, H);
    impl_tuple_strategy!(A, B, C, D, E, G, H, I);
}

/// `any::<T>()` support for primitive types and [`sample::Index`].
pub mod arbitrary {
    use core::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias towards edge values: full-range otherwise.
                    match rng.below(8) {
                        0 => <$ty>::MIN,
                        1 => <$ty>::MAX,
                        2 => 0 as $ty,
                        3 => 1 as $ty,
                        _ => rng.next_u64() as $ty,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.below(8) {
                0 => 0.0,
                1 => -1.0,
                2 => f64::INFINITY,
                3 => f64::NAN,
                _ => (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns a strategy producing arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `prop::collection` — sized `Vec` strategies.
pub mod collection {
    use core::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            Self {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.between(self.size.min as u64, self.size.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Returns a strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `prop::option` — `Option<T>` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// Returns a strategy yielding `None` about a quarter of the time.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// `prop::sample` — collection-index sampling.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose size is unknown at generation time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        /// Projects this sample onto a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.raw % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self {
                raw: rng.next_u64() as usize,
            }
        }
    }
}

/// Regex-pattern string strategies (subset; see the crate docs).
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    enum Atom {
        /// `.` — any char except `\n`.
        AnyChar,
        /// `[...]` — one of an explicit set.
        Class(Vec<char>),
        /// A literal character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut core::iter::Peekable<core::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            let c = chars
                .next()
                .expect("unterminated character class in pattern");
            match c {
                ']' => break,
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    set.push(unescape(esc));
                }
                _ => {
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next();
                        if let Some(&end) = look.peek() {
                            if end != ']' {
                                chars.next();
                                chars.next();
                                for v in (c as u32)..=(end as u32) {
                                    if let Some(ch) = char::from_u32(v) {
                                        set.push(ch);
                                    }
                                }
                                continue;
                            }
                        }
                    }
                    set.push(c);
                }
            }
        }
        assert!(!set.is_empty(), "empty character class in pattern");
        set
    }

    fn parse_repeat(chars: &mut core::iter::Peekable<core::str::Chars<'_>>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.parse().expect("bad repeat lower bound");
                        let hi = if hi.is_empty() {
                            lo + 16
                        } else {
                            hi.parse().expect("bad repeat upper bound")
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = spec.parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::AnyChar,
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(unescape(chars.next().expect("dangling escape in pattern"))),
                other => Atom::Literal(other),
            };
            let (min, max) = parse_repeat(&mut chars);
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Mostly printable ASCII plus a sprinkling of awkward characters.
    fn any_char(rng: &mut TestRng) -> char {
        match rng.below(16) {
            0 => '\t',
            1 => '\u{0}',
            2 => 'é',
            3 => '世',
            _ => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap(),
        }
    }

    fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let reps = rng.between(u64::from(piece.min), u64::from(piece.max)) as u32;
            for _ in 0..reps {
                match &piece.atom {
                    Atom::AnyChar => out.push(any_char(rng)),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate(self, rng)
        }
    }
}

/// Namespaced re-exports mirroring `proptest::prelude::prop::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                &__config,
                stringify!($name),
                |__rng| -> ::core::result::Result<(), $crate::test_runner::Reject> {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_compose() {
        let strat = (1u64..=6, 2u64..4, prop::collection::vec(1u64..=40, 1..=5))
            .prop_map(|(a, b, v)| (a, b, v.len()));
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..200 {
            let (a, b, len) = Strategy::generate(&strat, &mut rng);
            assert!((1..=6).contains(&a));
            assert!((2..4).contains(&b));
            assert!((1..=5).contains(&len));
        }
    }

    #[test]
    fn regex_subset_generates_matching_text() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[0-9 .x\n]{0,120}", &mut rng);
            assert!(s.chars().all(|c| c.is_ascii_digit()
                || c == ' '
                || c == '.'
                || c == 'x'
                || c == '\n'));
            assert!(s.chars().count() <= 120);
            let free = Strategy::generate(&".{0,16}", &mut rng);
            assert!(free.chars().count() <= 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro supports metas, multiple args, and assume/assert.
        #[test]
        fn macro_end_to_end(
            x in 0u32..100,
            ys in prop::collection::vec(any::<u8>(), 0..4),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.len());
            if !ys.is_empty() {
                let _ = ys[pick.index(ys.len())];
            }
        }
    }

    #[test]
    fn oneof_and_flat_map() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)]
            .prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..10, n as usize)));
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..100 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n as usize);
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut first = Vec::new();
        crate::test_runner::run_cases(&ProptestConfig::with_cases(16), "stream", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::test_runner::run_cases(&ProptestConfig::with_cases(16), "stream", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
